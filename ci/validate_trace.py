#!/usr/bin/env python3
"""Validate an mn-telemetry trace export against ci/trace-schema.json.

Usage: validate_trace.py <schema.json> <trace.json>

Implements the JSON-Schema subset the checked-in schema uses (type,
required, properties, items, enum) so CI needs nothing beyond the
standard library, then applies Perfetto-specific sanity checks the
schema language cannot express (metadata present, spans present,
'X' events carry durations).
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def fail(msg):
    sys.exit(f"trace schema violation: {msg}")


def check(value, schema, path="$"):
    expected = schema.get("type")
    if expected is not None:
        ok = isinstance(value, TYPES[expected])
        if isinstance(value, bool) and expected in ("integer", "number"):
            ok = False
        if not ok:
            fail(f"{path}: expected {expected}, got {type(value).__name__}")
    if "enum" in schema and value not in schema["enum"]:
        fail(f"{path}: {value!r} not one of {schema['enum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                check(value[key], sub, f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            check(item, schema["items"], f"{path}[{i}]")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        schema = json.load(f)
    with open(sys.argv[2]) as f:
        trace = json.load(f)

    check(trace, schema)

    events = trace["traceEvents"]
    by_phase = {}
    for i, event in enumerate(events):
        by_phase.setdefault(event["ph"], []).append(i)
        if event["ph"] in ("X", "i") and "ts" not in event:
            fail(f"$.traceEvents[{i}]: timed event without 'ts'")
        if event["ph"] == "X" and "dur" not in event:
            fail(f"$.traceEvents[{i}]: span without 'dur'")
    if len(by_phase.get("M", [])) < 2:
        fail("expected process and thread metadata ('M') events")
    if not by_phase.get("X"):
        fail("expected at least one span ('X') event")

    counts = {ph: len(ids) for ph, ids in sorted(by_phase.items())}
    print(f"ok: {len(events)} events validate ({counts})")


if __name__ == "__main__":
    main()
