//! Address decoding: per-port byte addresses to (cube, quadrant, bank, row).
//!
//! §5 of the paper: addresses interleave across the host's ports at 256 B
//! granularity (handled upstream — each port's workload generator produces
//! that port's address space directly), and requests are "uniformly
//! interleaved based on their addresses" across the MN's cubes, so a cube
//! holding 4x the capacity (NVM) receives 4x the requests. This module
//! implements the intra-port half of that mapping.
//!
//! Layout: the port address space is divided into 256 B blocks. Block `b`
//! maps to capacity unit `b % units`; each DRAM cube owns one unit and
//! each NVM cube four, so traffic is proportional to capacity. A cube's
//! units are spread evenly around the unit cycle (not concatenated), so a
//! sequential burst does not dump consecutive blocks onto one NVM cube.
//! Within a cube, successive owned blocks stripe across the four quadrants
//! and their banks; rows aggregate eight 256 B blocks (a 2 KB row buffer).

use mn_topo::{NodeId, Placement, Topology};

/// Result of decoding an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddress {
    /// The cube that owns the address.
    pub cube: NodeId,
    /// Quadrant within the cube (0..4).
    pub quadrant: u32,
    /// Bank within the quadrant.
    pub bank: u32,
    /// Row within the bank.
    pub row: u64,
}

/// Precomputed address decoder for one port's MN.
#[derive(Debug, Clone)]
pub struct AddressMap {
    /// Capacity unit -> owning cube.
    unit_to_cube: Vec<NodeId>,
    interleave_bytes: u64,
    banks_per_quadrant: u32,
    /// 256 B blocks per row (2 KB rows).
    blocks_per_row: u64,
}

impl AddressMap {
    /// Builds the decoder for `topo` (whose cubes follow `placement`).
    ///
    /// # Panics
    ///
    /// Panics if the topology's cube positions do not match the placement.
    pub fn new(
        topo: &Topology,
        placement: &Placement,
        interleave_bytes: u64,
        banks_per_quadrant: u32,
    ) -> AddressMap {
        assert!(
            interleave_bytes > 0,
            "interleave granularity must be positive"
        );
        assert!(
            banks_per_quadrant > 0,
            "need at least one bank per quadrant"
        );
        // Deal unit slots to cubes round-robin by position until every
        // cube has placed all its capacity units. A 4-unit NVM cube thus
        // appears once per dealing cycle instead of four times in a row,
        // so sequential bursts spread across cubes.
        let mut remaining: Vec<(NodeId, u32)> = (1..=placement.cube_count() as u32)
            .map(|pos| {
                let cube = topo
                    .cube_at_position(pos)
                    .expect("placement position exists in topology");
                (cube, placement.tech_at(pos).capacity_units())
            })
            .collect();
        let mut unit_to_cube = Vec::new();
        while remaining.iter().any(|&(_, k)| k > 0) {
            for (cube, k) in &mut remaining {
                if *k > 0 {
                    unit_to_cube.push(*cube);
                    *k -= 1;
                }
            }
        }
        AddressMap {
            unit_to_cube,
            interleave_bytes,
            banks_per_quadrant,
            blocks_per_row: 8,
        }
    }

    /// Total capacity units (the interleave modulus).
    pub fn units(&self) -> usize {
        self.unit_to_cube.len()
    }

    /// Decodes a byte address.
    pub fn decode(&self, addr: u64) -> DecodedAddress {
        let block = addr / self.interleave_bytes;
        let units = self.unit_to_cube.len() as u64;
        let cube = self.unit_to_cube[(block % units) as usize];
        // Blocks owned by this cube, in ownership order.
        let block_in_cube = block / units;
        let quadrant = (block_in_cube % 4) as u32;
        let per_quadrant = block_in_cube / 4;
        let bank = (per_quadrant % u64::from(self.banks_per_quadrant)) as u32;
        let row = per_quadrant / u64::from(self.banks_per_quadrant) / self.blocks_per_row;
        DecodedAddress {
            cube,
            quadrant,
            bank,
            row,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_topo::{CubeTech, NvmPlacement, TopologyKind};

    fn map_for(dram_fraction: f64) -> (Topology, AddressMap, Placement) {
        let placement = Placement::mixed_with_total(dram_fraction, NvmPlacement::Last, 16).unwrap();
        let topo = Topology::build(TopologyKind::Chain, &placement).unwrap();
        let map = AddressMap::new(&topo, &placement, 256, 64);
        (topo, map, placement)
    }

    #[test]
    fn homogeneous_units_equal_cubes() {
        let (_, map, p) = map_for(1.0);
        assert_eq!(map.units(), p.cube_count());
    }

    #[test]
    fn traffic_proportional_to_capacity() {
        let (topo, map, placement) = map_for(0.5); // 8 DRAM + 2 NVM
        let mut counts = std::collections::HashMap::new();
        for block in 0..16_000u64 {
            let d = map.decode(block * 256);
            *counts.entry(d.cube).or_insert(0u64) += 1;
        }
        let dram_cube = topo.cube_at_position(1).unwrap();
        let nvm_cube = topo.cube_at_position(9).unwrap();
        assert_eq!(placement.tech_at(9), CubeTech::Nvm);
        let ratio = counts[&nvm_cube] as f64 / counts[&dram_cube] as f64;
        assert!(
            (ratio - 4.0).abs() < 0.01,
            "NVM gets 4x traffic, got {ratio}"
        );
    }

    #[test]
    fn consecutive_blocks_hit_different_cubes() {
        let (_, map, _) = map_for(1.0);
        let a = map.decode(0);
        let b = map.decode(256);
        assert_ne!(a.cube, b.cube);
    }

    #[test]
    fn same_block_same_place() {
        let (_, map, _) = map_for(1.0);
        // Addresses within one 256 B block decode identically.
        assert_eq!(map.decode(0), map.decode(255));
        assert_ne!(map.decode(0), map.decode(256));
    }

    #[test]
    fn quadrants_and_banks_stripe() {
        let (_, map, _) = map_for(1.0);
        // Successive blocks owned by the same cube (every 16th block)
        // stripe across quadrants 0..4.
        let quads: Vec<u32> = (0..8).map(|i| map.decode(i * 16 * 256).quadrant).collect();
        assert_eq!(quads, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Banks advance once the quadrants wrap.
        let d0 = map.decode(0);
        let d4 = map.decode(4 * 16 * 256);
        assert_eq!(d0.bank + 1, d4.bank);
    }

    #[test]
    fn rows_aggregate_blocks() {
        let (_, map, _) = map_for(1.0);
        let d0 = map.decode(0);
        // Same cube, same bank, 8 per-quadrant strides later => next row
        // boundary is blocks_per_row (8) per-quadrant blocks away.
        let stride = 16 * 4 * 64; // blocks to return to same (cube, quadrant, bank)
        let same_row = map.decode(7 * stride * 256);
        let next_row = map.decode(8 * stride * 256);
        assert_eq!(same_row.row, d0.row);
        assert_eq!(next_row.row, d0.row + 1);
    }

    #[test]
    fn nvm_units_are_dealt_apart() {
        // The paper mix: 8 DRAM + 2 NVM. Round-robin dealing must never
        // place the same cube in two consecutive interleave slots, so a
        // sequential burst cannot dump back-to-back blocks on one NVM cube.
        let (_, map, _) = map_for(0.5);
        let cubes: Vec<_> = (0..map.units() as u64 * 2)
            .map(|b| map.decode(b * 256).cube)
            .collect();
        for pair in cubes.windows(2) {
            assert_ne!(pair[0], pair[1], "consecutive blocks on one cube");
        }
    }

    #[test]
    fn works_on_every_topology() {
        let placement = Placement::mixed_with_total(0.5, NvmPlacement::First, 16).unwrap();
        for kind in TopologyKind::ALL_EXTENDED {
            let topo = Topology::build(kind, &placement).unwrap();
            let map = AddressMap::new(&topo, &placement, 256, 64);
            assert_eq!(map.units(), 16, "{kind}");
            // Each decoded cube is a real cube of this topology.
            for b in 0..32u64 {
                let d = map.decode(b * 256);
                assert!(topo.node(d.cube).kind.is_cube(), "{kind}");
            }
        }
    }

    #[test]
    fn bank_in_range() {
        let (_, map, _) = map_for(0.5);
        for i in 0..10_000u64 {
            let d = map.decode(i * 97 * 256); // arbitrary stride
            assert!(d.quadrant < 4);
            assert!(d.bank < 64);
        }
    }
}
