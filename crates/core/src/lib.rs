//! # mn-core — the memory-network system simulator
//!
//! This crate assembles the substrates of the `mncube` workspace into the
//! complete system evaluated by *"There and Back Again: Optimizing the
//! Interconnect in Networks of Memory Cubes"* (ISCA 2017):
//!
//! - an APU host with multiple memory ports, each serving a **disjoint**
//!   slice of physical memory through its own memory network (§2.3);
//! - address interleaving at 256-byte granularity across ports and,
//!   capacity-weighted, across the cubes of each port's MN (§5);
//! - memory cubes with four quadrants of banks behind an on-package
//!   switch, paying a 1 ns penalty when a request lands in the wrong
//!   quadrant (§5);
//! - the network layer (`mn-noc`), memory devices (`mn-mem`), topologies
//!   (`mn-topo`), and workload proxies (`mn-workloads`).
//!
//! The primary entry point is [`SystemConfig`] + [`simulate`]:
//!
//! ```
//! use mn_core::{SystemConfig, simulate};
//! use mn_topo::TopologyKind;
//! use mn_workloads::Workload;
//!
//! // A small configuration for a quick, deterministic run.
//! let mut config = SystemConfig::paper_baseline(TopologyKind::Tree, 1.0).unwrap();
//! config.requests_per_port = 2_000;
//! let result = simulate(&config, Workload::Dct);
//!
//! assert_eq!(result.reads + result.writes, 2_000);
//! // Under load, network latency dominates array latency (the paper's
//! // central observation).
//! let b = &result.breakdown;
//! assert!(b.to_memory.mean_ns() + b.from_memory.mean_ns() > b.in_memory.mean_ns());
//! ```
//!
//! Each figure and table of the paper maps to a binary in `mn-bench`; see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for measured
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address;
mod config;
mod error;
mod experiment;
mod port;
mod stats;
mod system;

pub use address::{AddressMap, DecodedAddress};
pub use config::{ConfigError, SystemConfig};
pub use error::SimError;
pub use experiment::{
    baseline_chain_config, mix_grid, ratio_label, speedup_pct, ConfigPoint, MixSpec,
};
pub use mn_host::{HostConfig, WindowPolicyKind};
pub use mn_telemetry::{HostSummary, TelemetrySummary, TraceConfig};
pub use port::{PortObservation, PortTelemetry};
pub use stats::{EnergyBreakdown, LatencyBreakdown, RunResult};
pub use system::{
    merge_port_observations, port_count, simulate, simulate_port, try_simulate, try_simulate_port,
};
