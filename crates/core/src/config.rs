//! System-level configuration: the paper's Table 2 plus experiment knobs.

use std::error::Error;
use std::fmt;

use mn_host::HostConfig;
use mn_noc::{ArbiterKind, NocConfig};
use mn_topo::{NvmPlacement, Placement, TopologyError, TopologyKind};

/// Errors from assembling a [`SystemConfig`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The capacity does not divide evenly across ports and cubes.
    Capacity(String),
    /// The DRAM:NVM mix cannot be realized (propagated from `mn-topo`).
    Placement(TopologyError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Capacity(msg) => write!(f, "invalid capacity: {msg}"),
            ConfigError::Placement(e) => write!(f, "invalid placement: {e}"),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Placement(e) => Some(e),
            ConfigError::Capacity(_) => None,
        }
    }
}

impl From<TopologyError> for ConfigError {
    fn from(e: TopologyError) -> Self {
        ConfigError::Placement(e)
    }
}

/// Capacity of one DRAM cube in GB (Table 2).
pub const DRAM_CUBE_GB: u64 = 16;

/// Full description of one simulated system.
///
/// Defaults come from the paper's Table 2: 2 TB across 8 ports, 16 GB DRAM
/// / 64 GB NVM cubes, 256 banks per stack in 4 quadrants, 256 B port
/// interleaving.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Host memory ports (8 baseline; 4 in the §6.1 study).
    pub ports: u32,
    /// Total system memory capacity in GB (2048 baseline; 1024 in §6.2).
    pub total_capacity_gb: u64,
    /// Fraction of each MN's capacity provided by DRAM (1.0 / 0.5 / 0.0 in
    /// the paper's configurations).
    pub dram_fraction: f64,
    /// Where NVM cubes sit relative to the host (ignored when the mix is
    /// homogeneous).
    pub nvm_placement: NvmPlacement,
    /// MN topology behind every port.
    pub topology: TopologyKind,
    /// Interconnect parameters (link timing, buffers, arbitration).
    pub noc: NocConfig,
    /// Closed-loop host model: an outstanding-request window gating
    /// injection, with a pluggable congestion-control policy. The default
    /// ([`HostConfig::open`]) disables the gate entirely — open-loop
    /// behavior and fingerprints are untouched; host parameters join the
    /// fingerprint only when a policy is active (same discipline as the
    /// fault model).
    pub host: HostConfig,
    /// Allow writes onto skip links during write bursts (§5.3). Only
    /// meaningful on [`TopologyKind::SkipList`].
    pub write_burst_routing: bool,
    /// Banks per quadrant (64 x 4 = the paper's 256 banks/stack).
    pub banks_per_quadrant: u32,
    /// Memory-controller queue depth per quadrant.
    pub controller_queue: usize,
    /// Port interleave granularity in bytes (§5: 256 B, chosen empirically).
    pub interleave_bytes: u64,
    /// Wavefront-like issue slots per port; each waits for its burst's
    /// reads before issuing again (the host's latency-sensitivity knob).
    pub window: usize,
    /// Host write-buffer entries per port: writes are fire-and-forget
    /// (§4.2) but issue stalls when this many are unacknowledged.
    pub host_write_buffer: usize,
    /// Trace length: requests each simulated port must complete.
    pub requests_per_port: u64,
    /// How many of the (identical, independent) per-port MNs to actually
    /// simulate; results are aggregated. 1 is sufficient for shape-level
    /// results since ports are disjoint and statistically identical.
    pub simulated_ports: u32,
    /// The port count the workload intensities are calibrated for; fewer
    /// real ports concentrate proportionally more traffic per port (§6.1).
    pub reference_ports: u32,
    /// RNG seed.
    pub seed: u64,
    /// Livelock watchdog: a port simulation whose completion count stays
    /// flat for this many driver iterations aborts with a structured
    /// stall error instead of hanging its worker. Deliberately *not* part
    /// of the result fingerprint: the limit only decides how a broken run
    /// fails (error vs. hang), never what a completed run computes.
    pub watchdog_limit: u64,
}

impl SystemConfig {
    /// The paper's 2 TB, 8-port system with the given topology and DRAM
    /// capacity fraction (NVM placed last).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the fraction cannot be realized with
    /// whole cubes.
    pub fn paper_baseline(
        topology: TopologyKind,
        dram_fraction: f64,
    ) -> Result<SystemConfig, ConfigError> {
        let config = SystemConfig {
            ports: 8,
            total_capacity_gb: 2048,
            dram_fraction,
            nvm_placement: NvmPlacement::Last,
            topology,
            noc: NocConfig::paper_baseline(),
            host: HostConfig::open(),
            write_burst_routing: false,
            banks_per_quadrant: 64,
            controller_queue: 32,
            interleave_bytes: 256,
            window: 3,
            host_write_buffer: 8,
            requests_per_port: 20_000,
            simulated_ports: 1,
            reference_ports: 8,
            seed: 0xC0FFEE,
            // Far above any legitimate completion gap (bursts complete
            // every few hundred iterations), far below "hung in CI".
            watchdog_limit: 2_000_000,
        };
        config.placement()?; // validate the mix early
        Ok(config)
    }

    /// Sets the NVM placement (builder style).
    pub fn with_nvm_placement(mut self, placement: NvmPlacement) -> SystemConfig {
        self.nvm_placement = placement;
        self
    }

    /// Sets the arbitration scheme (builder style).
    pub fn with_arbiter(mut self, arbiter: ArbiterKind) -> SystemConfig {
        self.noc.arbiter = arbiter;
        self
    }

    /// Capacity served by each port, in GB.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn capacity_per_port_gb(&self) -> u64 {
        assert!(self.ports > 0, "system needs at least one port");
        self.total_capacity_gb / u64::from(self.ports)
    }

    /// The cube placement behind each port.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if capacity does not divide into whole
    /// DRAM-cube units or the mix is unrealizable.
    pub fn placement(&self) -> Result<Placement, ConfigError> {
        let per_port = self.capacity_per_port_gb();
        if per_port == 0 || !per_port.is_multiple_of(DRAM_CUBE_GB) {
            return Err(ConfigError::Capacity(format!(
                "per-port capacity {per_port} GB is not a multiple of {DRAM_CUBE_GB} GB cubes"
            )));
        }
        let units = u32::try_from(per_port / DRAM_CUBE_GB)
            .map_err(|_| ConfigError::Capacity("capacity too large".into()))?;
        Ok(Placement::mixed_with_total(
            self.dram_fraction,
            self.nvm_placement,
            units,
        )?)
    }

    /// Per-port injection intensity scale: fewer ports than the reference
    /// concentrate more of the APU's traffic on each (§6.1).
    pub fn intensity_scale(&self) -> f64 {
        f64::from(self.reference_ports) / f64::from(self.ports)
    }

    /// The paper's label for this configuration, e.g. `100%-C`,
    /// `50%-T (NVM-L)`, `0%-MC`.
    pub fn label(&self) -> String {
        let pct = (self.dram_fraction * 100.0).round() as u32;
        let topo = self.topology.label();
        if pct == 100 || pct == 0 {
            format!("{pct}%-{topo}")
        } else {
            let place = match self.nvm_placement {
                NvmPlacement::Last => "NVM-L",
                NvmPlacement::First => "NVM-F",
            };
            format!("{pct}%-{topo} ({place})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
        assert_eq!(c.ports, 8);
        assert_eq!(c.total_capacity_gb, 2048);
        assert_eq!(c.capacity_per_port_gb(), 256);
        assert_eq!(c.banks_per_quadrant * 4, 256);
        assert_eq!(c.interleave_bytes, 256);
        let p = c.placement().unwrap();
        assert_eq!(p.cube_count(), 16);
    }

    #[test]
    fn half_mix_placement() {
        let c = SystemConfig::paper_baseline(TopologyKind::Tree, 0.5).unwrap();
        assert_eq!(c.placement().unwrap().cube_count(), 10);
    }

    #[test]
    fn four_port_study_doubles_cubes() {
        let mut c = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
        c.ports = 4;
        assert_eq!(c.capacity_per_port_gb(), 512);
        assert_eq!(c.placement().unwrap().cube_count(), 32);
        assert!((c.intensity_scale() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn one_tb_study_halves_cubes() {
        let mut c = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
        c.total_capacity_gb = 1024;
        assert_eq!(c.placement().unwrap().cube_count(), 8);
    }

    #[test]
    fn unrealizable_mix_is_error() {
        assert!(SystemConfig::paper_baseline(TopologyKind::Chain, 0.9).is_err());
    }

    #[test]
    fn labels_match_paper() {
        let c = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
        assert_eq!(c.label(), "100%-C");
        let c = SystemConfig::paper_baseline(TopologyKind::Tree, 0.5).unwrap();
        assert_eq!(c.label(), "50%-T (NVM-L)");
        let c = SystemConfig::paper_baseline(TopologyKind::SkipList, 0.5)
            .unwrap()
            .with_nvm_placement(NvmPlacement::First);
        assert_eq!(c.label(), "50%-SL (NVM-F)");
        let c = SystemConfig::paper_baseline(TopologyKind::MetaCube, 0.0).unwrap();
        assert_eq!(c.label(), "0%-MC");
    }

    #[test]
    fn capacity_error_reported() {
        let mut c = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
        c.total_capacity_gb = 100; // 12.5 GB per port
        assert!(matches!(c.placement(), Err(ConfigError::Capacity(_))));
    }

    #[test]
    fn builder_methods() {
        let c = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0)
            .unwrap()
            .with_arbiter(ArbiterKind::Distance);
        assert_eq!(c.noc.arbiter, ArbiterKind::Distance);
    }
}
