//! One host memory port and its memory network, simulated end to end.
//!
//! Ports serve disjoint address slices (§2.3), so the system simulates each
//! port's MN independently. `PortSim` owns the network, the per-cube
//! quadrant controllers, the workload trace, and the host-side request
//! window, and advances them in lockstep:
//!
//! ```text
//! trace ──▶ host queue ──▶ inject ──▶ network ──▶ cube ejection
//!                ▲  window                             │ (+1 ns wrong-quadrant)
//!                │                                     ▼
//! response ◀── network ◀── inject ◀── completion ◀── controller
//! ```
//!
//! The latency of each phase is recorded against the three-way breakdown of
//! Fig. 5: *to memory* (offer → cube arrival, including host queuing),
//! *in memory* (cube arrival → data ready), *from memory* (data ready →
//! response back at the host).
//!
//! ## Host model
//!
//! The host behaves like the paper's GPU: `window` wavefront-like slots,
//! each cycling **think → issue a coalesced burst of misses → wait for the
//! burst's last read response**. Think times are the burst's trace gaps
//! scaled by the slot count, so the aggregate offered load matches the
//! workload's intensity when memory is fast — and degrades smoothly as
//! round-trip latency grows. Burst issue is what creates the deep,
//! transient queues (and the arbitration pressure) the paper measures,
//! without saturating the network's long-term bandwidth.
//!
//! Writes follow §4.2's "off the critical path" assumption: a slot does
//! not wait for write acknowledgments — but the host tracks them against a
//! bounded write buffer, so sustained write bursts eventually stall issue
//! (BACKPROP's failure mode on slow write paths).

use std::collections::VecDeque;
use std::sync::Arc;

use mn_host::WindowPolicyImpl;
use mn_mem::{Completion, EnergyPj, MemAccess, MemTechSpec, QuadrantController};
use mn_noc::{NetTelemetry, Network, Packet, PacketKind, WriteBurstDetector};
use mn_sim::{
    counters, Histogram, KernelCounters, SeqSlab, SimDuration, SimRng, SimTime, Watchdog,
};
use mn_telemetry::{
    Decomposition, FairnessTracker, HostSummary, LifecycleTracer, TelemetrySummary, TraceConfig,
    TraceEvent, TraceEventKind,
};
use mn_topo::{CubeTech, NodeId, PathClass, Topology, TopologyKind};
use mn_workloads::{MemRef, TraceGenerator};

use crate::address::{AddressMap, DecodedAddress};
use crate::config::SystemConfig;
use crate::error::SimError;
use crate::stats::{EnergyBreakdown, LatencyBreakdown};

/// Quadrants per cube (Table 2's 256 banks in 4 quadrants).
const QUADRANTS: u32 = 4;

/// Intra-cube penalty when a request enters via the "wrong" quadrant (§5).
const WRONG_QUADRANT_PENALTY: SimDuration = SimDuration::from_ns(1);

/// Payload bits per access, for array energy (64 B lines).
const ACCESS_BITS: u64 = 64 * 8;

/// `BankAccess` spans retained per port under `Full` tracing (a ring:
/// long runs keep the tail).
const CTRL_TRACER_CAPACITY: usize = 1 << 16;

#[derive(Debug)]
struct Inflight {
    offered_at: SimTime,
    arrived_at_cube: SimTime,
    mem_done: SimTime,
    decoded: DecodedAddress,
    request: Packet,
    tech: CubeTech,
    burst: u64,
}

#[derive(Debug)]
struct PendingResponse {
    ready_at: SimTime,
    cube: NodeId,
    quadrant: u32,
    packet: Packet,
}

/// Everything one port's run observed beyond its headline statistics:
/// the cross-port-mergeable rollup plus the raw per-event material
/// (lifecycle tracers, per-link utilization series) a trace export
/// needs. Present only when the run's [`mn_telemetry::TraceConfig`]
/// was not `Off`.
#[derive(Debug)]
pub struct PortTelemetry {
    /// The mergeable rollup: latency decomposition, fairness, queue
    /// depth, peak link utilization.
    pub summary: TelemetrySummary,
    /// Network-side telemetry (link tracer, link utilization series,
    /// queue-depth distribution).
    pub net: NetTelemetry,
    /// Memory-side lifecycle tracer: one `BankAccess` span track per
    /// (cube, quadrant) controller. Empty unless tracing was `Full`.
    pub ctrl_tracer: LifecycleTracer,
}

/// Zero-contention path cost between the host and one node: the sum of
/// per-byte serialization rates and of fixed per-traversal latencies
/// over the routed path's links. `wire = bytes * byte_ps + fixed_ps`.
#[derive(Debug, Clone, Copy, Default)]
struct WireCost {
    byte_ps: u64,
    fixed_ps: u64,
}

impl WireCost {
    #[inline]
    fn wire(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ps(bytes * self.byte_ps + self.fixed_ps)
    }
}

/// Raw result of simulating one port to trace completion.
///
/// Produced by [`crate::simulate_port`]; merge a config's worth of these
/// (in ascending port order) with [`crate::merge_port_observations`]. The
/// type is opaque on purpose: it exists so schedulers can fan per-port
/// simulations out to worker threads and still produce results
/// bit-identical to the serial [`crate::simulate`].
#[derive(Debug)]
pub struct PortObservation {
    pub(crate) wall: SimTime,
    pub(crate) breakdown: LatencyBreakdown,
    pub(crate) read_latency: Histogram,
    pub(crate) energy: EnergyBreakdown,
    pub(crate) reads: u64,
    pub(crate) writes: u64,
    pub(crate) row_hit_rate: f64,
    pub(crate) avg_hops: f64,
    pub(crate) kernel: KernelCounters,
    pub(crate) telemetry: Option<Box<PortTelemetry>>,
}

impl PortObservation {
    /// Discrete events the port's network kernel processed to completion.
    ///
    /// The event *stream* is part of the bit-reproducible contract (the
    /// fire-time arbitration skip never drops a scheduled event), so this
    /// count is stable across kernel optimizations — which makes it the
    /// denominator `kernel_bench` uses to turn wall time into events/sec.
    pub fn kernel_events(&self) -> u64 {
        self.kernel.events_processed
    }

    /// High-water mark of the network's event queue over the run.
    pub fn event_queue_peak(&self) -> usize {
        self.kernel.queue_peak as usize
    }

    /// The full kernel counter snapshot for this port: queue traffic,
    /// ladder spill/rewindow activity, arena high-water mark, and the
    /// steady-state heap-allocation tally (non-zero only under a counting
    /// allocator, e.g. `kernel_bench`).
    pub fn kernel_counters(&self) -> KernelCounters {
        self.kernel
    }

    /// The port's telemetry, when the run's trace mode was not `Off`.
    pub fn telemetry(&self) -> Option<&PortTelemetry> {
        self.telemetry.as_deref()
    }

    /// Extracts the port's telemetry, leaving `None` behind (the merge
    /// into a [`crate::RunResult`] consumes it this way so the rollup
    /// is moved, not copied).
    pub fn take_telemetry(&mut self) -> Option<Box<PortTelemetry>> {
        self.telemetry.take()
    }
}

/// The end-to-end simulator for one port's memory network.
#[derive(Debug)]
pub(crate) struct PortSim {
    topo: Arc<Topology>,
    net: Network,
    addr_map: AddressMap,
    /// Quadrant controllers for every cube, flattened into one dense array
    /// (`QUADRANTS` consecutive entries per cube, in node order).
    ctrl: Vec<QuadrantController>,
    /// Per-node base index into `ctrl`; `u32::MAX` for host/interface
    /// nodes, which have no memory behind them.
    ctrl_base: Vec<u32>,
    /// Exact minimum of every controller's `next_event_time` (`None` =
    /// all idle). `enqueue` only moves a controller's next event earlier,
    /// so the cache merges cheaply on enqueue and is recomputed only
    /// after a pass that actually advanced a controller — turning the
    /// per-timestep poll of every quadrant into one comparison.
    ctrl_min: Option<SimTime>,
    cube_tech: Vec<Option<CubeTech>>,
    trace: TraceGenerator,
    detector: WriteBurstDetector,
    intensity_scale: f64,

    total_requests: u64,
    window: usize,
    write_burst_routing: bool,
    transport_pj_per_bit_hop: f64,
    watchdog_limit: u64,

    /// Wavefront slots waiting out their think time: (due, burst refs).
    thinking: Vec<(SimTime, Vec<MemRef>)>,
    /// Recycled burst buffers: issued bursts return their (emptied) `Vec`
    /// here so the steady state never allocates a fresh one.
    ref_pool: Vec<Vec<MemRef>>,
    /// Reusable completion buffer for controller ticks.
    completions: Vec<Completion>,
    /// Remaining responses per in-flight burst, keyed by the sequential
    /// burst id (a ring-buffer slab, not a hash map — burst ids are issued
    /// monotonically, so lookup is an array index).
    bursts: SeqSlab<u32>,
    next_burst: u64,
    burst_rng: SimRng,
    pulled: u64,
    host_queue: VecDeque<(u64, MemRef, SimTime, u64)>,
    next_token: u64,
    outstanding: usize,
    outstanding_writes: usize,
    write_cap: usize,
    /// Closed-loop congestion window gating injection; `None` is the
    /// open loop (the default), where injection is bounded only by the
    /// wavefront slots and network backpressure — the hot path then pays
    /// a single predicted-not-taken branch.
    window_policy: Option<WindowPolicyImpl>,
    /// Closed-loop rollup (window series, RTT, mark fraction); populated
    /// only when a policy is active *and* telemetry is enabled.
    host_summary: Option<HostSummary>,
    /// In-flight request state keyed by the sequential token. Tokens are
    /// issued FIFO through `host_queue`, so insertion is monotonic and the
    /// slab's window stays proportional to the outstanding count.
    inflight: SeqSlab<Inflight>,
    pending_responses: Vec<PendingResponse>,

    completed: u64,
    reads: u64,
    writes: u64,
    hop_sum: u64,
    breakdown: LatencyBreakdown,
    read_latency: Histogram,
    read_energy: EnergyPj,
    write_energy: EnergyPj,
    last_response_at: SimTime,

    /// Telemetry mode for this run (`Off` keeps every hook below to a
    /// single predicted-not-taken branch).
    telem_mode: TraceConfig,
    /// Latency decomposition folded as phases complete (enabled modes).
    decomp: Decomposition,
    /// Per-source-cube completion/latency tallies (enabled modes).
    fairness: FairnessTracker,
    /// `BankAccess` span tracer, one track per controller (`Full` only).
    ctrl_tracer: LifecycleTracer,
    /// Tracer track per controller, indexed like `ctrl`.
    ctrl_tracks: Vec<u32>,
    /// Host→node zero-contention path cost, `class_idx * n + node`
    /// (populated for cube nodes in enabled modes; zeros otherwise).
    wire_to: Vec<WireCost>,
    /// Node→host zero-contention path cost, same indexing.
    wire_from: Vec<WireCost>,
    /// Control/data packet sizes, for wire-cost evaluation.
    control_bytes: u64,
    data_bytes: u64,
}

/// Dense index for the two routing planes in the wire-cost tables.
#[inline]
fn class_idx(class: PathClass) -> usize {
    match class {
        PathClass::Read => 0,
        PathClass::Write => 1,
    }
}

/// Sums link timing over a routed path.
fn path_cost(topo: &Topology, noc: &mn_noc::NocConfig, links: &[mn_topo::LinkId]) -> WireCost {
    let mut cost = WireCost::default();
    for &l in links {
        let timing = noc.link_timing(topo.link(l).class);
        cost.byte_ps += timing.ps_per_byte;
        cost.fixed_ps += timing.fixed_latency.as_ps();
    }
    cost
}

impl PortSim {
    /// Builds the simulator for one port of `config` running `trace`,
    /// reporting [`SimError::Partitioned`] when fault injection severed
    /// the topology.
    pub(crate) fn try_new(
        config: &SystemConfig,
        trace: TraceGenerator,
    ) -> Result<PortSim, SimError> {
        let placement = config
            .placement()
            .expect("config validated before simulation");
        let topo = Arc::new(
            Topology::build(config.topology, &placement)
                .expect("placement is valid for every topology"),
        );
        // The network shares the topology (`Arc::clone` bumps a refcount;
        // the old path deep-cloned the adjacency and link tables per port).
        let net = Network::try_new(Arc::clone(&topo), config.noc.clone())?;
        let addr_map = AddressMap::new(
            &topo,
            &placement,
            config.interleave_bytes,
            config.banks_per_quadrant,
        );
        let trace_mode = config.noc.trace;
        let mut ctrl = Vec::new();
        let mut ctrl_base = Vec::with_capacity(topo.node_count());
        let mut cube_tech = Vec::with_capacity(topo.node_count());
        let mut ctrl_tracer = LifecycleTracer::new(if trace_mode.tracing() {
            CTRL_TRACER_CAPACITY
        } else {
            1
        });
        let mut ctrl_tracks = Vec::new();
        for id in topo.node_ids() {
            match topo.node(id).kind {
                mn_topo::NodeKind::Cube(tech) => {
                    let spec = match tech {
                        CubeTech::Dram => MemTechSpec::dram_hbm(),
                        CubeTech::Nvm => MemTechSpec::nvm_pcm(),
                    };
                    ctrl_base.push(u32::try_from(ctrl.len()).expect("controller count fits u32"));
                    for q in 0..QUADRANTS {
                        if trace_mode.tracing() {
                            ctrl_tracks.push(ctrl_tracer.add_track(format!("cube {id} q{q}")));
                        }
                        ctrl.push(QuadrantController::new(
                            spec,
                            config.banks_per_quadrant,
                            config.controller_queue,
                        ));
                    }
                    cube_tech.push(Some(tech));
                }
                _ => {
                    ctrl_base.push(u32::MAX);
                    cube_tech.push(None);
                }
            }
        }
        // Zero-contention wire costs per (routing plane, cube), from the
        // routed paths the network will actually use (fault rerouting
        // included). The decomposition subtracts these from measured
        // phase latencies to expose the queuing component.
        let mut wire_to = Vec::new();
        let mut wire_from = Vec::new();
        if trace_mode.enabled() {
            let n = topo.node_count();
            let host = topo.host();
            wire_to = vec![WireCost::default(); 2 * n];
            wire_from = vec![WireCost::default(); 2 * n];
            for class in [PathClass::Read, PathClass::Write] {
                for id in topo.node_ids() {
                    if cube_tech[id.index()].is_none() {
                        continue;
                    }
                    let slot = class_idx(class) * n + id.index();
                    let to = net.routes().path_links(class, host, id);
                    let from = net.routes().path_links(class, id, host);
                    wire_to[slot] = path_cost(&topo, &config.noc, &to);
                    wire_from[slot] = path_cost(&topo, &config.noc, &from);
                }
            }
        }
        let decomp = if trace_mode.enabled() {
            Decomposition::with_max_hops(topo.node_count())
        } else {
            Decomposition::default()
        };
        let fairness = FairnessTracker::new(if trace_mode.enabled() {
            topo.node_count()
        } else {
            0
        });
        // Steady-state sizing: every host-side container is reserved to
        // its backpressure bound up front, so the simulation loop itself
        // never grows one. A burst is at most `1 + 4 * burst_mean` refs
        // (the geometric draw is capped there), `window` slots can each
        // hold one burst, and tokens live from injection to response.
        let burst_hint = (4.0 * trace.profile().burst_mean.max(1.0)) as usize + 1;
        let slot_hint = config.window.max(1);
        Ok(PortSim {
            topo,
            net,
            addr_map,
            ctrl,
            ctrl_base,
            ctrl_min: None,
            cube_tech,
            trace,
            detector: WriteBurstDetector::paper_default(),
            intensity_scale: config.intensity_scale(),
            total_requests: config.requests_per_port,
            window: config.window,
            write_burst_routing: config.write_burst_routing
                && config.topology == TopologyKind::SkipList,
            transport_pj_per_bit_hop: config.noc.transport_pj_per_bit_hop,
            watchdog_limit: config.watchdog_limit,
            thinking: Vec::with_capacity(slot_hint),
            ref_pool: (0..=slot_hint)
                .map(|_| Vec::with_capacity(burst_hint))
                .collect(),
            completions: Vec::with_capacity(config.controller_queue.max(16)),
            bursts: SeqSlab::with_capacity(2 * slot_hint),
            next_burst: 0,
            burst_rng: SimRng::seed_from(config.seed ^ 0xB0B5_7EA5),
            pulled: 0,
            host_queue: VecDeque::with_capacity(slot_hint * burst_hint),
            next_token: 0,
            outstanding: 0,
            outstanding_writes: 0,
            write_cap: config.host_write_buffer,
            window_policy: config.host.enabled().then(|| {
                config.host.validate();
                config.host.policy.instantiate(&config.host)
            }),
            host_summary: (config.host.enabled() && trace_mode.enabled()).then(HostSummary::new),
            inflight: SeqSlab::with_capacity(2 * slot_hint * burst_hint),
            pending_responses: Vec::with_capacity(slot_hint * burst_hint),
            completed: 0,
            reads: 0,
            writes: 0,
            hop_sum: 0,
            breakdown: LatencyBreakdown::default(),
            read_latency: Histogram::new(),
            read_energy: EnergyPj::ZERO,
            write_energy: EnergyPj::ZERO,
            last_response_at: SimTime::ZERO,
            telem_mode: trace_mode,
            decomp,
            fairness,
            ctrl_tracer,
            ctrl_tracks,
            wire_to,
            wire_from,
            control_bytes: u64::from(config.noc.control_bytes),
            data_bytes: u64::from(config.noc.data_bytes),
        })
    }

    /// Runs the port to trace completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] when the simulation wedges — no
    /// component can make progress while requests remain (deadlock), or
    /// the completion count stays flat for the configured watchdog limit
    /// (livelock). Either way the error carries a state snapshot instead
    /// of hanging the calling worker.
    pub(crate) fn run(mut self) -> Result<PortObservation, SimError> {
        // Steady-state allocation accounting starts here: construction
        // (buffers, arenas, routing tables) is excluded, the simulation
        // loop itself is what must not allocate. The tally is zero unless
        // the binary installed a counting allocator.
        let allocs_at_start = counters::heap_allocs();
        let mut now = SimTime::ZERO;
        // One ready buffer for the whole run; `Network::advance` refills it
        // in place every iteration of the hot loop.
        let mut ready = Vec::new();
        // The watchdog backstops *livelock*: time keeps advancing but no
        // request ever completes (deadlock is caught by `next_time`
        // returning `None`). One observation per outer iteration.
        let mut watchdog = Watchdog::new(self.watchdog_limit.max(1));
        self.spawn_threads();
        while self.completed < self.total_requests {
            // Fixpoint at `now`: keep moving work until nothing changes.
            loop {
                let mut progress = false;
                progress |= self.stage_and_offer(now);
                progress |= self.inject_host(now);
                self.net.advance(now, &mut ready);
                if !ready.is_empty() {
                    progress = true;
                    for &node in &ready {
                        self.drain_node(node, now);
                    }
                }
                progress |= self.advance_controllers(now);
                progress |= self.inject_responses(now);
                if !progress {
                    break;
                }
            }
            if self.completed >= self.total_requests {
                break;
            }
            if watchdog.observe(self.completed) {
                return Err(self.stall_snapshot(now));
            }
            now = match self.next_time(now) {
                Some(t) => t,
                None => return Err(self.stall_snapshot(now)),
            };
        }

        let (hits, accesses) = self.row_hit_counts();
        let delivered = self.net.stats().delivered.value().max(1);
        let mut kernel = self.net.kernel_counters();
        kernel.steady_heap_allocs = counters::heap_allocs() - allocs_at_start;
        // Telemetry extraction (labels, rollup) happens after the
        // steady-state allocation tally is frozen: export cost is
        // end-of-run, not hot-loop.
        let telemetry = self.net.take_telemetry().map(|net| {
            Box::new(PortTelemetry {
                summary: TelemetrySummary {
                    decomp: self.decomp,
                    fairness: self.fairness,
                    queue_depth: net.queue_depth.clone(),
                    peak_link_utilization: net.peak_link_utilization(),
                    host: self.host_summary.take(),
                },
                net,
                ctrl_tracer: self.ctrl_tracer,
            })
        });
        Ok(PortObservation {
            wall: self.last_response_at,
            breakdown: self.breakdown,
            read_latency: self.read_latency,
            energy: EnergyBreakdown {
                network: EnergyPj::from_pj(
                    self.net
                        .stats()
                        .transport_energy_pj(self.transport_pj_per_bit_hop),
                ),
                read: self.read_energy,
                write: self.write_energy,
            },
            reads: self.reads,
            writes: self.writes,
            row_hit_rate: if accesses == 0 {
                0.0
            } else {
                hits as f64 / accesses as f64
            },
            avg_hops: self.hop_sum as f64 / delivered as f64,
            kernel,
            telemetry,
        })
    }

    /// The [`SimError::Stalled`] snapshot for the current wedged state.
    fn stall_snapshot(&self, now: SimTime) -> SimError {
        SimError::Stalled {
            at: now,
            completed: self.completed,
            total: self.total_requests,
            outstanding: self.outstanding,
            queued: self.host_queue.len(),
            // `outstanding` counts host tokens; packets parked in the
            // network arena with no pending event (e.g. waiting on
            // credits nobody will return) only show up here.
            in_network: self.net.in_flight(),
            flight: self.net.flight_dump(),
        }
    }

    /// Pulls one coalesced burst from the trace: a geometric number of
    /// references (mean = the workload's `burst_mean`) issued back to back.
    /// The burst's think time is the sum of its references' trace gaps
    /// scaled by the slot count (so `window` slots collectively offer the
    /// workload's intensity) and by the §6.1 port-concentration factor.
    fn pull_burst(&mut self) -> Option<(Vec<MemRef>, SimDuration)> {
        if self.pulled >= self.total_requests {
            return None;
        }
        let remaining = self.total_requests - self.pulled;
        let mean = self.trace.profile().burst_mean.max(1.0);
        let p_stop = 1.0 / mean;
        let len = (1 + self.burst_rng.geometric(p_stop, (4.0 * mean) as u64)).min(remaining);
        let mut refs = self.ref_pool.pop().unwrap_or_default();
        refs.reserve(len as usize);
        let mut gap_sum = SimDuration::ZERO;
        for _ in 0..len {
            let r = self.trace.next().expect("trace is infinite");
            gap_sum += r.gap;
            refs.push(r);
        }
        self.pulled += len;
        let think = gap_sum.as_ps() as f64 * self.window as f64 / self.intensity_scale;
        Some((refs, SimDuration::from_ps(think.round() as u64)))
    }

    /// Seeds each wavefront slot with its first burst, staggered by a
    /// think-time sample (the memoryless steady state).
    fn spawn_threads(&mut self) {
        for _ in 0..self.window {
            let Some((refs, think)) = self.pull_burst() else {
                break;
            };
            self.thinking.push((SimTime::ZERO + think, refs));
        }
    }

    /// A slot's burst fully completed at `at`: think toward the next one.
    fn recycle_thread(&mut self, at: SimTime) {
        if let Some((refs, think)) = self.pull_burst() {
            self.thinking.push((at + think, refs));
        }
    }

    /// Moves slots whose think time has elapsed into the host issue queue,
    /// issuing their whole burst back to back.
    fn stage_and_offer(&mut self, now: SimTime) -> bool {
        let mut progress = false;
        let mut i = 0;
        while i < self.thinking.len() {
            if self.thinking[i].0 <= now {
                let (due, mut refs) = self.thinking.swap_remove(i);
                let burst = self.next_burst;
                self.next_burst += 1;
                // A slot waits only for its reads (§4.2: writes are off
                // the critical path). All-write bursts recycle as soon as
                // the writes have been issued.
                let reads = refs.iter().filter(|r| !r.is_write).count() as u32;
                self.bursts.insert(burst, reads);
                for r in refs.drain(..) {
                    let token = self.next_token;
                    self.next_token += 1;
                    self.host_queue.push_back((token, r, due, burst));
                }
                self.ref_pool.push(refs);
                progress = true;
            } else {
                i += 1;
            }
        }
        progress
    }

    /// Injects queued host requests while the window and buffers allow.
    fn inject_host(&mut self, now: SimTime) -> bool {
        let mut progress = false;
        while let Some(&(token, r, offered_at, burst)) = self.host_queue.front() {
            if offered_at > now {
                break;
            }
            // Closed loop: the congestion window caps outstanding
            // requests. `window()` is always ≥ 1, so the gate re-opens
            // as soon as a response drains — no deadlock is possible.
            if let Some(policy) = &self.window_policy {
                if self.outstanding >= policy.window() as usize {
                    break;
                }
            }
            // The host write buffer is full: stall issue until acks drain.
            if r.is_write && self.outstanding_writes >= self.write_cap {
                break;
            }
            let decoded = self.addr_map.decode(r.addr);
            let kind = if r.is_write {
                PacketKind::WriteRequest
            } else {
                PacketKind::ReadRequest
            };
            let mut packet = Packet::request(token, kind, self.topo.host(), decoded.cube);
            if r.is_write && self.write_burst_routing && self.detector.in_burst() {
                packet = packet.with_class(PathClass::Read);
            }
            if !self.net.can_inject(self.topo.host(), 0, &packet) {
                break;
            }
            self.detector.observe(r.is_write);
            let tech = self.cube_tech[decoded.cube.index()].expect("request targets a cube");
            self.inflight.insert(
                token,
                Inflight {
                    offered_at,
                    arrived_at_cube: SimTime::ZERO,
                    mem_done: SimTime::ZERO,
                    decoded,
                    request: packet.clone(),
                    tech,
                    burst,
                },
            );
            self.net
                .inject(self.topo.host(), 0, packet, now)
                .expect("can_inject checked");
            self.outstanding += 1;
            if r.is_write {
                self.outstanding_writes += 1;
            }
            self.host_queue.pop_front();
            // A burst with no reads frees its slot once fully issued.
            let burst_fully_issued = self
                .host_queue
                .front()
                .is_none_or(|&(_, _, _, b)| b != burst);
            if burst_fully_issued && self.bursts.get(burst) == Some(&0) {
                self.bursts.remove(burst);
                self.recycle_thread(now);
            }
            progress = true;
        }
        progress
    }

    /// Consumes deliveries at `node`: responses at the host, requests at
    /// cubes (respecting controller backpressure).
    fn drain_node(&mut self, node: NodeId, now: SimTime) {
        if node == self.topo.host() {
            while let Some(d) = self.net.take_delivery(node, now) {
                self.finish_request(d.packet, d.arrived_at);
            }
            return;
        }
        // A cube: admit requests while their quadrant controller has room.
        let base = self.ctrl_base[node.index()] as usize;
        debug_assert!(base != u32::MAX as usize, "deliveries only at cubes");
        while let Some(head) = self.net.peek_delivery(node) {
            let token = head.token;
            let rec = self.inflight.get(token).expect("request is in flight");
            let quadrant = rec.decoded.quadrant;
            let is_write = head.kind == PacketKind::WriteRequest;
            if !self.ctrl[base + quadrant as usize].has_space(is_write) {
                break;
            }
            let d = self.net.take_delivery(node, now).expect("peeked");
            self.hop_sum += u64::from(d.packet.hops());
            let rec = self.inflight.get_mut(token).expect("in flight");
            rec.arrived_at_cube = d.arrived_at;
            // Carry any ECN mark picked up en route onto the stored
            // request, so `Packet::response_to` echoes it back to the
            // host (marks can also be added on the return path).
            rec.request.marked |= d.packet.marked;
            self.breakdown
                .to_memory
                .record(d.arrived_at.saturating_since(rec.offered_at));
            if self.telem_mode.enabled() {
                let phase = d.arrived_at.saturating_since(rec.offered_at);
                let bytes = if d.packet.kind.carries_data() {
                    self.data_bytes
                } else {
                    self.control_bytes
                };
                let slot = class_idx(d.packet.class) * self.topo.node_count() + node.index();
                // Clamp so queue + wire always reconstruct the phase.
                let wire = self.wire_to[slot].wire(bytes).min(phase);
                self.decomp.record_request(phase.saturating_sub(wire), wire);
            }
            // Requests entering via the wrong quadrant pay 1 ns to cross
            // the cube-internal switch (§5). With four quadrants, three of
            // four uniformly interleaved requests pay it; quadrant 0 is the
            // link-adjacent one in this model.
            let penalty = if quadrant == 0 {
                SimDuration::ZERO
            } else {
                WRONG_QUADRANT_PENALTY
            };
            let access = if d.packet.kind == PacketKind::WriteRequest {
                MemAccess::write(token, rec.decoded.bank, rec.decoded.row)
            } else {
                MemAccess::read(token, rec.decoded.bank, rec.decoded.row)
            };
            let ctrl = &mut self.ctrl[base + quadrant as usize];
            ctrl.enqueue(access, now + penalty)
                .expect("has_space checked");
            // Enqueueing can only move this controller's next event
            // earlier, so a min-merge keeps the cache exact.
            self.ctrl_min = match (self.ctrl_min, ctrl.next_event_time()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
    }

    /// Advances every controller that can act at `now`; queues responses.
    fn advance_controllers(&mut self, now: SimTime) -> bool {
        // No controller is due: the scan below would visit every quadrant
        // only to skip each one. The cache is the exact minimum, so this
        // early-out is behavior-preserving.
        if self.ctrl_min.is_none_or(|t| t > now) {
            return false;
        }
        let mut progress = false;
        // One completion buffer for the whole pass (and, via the struct
        // field, for the whole run) — `advance_into` appends in place.
        let mut done = std::mem::take(&mut self.completions);
        for idx in 0..self.ctrl_base.len() {
            let base = self.ctrl_base[idx];
            if base == u32::MAX {
                continue;
            }
            for q in 0..QUADRANTS as usize {
                let ctrl = &mut self.ctrl[base as usize + q];
                if ctrl.next_event_time().is_none_or(|t| t > now) {
                    continue;
                }
                done.clear();
                ctrl.advance_into(now, &mut done);
                let spec = *ctrl.spec();
                for c in done.drain(..) {
                    progress = true;
                    let rec = self
                        .inflight
                        .get_mut(c.token)
                        .expect("completion maps to in-flight request");
                    rec.mem_done = c.completed_at;
                    self.breakdown
                        .in_memory
                        .record(c.completed_at.saturating_since(rec.arrived_at_cube));
                    if self.telem_mode.enabled() {
                        let service = c.completed_at.saturating_since(rec.arrived_at_cube);
                        self.decomp.record_array(service);
                        if self.telem_mode.tracing() {
                            self.ctrl_tracer.record(TraceEvent {
                                ts_ps: rec.arrived_at_cube.as_ps(),
                                dur_ps: service.as_ps(),
                                track: self.ctrl_tracks[base as usize + q],
                                kind: TraceEventKind::BankAccess,
                                packet: c.token,
                            });
                        }
                    }
                    let energy = EnergyPj::array_access(&spec.energy, ACCESS_BITS, c.is_write);
                    if c.is_write {
                        self.write_energy += energy;
                    } else {
                        self.read_energy += energy;
                    }
                    let response = Packet::response_to(&rec.request, rec.tech == CubeTech::Nvm);
                    self.pending_responses.push(PendingResponse {
                        ready_at: c.completed_at,
                        cube: NodeId(idx as u32),
                        quadrant: q as u32,
                        packet: response,
                    });
                }
            }
        }
        self.completions = done;
        // Advancing pushes next-event times later (or to idle); recompute
        // the cached minimum from the memoized per-controller values.
        self.ctrl_min = self
            .ctrl
            .iter()
            .filter_map(QuadrantController::next_event_time)
            .min();
        progress
    }

    /// Injects completed responses whose data is ready and whose local
    /// injection buffer has space.
    fn inject_responses(&mut self, now: SimTime) -> bool {
        let mut progress = false;
        let mut i = 0;
        while i < self.pending_responses.len() {
            let p = &self.pending_responses[i];
            if p.ready_at <= now && self.net.can_inject(p.cube, p.quadrant as usize, &p.packet) {
                let p = self.pending_responses.swap_remove(i);
                self.net
                    .inject(p.cube, p.quadrant as usize, p.packet, now)
                    .expect("can_inject checked");
                progress = true;
            } else {
                i += 1;
            }
        }
        progress
    }

    fn finish_request(&mut self, response: Packet, at: SimTime) {
        self.hop_sum += u64::from(response.hops());
        let rec = self
            .inflight
            .remove(response.token)
            .expect("response maps to in-flight request");
        self.breakdown
            .from_memory
            .record(at.saturating_since(rec.mem_done));
        if self.telem_mode.enabled() {
            let phase = at.saturating_since(rec.mem_done);
            let bytes = if response.kind.carries_data() {
                self.data_bytes
            } else {
                self.control_bytes
            };
            let slot =
                class_idx(response.class) * self.topo.node_count() + rec.decoded.cube.index();
            let wire = self.wire_from[slot].wire(bytes).min(phase);
            self.decomp
                .record_response(phase.saturating_sub(wire), wire);
            let total = at.saturating_since(rec.offered_at);
            self.decomp.record_total(response.hops() as usize, total);
            self.fairness.record(rec.decoded.cube.index(), total);
        }
        self.outstanding -= 1;
        self.completed += 1;
        // Closed loop: every completion — reads and write acks alike —
        // feeds its RTT and ECN mark back into the window policy.
        if let Some(policy) = &mut self.window_policy {
            let rtt = at.saturating_since(rec.offered_at);
            policy.on_response(rtt, response.marked);
            if let Some(summary) = &mut self.host_summary {
                summary.record(at.as_ps(), policy.window(), rtt, response.marked);
            }
        }
        self.last_response_at = self.last_response_at.max(at);
        if response.kind == PacketKind::WriteAck {
            self.writes += 1;
            self.outstanding_writes -= 1;
            // Writes do not hold their slot (§4.2).
            return;
        }
        self.reads += 1;
        self.read_latency
            .record(at.saturating_since(rec.offered_at));
        // The slot recycles when its last read returns; any writes of the
        // burst still queued follow on their own.
        if let Some(remaining) = self.bursts.get_mut(rec.burst) {
            *remaining -= 1;
            if *remaining == 0 {
                self.bursts.remove(rec.burst);
                self.recycle_thread(at);
            }
        }
    }

    /// The earliest instant any component can make further progress.
    fn next_time(&self, now: SimTime) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for &(due, _) in &self.thinking {
            consider(due.max(now + SimDuration::from_ps(1)));
        }
        if let Some(t) = self.net.next_event_time() {
            consider(t.max(now + SimDuration::from_ps(1)));
        }
        if let Some(t) = self.ctrl_min {
            consider(t.max(now + SimDuration::from_ps(1)));
        }
        for p in &self.pending_responses {
            consider(p.ready_at.max(now + SimDuration::from_ps(1)));
        }
        next
    }

    fn row_hit_counts(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut total = 0;
        for ctrl in &self.ctrl {
            total += ctrl.accesses();
            hits += (ctrl.row_hit_rate() * ctrl.accesses() as f64).round() as u64;
        }
        (hits, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_workloads::Workload;

    fn quick_config(topology: TopologyKind, dram_fraction: f64) -> SystemConfig {
        let mut c = SystemConfig::paper_baseline(topology, dram_fraction).unwrap();
        c.requests_per_port = 500;
        c
    }

    fn try_run(config: &SystemConfig, workload: Workload) -> Result<PortObservation, SimError> {
        let space = config.capacity_per_port_gb() * (1 << 30);
        let mut profile = workload.profile();
        profile.footprint_fraction = 1.0;
        let trace = TraceGenerator::new(profile, space, config.seed);
        PortSim::try_new(config, trace)?.run()
    }

    fn run(config: &SystemConfig, workload: Workload) -> PortObservation {
        try_run(config, workload).expect("simulation completes")
    }

    #[test]
    fn completes_all_requests() {
        let c = quick_config(TopologyKind::Chain, 1.0);
        let r = run(&c, Workload::Dct);
        assert_eq!(r.reads + r.writes, 500);
        assert!(r.wall > SimTime::ZERO);
        assert!(r.breakdown.to_memory.count() == 500);
        assert!(r.breakdown.in_memory.count() == 500);
        assert!(r.breakdown.from_memory.count() == 500);
    }

    #[test]
    fn tree_beats_chain() {
        let chain = run(&quick_config(TopologyKind::Chain, 1.0), Workload::Bit);
        let tree = run(&quick_config(TopologyKind::Tree, 1.0), Workload::Bit);
        assert!(
            tree.wall < chain.wall,
            "tree {} vs chain {}",
            tree.wall,
            chain.wall
        );
        assert!(tree.avg_hops < chain.avg_hops);
    }

    #[test]
    fn deterministic_across_runs() {
        let c = quick_config(TopologyKind::Ring, 1.0);
        let a = run(&c, Workload::Kmeans);
        let b = run(&c, Workload::Kmeans);
        assert_eq!(a.wall, b.wall);
        assert_eq!(a.reads, b.reads);
    }

    #[test]
    fn read_write_mix_matches_workload() {
        let c = quick_config(TopologyKind::Tree, 1.0);
        let r = run(&c, Workload::Kmeans);
        let frac = r.reads as f64 / 500.0;
        assert!((frac - 0.8).abs() < 0.06, "read fraction {frac}");
    }

    #[test]
    fn nvm_write_energy_dominates_all_nvm() {
        let c = quick_config(TopologyKind::Chain, 0.0);
        let r = run(&c, Workload::Bit); // 50% writes
        assert!(r.energy.write > r.energy.read * 5.0);
    }

    #[test]
    fn energy_components_positive() {
        let c = quick_config(TopologyKind::Tree, 1.0);
        let r = run(&c, Workload::Dct);
        assert!(r.energy.network.as_pj() > 0.0);
        assert!(r.energy.read.as_pj() > 0.0);
        assert!(r.energy.write.as_pj() > 0.0);
    }

    #[test]
    fn all_nvm_has_higher_memory_latency() {
        let dram = run(&quick_config(TopologyKind::Tree, 1.0), Workload::Nw);
        let nvm = run(&quick_config(TopologyKind::Tree, 0.0), Workload::Nw);
        assert!(nvm.breakdown.in_memory.mean_ns() > dram.breakdown.in_memory.mean_ns());
    }

    #[test]
    fn skiplist_write_burst_routing_runs() {
        let mut c = quick_config(TopologyKind::SkipList, 1.0);
        c.write_burst_routing = true;
        let r = run(&c, Workload::Backprop);
        assert_eq!(r.reads + r.writes, 500);
    }

    #[test]
    fn tight_write_cap_throttles_write_heavy_traffic() {
        let mut loose = quick_config(TopologyKind::SkipList, 1.0);
        loose.host_write_buffer = 64;
        let mut tight = loose.clone();
        tight.host_write_buffer = 2;
        let fast = run(&loose, Workload::Backprop);
        let slow = run(&tight, Workload::Backprop);
        assert!(
            slow.wall > fast.wall,
            "a 2-entry write buffer must stall issue: {} vs {}",
            slow.wall,
            fast.wall
        );
    }

    #[test]
    fn mesh_extension_runs_end_to_end() {
        let r = run(&quick_config(TopologyKind::Mesh, 1.0), Workload::Dct);
        assert_eq!(r.reads + r.writes, 500);
        // A 4x4 mesh averages more hops than a ternary tree.
        let tree = run(&quick_config(TopologyKind::Tree, 1.0), Workload::Dct);
        assert!(r.avg_hops > tree.avg_hops);
    }

    #[test]
    fn oracle_age_arbitration_runs() {
        let c = quick_config(TopologyKind::Chain, 1.0).with_arbiter(mn_noc::ArbiterKind::OracleAge);
        let r = run(&c, Workload::Bit);
        assert_eq!(r.reads + r.writes, 500);
    }

    #[test]
    fn metacube_runs_all_mixes() {
        for frac in [1.0, 0.5, 0.0] {
            let r = run(&quick_config(TopologyKind::MetaCube, frac), Workload::Buff);
            assert_eq!(r.reads + r.writes, 500, "fraction {frac}");
        }
    }

    #[test]
    fn full_tracing_does_not_perturb_results() {
        let c = quick_config(TopologyKind::SkipList, 0.5);
        let base = run(&c, Workload::Kmeans);
        let mut traced_cfg = c.clone();
        traced_cfg.noc.trace = TraceConfig::Full;
        let traced = run(&traced_cfg, Workload::Kmeans);
        // Observation must not perturb: identical event stream, wall
        // clock, and statistics with telemetry fully armed.
        assert_eq!(base.wall, traced.wall);
        assert_eq!(base.kernel_events(), traced.kernel_events());
        assert_eq!(base.reads, traced.reads);
        assert_eq!(
            base.breakdown.to_memory.mean_ns(),
            traced.breakdown.to_memory.mean_ns()
        );
        assert!(base.telemetry().is_none());

        let t = traced.telemetry().expect("full mode collects telemetry");
        let d = &t.summary.decomp;
        // The three decomposition components reconstruct the measured
        // end-to-end mean exactly (each phase is split losslessly).
        let sum = d.request_ns() + d.array_ns() + d.response_ns();
        let measured = d.end_to_end().mean_ns();
        assert!(
            (sum - measured).abs() < 1e-6,
            "components {sum} vs end-to-end {measured}"
        );
        assert_eq!(d.end_to_end().count(), 500);
        let jain = t.summary.fairness.jain();
        assert!(jain > 0.0 && jain <= 1.0, "jain {jain}");
        assert!(t.summary.fairness.active_sources() > 1);
        assert!(t.summary.queue_depth.total() > 0);
        assert!(t.summary.peak_link_utilization > 0.0);
        assert!(!t.net.tracer.is_empty(), "link tracer saw events");
        assert!(!t.ctrl_tracer.is_empty(), "bank spans recorded");
    }

    #[test]
    fn counters_mode_skips_rings_but_keeps_rollup() {
        let mut c = quick_config(TopologyKind::Chain, 1.0);
        c.noc.trace = TraceConfig::Counters;
        let r = run(&c, Workload::Dct);
        let t = r.telemetry().expect("counters mode collects the rollup");
        assert!(!t.summary.decomp.is_empty());
        assert!(
            t.net.tracer.is_empty(),
            "no per-event rings in counters mode"
        );
        assert!(t.ctrl_tracer.is_empty());
    }

    #[test]
    fn wedged_network_returns_stalled() {
        // A zero-entry write buffer blocks the first write forever: issue
        // deadlocks once a write reaches the queue head and nothing is in
        // flight. The driver must diagnose the wedge, not hang or panic.
        let mut c = quick_config(TopologyKind::Chain, 1.0);
        c.total_capacity_gb = 16 * c.ports as u64 * 2; // two-cube chain
        c.host_write_buffer = 0;
        let err = try_run(&c, Workload::Backprop).expect_err("write-heavy trace must wedge");
        match err {
            SimError::Stalled {
                completed,
                total,
                queued,
                ..
            } => {
                assert!(completed < total, "stall means incomplete");
                assert!(queued > 0, "the blocked write sits in the queue");
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn partitioned_chain_returns_partitioned() {
        let mut c = quick_config(TopologyKind::Chain, 1.0);
        c.noc.fault.link_kill_rate = 0.3;
        let err = (0..50)
            .find_map(|seed| {
                let mut c = c.clone();
                c.noc.fault.seed = seed;
                try_run(&c, Workload::Dct).err()
            })
            .expect("some seed kills a chain link");
        match err {
            SimError::Partitioned { unreachable } => assert!(!unreachable.is_empty()),
            other => panic!("expected Partitioned, got {other:?}"),
        }
    }

    #[test]
    fn faulted_run_completes_with_extra_latency() {
        // Transient CRC faults slow a ring down but never lose requests.
        let c = quick_config(TopologyKind::Ring, 1.0);
        let healthy = run(&c, Workload::Dct);
        let mut faulty_cfg = c.clone();
        faulty_cfg.noc.fault.transient_rate = 0.05;
        faulty_cfg.noc.fault.seed = 7;
        let faulty = run(&faulty_cfg, Workload::Dct);
        assert_eq!(faulty.reads + faulty.writes, 500);
        assert!(
            faulty.wall > healthy.wall,
            "faults cost latency: {} vs {}",
            faulty.wall,
            healthy.wall
        );
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let mut c = quick_config(TopologyKind::SkipList, 1.0);
        c.noc.fault.transient_rate = 0.02;
        c.noc.fault.degrade_rate = 0.1;
        c.noc.fault.seed = 3;
        let a = run(&c, Workload::Kmeans);
        let b = run(&c, Workload::Kmeans);
        assert_eq!(a.wall, b.wall);
        assert_eq!(a.kernel_events(), b.kernel_events());
    }

    #[test]
    fn open_loop_default_has_no_policy_and_identical_results() {
        // A config whose host block is the default must behave byte-for-
        // byte like one that never heard of mn-host: same wall clock and
        // event stream as the pinned expectations of the other tests.
        let c = quick_config(TopologyKind::Chain, 1.0);
        assert!(!c.host.enabled());
        let r = run(&c, Workload::Dct);
        assert_eq!(r.reads + r.writes, 500);
    }

    #[test]
    fn fixed_window_throttles_and_completes() {
        use mn_host::WindowPolicyKind;
        let open = run(&quick_config(TopologyKind::Chain, 1.0), Workload::Bit);
        let mut c = quick_config(TopologyKind::Chain, 1.0);
        c.host.policy = WindowPolicyKind::Fixed(1);
        let throttled = run(&c, Workload::Bit);
        // One outstanding request at a time still finishes the trace —
        // the gate can never deadlock — but serializes the round trips.
        assert_eq!(throttled.reads + throttled.writes, 500);
        assert!(
            throttled.wall > open.wall,
            "window of 1 must stretch the run: {} vs {}",
            throttled.wall,
            open.wall
        );
    }

    #[test]
    fn closed_loop_run_is_deterministic() {
        use mn_host::WindowPolicyKind;
        let mut c = quick_config(TopologyKind::SkipList, 1.0);
        c.host.policy = WindowPolicyKind::Aimd;
        let a = run(&c, Workload::Kmeans);
        let b = run(&c, Workload::Kmeans);
        assert_eq!(a.wall, b.wall);
        assert_eq!(a.kernel_events(), b.kernel_events());
    }

    #[test]
    fn closed_loop_rollup_rides_on_telemetry() {
        use mn_host::WindowPolicyKind;
        let mut c = quick_config(TopologyKind::Chain, 1.0);
        c.host.policy = WindowPolicyKind::Ecn;
        c.noc.ecn_threshold = 4;
        c.noc.trace = TraceConfig::Counters;
        let r = run(&c, Workload::Bit);
        let t = r.telemetry().expect("counters mode collects the rollup");
        let host = t.summary.host.as_ref().expect("closed loop records");
        assert_eq!(host.responses, 500);
        assert!(host.peak_window >= host.min_window);
        assert!(host.min_window >= 1);
        assert!(host.rtt.mean_ns() > 0.0);
        assert!(host.window.total_samples() == 500);
        // The report grows a closed-loop section.
        assert!(t.summary.report().contains("closed loop"));

        // Open-loop telemetry keeps host: None.
        let mut c = quick_config(TopologyKind::Chain, 1.0);
        c.noc.trace = TraceConfig::Counters;
        let r = run(&c, Workload::Bit);
        assert!(r.telemetry().unwrap().summary.host.is_none());
    }

    /// Satellite property: AIMD/ECN windows stay within `[1, cap]` under
    /// random fault schedules (the in-tree xoshiro seed loop).
    #[test]
    fn adaptive_windows_bounded_under_fault_schedules() {
        use mn_host::WindowPolicyKind;
        for seed in 0..6u64 {
            let mut sr = SimRng::seed_from(0xFA11_0000 ^ seed);
            for kind in [WindowPolicyKind::Aimd, WindowPolicyKind::Ecn] {
                let mut c = quick_config(TopologyKind::Ring, 1.0);
                c.requests_per_port = 300;
                c.host.policy = kind;
                c.host.window_cap = 16;
                c.noc.ecn_threshold = 3;
                c.noc.trace = TraceConfig::Counters;
                c.noc.fault.transient_rate = sr.unit() * 0.05;
                c.noc.fault.degrade_rate = sr.unit() * 0.1;
                c.noc.fault.seed = sr.next_u64();
                let r = run(&c, Workload::Kmeans);
                let t = r.telemetry().expect("rollup present");
                let host = t.summary.host.as_ref().expect("closed loop records");
                assert!(
                    host.min_window >= 1 && host.peak_window <= c.host.window_cap,
                    "{kind:?} window range [{}, {}] escapes [1, {}] (seed {seed})",
                    host.min_window,
                    host.peak_window,
                    c.host.window_cap
                );
            }
        }
    }
}
