//! Helpers for sweeping the paper's configuration grid.
//!
//! Every results figure (7, 10, 11, 12, 13, 14, 15) sweeps some subset of
//! {topology} x {DRAM:NVM mix} x {arbitration}, normalized to the `100%-C`
//! (all-DRAM chain) baseline. This module provides the grid and the
//! normalization arithmetic so each `mn-bench` binary stays declarative.

use mn_sim::SimTime;
use mn_topo::{NvmPlacement, TopologyKind};

use crate::config::{ConfigError, SystemConfig};

/// One DRAM:NVM capacity mix, as the paper labels them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixSpec {
    /// Fraction of capacity from DRAM.
    pub dram_fraction: f64,
    /// NVM placement (irrelevant for homogeneous mixes).
    pub placement: NvmPlacement,
}

impl MixSpec {
    /// `100%` — all DRAM.
    pub const ALL_DRAM: MixSpec = MixSpec {
        dram_fraction: 1.0,
        placement: NvmPlacement::Last,
    };
    /// `50% (NVM-L)` — half the capacity from NVM, placed far from the host.
    pub const HALF_NVM_LAST: MixSpec = MixSpec {
        dram_fraction: 0.5,
        placement: NvmPlacement::Last,
    };
    /// `50% (NVM-F)` — half the capacity from NVM, placed next to the host.
    pub const HALF_NVM_FIRST: MixSpec = MixSpec {
        dram_fraction: 0.5,
        placement: NvmPlacement::First,
    };
    /// `0%` — all NVM.
    pub const ALL_NVM: MixSpec = MixSpec {
        dram_fraction: 0.0,
        placement: NvmPlacement::Last,
    };
}

/// The four mixes of the paper's figures, in presentation order.
pub fn mix_grid() -> [MixSpec; 4] {
    [
        MixSpec::ALL_DRAM,
        MixSpec::HALF_NVM_LAST,
        MixSpec::HALF_NVM_FIRST,
        MixSpec::ALL_NVM,
    ]
}

/// The paper's short label for a mix: `100%`, `50% (NVM-L)`, ….
pub fn ratio_label(mix: MixSpec) -> String {
    let pct = (mix.dram_fraction * 100.0).round() as u32;
    if pct == 100 || pct == 0 {
        format!("{pct}%")
    } else {
        let p = match mix.placement {
            NvmPlacement::Last => "NVM-L",
            NvmPlacement::First => "NVM-F",
        };
        format!("{pct}% ({p})")
    }
}

/// A (topology, mix) grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigPoint {
    /// The topology.
    pub topology: TopologyKind,
    /// The DRAM:NVM mix.
    pub mix: MixSpec,
}

impl ConfigPoint {
    /// Builds the [`SystemConfig`] for this grid point.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the mix is unrealizable.
    pub fn config(&self) -> Result<SystemConfig, ConfigError> {
        Ok(
            SystemConfig::paper_baseline(self.topology, self.mix.dram_fraction)?
                .with_nvm_placement(self.mix.placement),
        )
    }
}

/// The `100%-C` configuration every figure normalizes against.
pub fn baseline_chain_config() -> SystemConfig {
    SystemConfig::paper_baseline(TopologyKind::Chain, 1.0)
        .expect("the all-DRAM chain is always realizable")
}

/// Speedup of `wall` over `baseline_wall` as the percentage the paper
/// plots: `(t_base / t) - 1`, so 0% means parity and 50% means 1.5x.
///
/// # Panics
///
/// Panics if `wall` is zero.
pub fn speedup_pct(baseline_wall: SimTime, wall: SimTime) -> f64 {
    assert!(wall > SimTime::ZERO, "wall time must be positive");
    (baseline_wall.as_ps() as f64 / wall.as_ps() as f64 - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_paper_order() {
        let g = mix_grid();
        assert_eq!(ratio_label(g[0]), "100%");
        assert_eq!(ratio_label(g[1]), "50% (NVM-L)");
        assert_eq!(ratio_label(g[2]), "50% (NVM-F)");
        assert_eq!(ratio_label(g[3]), "0%");
    }

    #[test]
    fn config_points_build() {
        for topology in TopologyKind::ALL {
            for mix in mix_grid() {
                let c = ConfigPoint { topology, mix }.config().unwrap();
                assert!(c.placement().is_ok());
            }
        }
    }

    #[test]
    fn speedup_arithmetic() {
        let base = SimTime::from_ns(150);
        assert!((speedup_pct(base, SimTime::from_ns(100)) - 50.0).abs() < 1e-9);
        assert!((speedup_pct(base, SimTime::from_ns(150))).abs() < 1e-9);
        assert!(speedup_pct(base, SimTime::from_ns(200)) < 0.0);
    }

    #[test]
    fn baseline_is_all_dram_chain() {
        let c = baseline_chain_config();
        assert_eq!(c.label(), "100%-C");
    }

    #[test]
    #[should_panic(expected = "wall time must be positive")]
    fn zero_wall_panics() {
        let _ = speedup_pct(SimTime::from_ns(1), SimTime::ZERO);
    }
}
