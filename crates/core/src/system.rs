//! The top-level entry point: simulate a [`SystemConfig`] under a workload.

use mn_workloads::{TraceGenerator, Workload};

use crate::config::SystemConfig;
use crate::error::SimError;
use crate::port::{PortObservation, PortSim};
use crate::stats::{EnergyBreakdown, LatencyBreakdown, RunResult};

/// Simulates `config` running `workload` and returns aggregated results.
///
/// The system's ports serve disjoint address slices, so each simulated port
/// is an independent MN instance; `config.simulated_ports` of them run
/// (with decorrelated seeds) and their statistics are merged. The reported
/// wall time is the slowest port's completion time — the system is done
/// when every port is.
///
/// # Panics
///
/// Panics if the configuration's placement is invalid (validate with
/// [`SystemConfig::placement`] first; configs built through
/// [`SystemConfig::paper_baseline`] are always valid).
///
/// # Example
///
/// ```
/// use mn_core::{simulate, SystemConfig};
/// use mn_topo::TopologyKind;
/// use mn_workloads::Workload;
///
/// let mut config = SystemConfig::paper_baseline(TopologyKind::Ring, 1.0).unwrap();
/// config.requests_per_port = 1_000;
/// let result = simulate(&config, Workload::Nw);
/// assert_eq!(result.reads + result.writes, 1_000);
/// ```
pub fn simulate(config: &SystemConfig, workload: Workload) -> RunResult {
    try_simulate(config, workload).unwrap_or_else(|e| panic!("{e}"))
}

/// [`simulate`] with structured failure: a partitioned network or a
/// stalled port surfaces as a [`SimError`] value instead of a panic, so
/// campaign workers can attribute the failure to its grid point.
pub fn try_simulate(config: &SystemConfig, workload: Workload) -> Result<RunResult, SimError> {
    let observations = (0..port_count(config))
        .map(|port| try_simulate_port(config, workload, port))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(merge_port_observations(config, workload, observations))
}

/// The number of independent port simulations `config` describes.
pub fn port_count(config: &SystemConfig) -> u32 {
    config.simulated_ports.max(1)
}

/// Simulates one port of `config` (0-based index) under `workload`.
///
/// Ports serve disjoint address slices with decorrelated seeds, so each
/// call is an independent, deterministic simulation. [`simulate`] is the
/// serial composition of this with [`merge_port_observations`]; a
/// scheduler (mn-campaign) fans these calls out to worker threads instead,
/// and — because the merge is ordered — the aggregate is bit-identical
/// either way.
///
/// # Panics
///
/// Panics if the configuration's placement is invalid.
pub fn simulate_port(config: &SystemConfig, workload: Workload, port: u32) -> PortObservation {
    try_simulate_port(config, workload, port).unwrap_or_else(|e| panic!("port {port}: {e}"))
}

/// [`simulate_port`] with structured failure (see [`try_simulate`]).
///
/// # Errors
///
/// Returns [`SimError::Partitioned`] when fault injection severed the
/// topology and [`SimError::Stalled`] when the port wedges mid-run.
///
/// # Panics
///
/// Panics if the configuration's placement is invalid.
pub fn try_simulate_port(
    config: &SystemConfig,
    workload: Workload,
    port: u32,
) -> Result<PortObservation, SimError> {
    config.placement().expect("invalid configuration");
    let space_bytes = config.capacity_per_port_gb() * (1 << 30);
    let seed = config
        .seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(port) + 1));
    let trace = TraceGenerator::new(workload.profile(), space_bytes, seed);
    PortSim::try_new(config, trace)?.run()
}

/// Merges per-port observations into the aggregate [`RunResult`].
///
/// `observations` must be supplied in ascending port order: the merge sums
/// floating-point statistics, and summation order is part of the
/// bit-reproducible contract the result cache depends on.
pub fn merge_port_observations(
    config: &SystemConfig,
    workload: Workload,
    observations: impl IntoIterator<Item = PortObservation>,
) -> RunResult {
    let mut wall = mn_sim::SimTime::ZERO;
    let mut breakdown = LatencyBreakdown::default();
    let mut energy = EnergyBreakdown::default();
    let mut reads = 0;
    let mut writes = 0;
    let mut read_latency = mn_sim::Histogram::new();
    let mut hit_rate_sum = 0.0;
    let mut hops_sum = 0.0;
    let mut telemetry: Option<mn_telemetry::TelemetrySummary> = None;

    for mut result in observations {
        wall = wall.max(result.wall);
        breakdown.merge(&result.breakdown);
        energy.merge(&result.energy);
        read_latency.merge(&result.read_latency);
        reads += result.reads;
        writes += result.writes;
        hit_rate_sum += result.row_hit_rate;
        hops_sum += result.avg_hops;
        // Telemetry merges in the same ascending-port order as the
        // float statistics above; the rollup is deterministic too.
        if let Some(t) = result.take_telemetry() {
            telemetry
                .get_or_insert_with(mn_telemetry::TelemetrySummary::default)
                .merge(&t.summary);
        }
    }

    let n = f64::from(port_count(config));
    RunResult {
        label: config.label(),
        workload: workload.label().to_string(),
        wall,
        breakdown,
        energy,
        reads,
        writes,
        row_hit_rate: hit_rate_sum / n,
        avg_hops: hops_sum / n,
        read_latency,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_topo::TopologyKind;

    fn quick(topology: TopologyKind) -> SystemConfig {
        let mut c = SystemConfig::paper_baseline(topology, 1.0).unwrap();
        c.requests_per_port = 400;
        c
    }

    #[test]
    fn aggregates_multiple_ports() {
        let mut c = quick(TopologyKind::Tree);
        c.simulated_ports = 2;
        let r = simulate(&c, Workload::Nw);
        assert_eq!(r.reads + r.writes, 800);
        assert_eq!(r.breakdown.to_memory.count(), 800);
    }

    #[test]
    fn labels_propagate() {
        let r = simulate(&quick(TopologyKind::Chain), Workload::Dct);
        assert_eq!(r.label, "100%-C");
        assert_eq!(r.workload, "DCT");
    }

    #[test]
    fn throughput_is_positive() {
        let r = simulate(&quick(TopologyKind::Ring), Workload::Bit);
        assert!(r.throughput_per_us() > 0.0);
    }
}
