//! Result types: latency breakdowns (Fig. 5), energy breakdowns (Fig. 15),
//! and per-run summaries.

use mn_mem::EnergyPj;
use mn_sim::{Accumulator, Histogram, SimDuration, SimTime};
use mn_telemetry::TelemetrySummary;

/// The three-way latency split of the paper's Fig. 5: time spent getting to
/// the cube, inside the memory arrays, and returning to the host.
#[derive(Debug, Clone, Default)]
pub struct LatencyBreakdown {
    /// Offer-to-cube-arrival latency (includes host-port queuing — the
    /// paper's dominant term under load).
    pub to_memory: Accumulator,
    /// Cube-arrival to data-ready latency (controller queue + bank timing
    /// + wrong-quadrant penalty).
    pub in_memory: Accumulator,
    /// Data-ready to response-delivery latency.
    pub from_memory: Accumulator,
}

impl LatencyBreakdown {
    /// Mean end-to-end latency in nanoseconds.
    pub fn total_mean_ns(&self) -> f64 {
        self.to_memory.mean_ns() + self.in_memory.mean_ns() + self.from_memory.mean_ns()
    }

    /// Fractions `(to, in, from)` of the mean end-to-end latency; zeros
    /// when empty.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total_mean_ns();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.to_memory.mean_ns() / total,
            self.in_memory.mean_ns() / total,
            self.from_memory.mean_ns() / total,
        )
    }

    /// Merges another breakdown (for multi-port aggregation).
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        self.to_memory.merge(&other.to_memory);
        self.in_memory.merge(&other.in_memory);
        self.from_memory.merge(&other.from_memory);
    }
}

/// The Fig. 15 energy split: data movement vs. array reads vs. array writes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Transport (per-bit-per-hop) energy.
    pub network: EnergyPj,
    /// Memory array read energy.
    pub read: EnergyPj,
    /// Memory array write energy.
    pub write: EnergyPj,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> EnergyPj {
        self.network + self.read + self.write
    }

    /// Adds another breakdown.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.network += other.network;
        self.read += other.read;
        self.write += other.write;
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The configuration label (e.g. `50%-T (NVM-L)`).
    pub label: String,
    /// Workload label.
    pub workload: String,
    /// Simulated time for the slowest simulated port to finish its trace —
    /// the execution-time metric behind every speedup figure.
    pub wall: SimTime,
    /// Latency breakdown over completed requests.
    pub breakdown: LatencyBreakdown,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Completed reads.
    pub reads: u64,
    /// Completed writes.
    pub writes: u64,
    /// Row-buffer hit rate across all controllers.
    pub row_hit_rate: f64,
    /// Mean network hops per delivered packet.
    pub avg_hops: f64,
    /// End-to-end **read** latency distribution (offer → response). Tails
    /// matter here: arbitration schemes move the p95/p99 far more than the
    /// mean (the §4.1 parking-lot problem starves the farthest requests).
    pub read_latency: Histogram,
    /// Cross-port telemetry rollup (latency decomposition, fairness,
    /// queue depth, peak link utilization). `None` when the run's
    /// [`mn_noc::TraceConfig`] was `Off` — the default, and the mode
    /// every cached or fingerprinted result is produced under.
    pub telemetry: Option<TelemetrySummary>,
}

impl RunResult {
    /// Requests completed per microsecond of simulated time — a throughput
    /// view of the same result.
    pub fn throughput_per_us(&self) -> f64 {
        let us = self.wall.as_ns_f64() / 1000.0;
        if us == 0.0 {
            0.0
        } else {
            (self.reads + self.writes) as f64 / us
        }
    }

    /// An approximate quantile of end-to-end read latency, or zero when no
    /// reads completed.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn read_latency_quantile(&self, q: f64) -> SimDuration {
        self.read_latency.quantile(q).unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_sim::SimDuration;

    #[test]
    fn fractions_sum_to_one() {
        let mut b = LatencyBreakdown::default();
        b.to_memory.record(SimDuration::from_ns(60));
        b.in_memory.record(SimDuration::from_ns(20));
        b.from_memory.record(SimDuration::from_ns(20));
        let (to, inm, from) = b.fractions();
        assert!((to + inm + from - 1.0).abs() < 1e-9);
        assert!((to - 0.6).abs() < 1e-9);
        assert!((b.total_mean_ns() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let b = LatencyBreakdown::default();
        assert_eq!(b.fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn breakdown_merge() {
        let mut a = LatencyBreakdown::default();
        a.to_memory.record(SimDuration::from_ns(10));
        let mut b = LatencyBreakdown::default();
        b.to_memory.record(SimDuration::from_ns(30));
        a.merge(&b);
        assert_eq!(a.to_memory.count(), 2);
        assert!((a.to_memory.mean_ns() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn energy_totals() {
        let mut e = EnergyBreakdown {
            network: EnergyPj::from_pj(10.0),
            read: EnergyPj::from_pj(5.0),
            write: EnergyPj::from_pj(15.0),
        };
        assert_eq!(e.total(), EnergyPj::from_pj(30.0));
        e.merge(&e.clone());
        assert_eq!(e.total(), EnergyPj::from_pj(60.0));
    }

    #[test]
    fn throughput_and_quantiles() {
        let mut hist = Histogram::new();
        hist.record(SimDuration::from_ns(100));
        hist.record(SimDuration::from_ns(100));
        hist.record(SimDuration::from_us(10));
        let r = RunResult {
            label: "x".into(),
            workload: "y".into(),
            wall: SimTime::from_us(10),
            breakdown: LatencyBreakdown::default(),
            energy: EnergyBreakdown::default(),
            reads: 500,
            writes: 500,
            row_hit_rate: 0.0,
            avg_hops: 0.0,
            read_latency: hist,
            telemetry: None,
        };
        assert!((r.throughput_per_us() - 100.0).abs() < 1e-9);
        assert!(r.read_latency_quantile(0.5) <= SimDuration::from_ns(100));
        assert!(r.read_latency_quantile(1.0) > SimDuration::from_us(5));
        let empty = RunResult {
            read_latency: Histogram::new(),
            ..r
        };
        assert_eq!(empty.read_latency_quantile(0.99), SimDuration::ZERO);
    }
}
