//! Structured simulation failures.
//!
//! A simulation that cannot complete must say *why* — a worker pool that
//! sees a panic (or worse, a hang) has nothing to report against the grid
//! point that caused it. [`SimError`] is the diagnosis: construction-time
//! partitions (fault injection severed the topology) and runtime stalls
//! (the driver stopped making progress, caught either by event-queue
//! exhaustion or by the livelock watchdog) both surface as values that
//! travel through channels, format into campaign records, and compare in
//! tests.

use std::error::Error;
use std::fmt;

use mn_noc::NetworkError;
use mn_sim::SimTime;
use mn_topo::NodeId;

/// Why a port simulation could not produce an observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Hard link faults partitioned the memory network at construction:
    /// the listed cubes have no route to the host on some path class, so
    /// the configured traffic can never complete.
    Partitioned {
        /// Cubes unreachable from the host (ascending id order).
        unreachable: Vec<NodeId>,
    },
    /// The simulation stopped making progress with requests outstanding —
    /// either no component had a next event (deadlock) or the completion
    /// count stayed flat past the watchdog limit (livelock). The snapshot
    /// captures the wedged state for diagnosis.
    Stalled {
        /// Simulated time at which progress stopped.
        at: SimTime,
        /// Requests completed before the stall.
        completed: u64,
        /// Requests the run was configured to complete.
        total: u64,
        /// Requests in flight (injected, no response) at the stall.
        outstanding: usize,
        /// Requests still queued at the host at the stall.
        queued: usize,
        /// Packets resident in the network (injected, not delivered) at
        /// the stall. This includes arena-resident packets with **no
        /// pending kernel event** — packets parked on backpressured
        /// buffers waiting for credits — which the host-side counts
        /// above cannot see, and which are exactly what a credit
        /// deadlock strands.
        in_network: u64,
        /// The last kernel events before the stall, oldest first, from
        /// the network's flight recorder. Empty unless the run traced
        /// with [`mn_noc::TraceConfig::Full`].
        flight: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Partitioned { unreachable } => {
                write!(
                    f,
                    "network partitioned: {} cube(s) unreachable from the host (",
                    unreachable.len()
                )?;
                for (i, node) in unreachable.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{node}")?;
                }
                write!(f, ")")
            }
            SimError::Stalled {
                at,
                completed,
                total,
                outstanding,
                queued,
                in_network,
                flight,
            } => {
                write!(
                    f,
                    "simulation stalled at {at}: {completed} of {total} requests \
                     complete, {outstanding} outstanding, {queued} queued, \
                     {in_network} in network"
                )?;
                if !flight.is_empty() {
                    write!(f, "\nlast kernel events:")?;
                    for line in flight {
                        write!(f, "\n  {line}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl Error for SimError {}

impl From<NetworkError> for SimError {
    fn from(e: NetworkError) -> Self {
        match e {
            NetworkError::Partitioned { unreachable } => SimError::Partitioned { unreachable },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_display_lists_cubes() {
        let e = SimError::Partitioned {
            unreachable: vec![NodeId(3), NodeId(4)],
        };
        let msg = e.to_string();
        assert!(msg.contains("2 cube(s)"), "{msg}");
    }

    #[test]
    fn stalled_display_has_snapshot() {
        let e = SimError::Stalled {
            at: SimTime::from_ns(5),
            completed: 10,
            total: 100,
            outstanding: 2,
            queued: 7,
            in_network: 3,
            flight: Vec::new(),
        };
        let msg = e.to_string();
        assert!(msg.contains("10 of 100"), "{msg}");
        assert!(msg.contains("2 outstanding"), "{msg}");
        assert!(msg.contains("7 queued"), "{msg}");
        assert!(msg.contains("3 in network"), "{msg}");
        assert!(!msg.contains("last kernel events"), "{msg}");
    }

    #[test]
    fn stalled_display_appends_flight_recorder() {
        let e = SimError::Stalled {
            at: SimTime::from_ns(5),
            completed: 0,
            total: 1,
            outstanding: 1,
            queued: 0,
            in_network: 1,
            flight: vec!["2ns arrive p0 at n1 port 0".into(), "2ns try-arb n1".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("last kernel events:"), "{msg}");
        assert!(msg.contains("\n  2ns try-arb n1"), "{msg}");
    }

    #[test]
    fn network_error_converts() {
        let net = NetworkError::Partitioned {
            unreachable: vec![NodeId(1)],
        };
        let sim: SimError = net.into();
        assert_eq!(
            sim,
            SimError::Partitioned {
                unreachable: vec![NodeId(1)]
            }
        );
    }
}
