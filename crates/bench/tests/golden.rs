//! Golden checks for the kernel's bit-reproducibility contract.
//!
//! The committed `results/*.txt` and the 694-entry `results/cache/` are
//! the regression oracle for every kernel optimization: hot-path changes
//! must leave both the simulated numbers and the config fingerprints
//! untouched. Three layers of defense:
//!
//! 1. `cache_key` is pinned to a literal — silent fingerprint drift fails
//!    with a readable diff.
//! 2. The committed cache must *hit* for the whole Fig. 5 grid — loads are
//!    re-verified against the stored full fingerprint, so this breaks if
//!    either the fingerprint or the result encoding changes.
//! 3. The figure tables re-rendered from those results must be
//!    byte-identical to the committed text files; the `#[ignore]`d
//!    variants re-simulate from scratch (no cache) and prove the kernel
//!    itself still produces the bytes.

use mn_bench::{fig05_points, fig05_table, fig10_report, Harness};
use mn_campaign::{CampaignPoint, DiskCache};
use mn_core::SystemConfig;
use mn_topo::TopologyKind;
use mn_workloads::Workload;

fn committed_cache() -> DiskCache {
    DiskCache::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/cache"))
}

const FIG05_GOLDEN: &str = include_str!("../../../results/fig05.txt");
const FIG10_GOLDEN: &str = include_str!("../../../results/fig10.txt");

/// The environment knobs (`MN_REQUESTS`, `MN_SEED`, the fault overrides,
/// `MN_TRACE`, and the closed-loop host knobs) reshape every figure grid;
/// the goldens were produced with the defaults (fault injection off,
/// telemetry off, open-loop hosts). `MN_TRACE` never changes the numbers,
/// but the from-scratch replays assert the exact default-mode behavior,
/// so it is excluded like the rest.
fn env_is_default() -> bool {
    [
        "MN_REQUESTS",
        "MN_SEED",
        "MN_FAULT_RATE",
        "MN_FAULT_SEED",
        "MN_TRACE",
        "MN_HOST_POLICY",
        "MN_HOST_WINDOW",
    ]
    .iter()
    .all(|knob| std::env::var_os(knob).is_none())
}

#[test]
fn fingerprints_survive_kernel_changes() {
    // One fully specified point, pinned end to end. If this fails, cached
    // results can no longer be served and every figure regenerates from
    // scratch — that is a behavior change, not a refactor; either restore
    // the fingerprint or bump `SIM_VERSION` and regenerate the goldens.
    let mut config = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
    config.requests_per_port = 6_000;
    let point = CampaignPoint::new(config, Workload::Dct);
    assert_eq!(point.cache_key(), "348808c871d2e161");
}

/// Telemetry's zero-perturbation contract, checked against the committed
/// goldens themselves: a full-tracing run of the pinned point must encode
/// to exactly the bytes stored in `results/cache/` by an untraced run.
#[test]
#[ignore = "re-simulates the pinned chain point; run with --ignored"]
fn full_tracing_reproduces_the_committed_golden_bytes() {
    if !env_is_default() {
        eprintln!("skipping: MN_REQUESTS/MN_SEED override the golden grid");
        return;
    }
    let mut config = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
    config.requests_per_port = 6_000;
    config.noc.trace = mn_core::TraceConfig::Full;
    let point = CampaignPoint::new(config.clone(), Workload::Dct);
    // Tracing is excluded from the fingerprint, so the traced point still
    // addresses the committed entry...
    assert_eq!(point.cache_key(), "348808c871d2e161");
    let cached = committed_cache().load(&point).expect("committed entry");
    // ...and a traced re-simulation must reproduce its exact bytes.
    let traced = mn_core::try_simulate(&config, Workload::Dct).expect("simulates");
    assert!(traced.telemetry.is_some(), "tracing was on");
    assert_eq!(
        mn_campaign::codec::encode_result(&traced),
        mn_campaign::codec::encode_result(&cached),
    );
}

#[test]
fn committed_cache_serves_the_fig05_grid() {
    if !env_is_default() {
        eprintln!("skipping: MN_REQUESTS/MN_SEED override the golden grid");
        return;
    }
    let cache = committed_cache();
    for point in fig05_points() {
        assert!(
            cache.load(&point).is_some(),
            "cache miss for {} / {} (key {}): kernel changes altered the \
             fingerprint or the stored results",
            point.config.label(),
            point.workload.label(),
            point.cache_key(),
        );
    }
}

#[test]
fn fig05_regenerates_byte_identically_from_cache() {
    if !env_is_default() {
        eprintln!("skipping: MN_REQUESTS/MN_SEED override the golden grid");
        return;
    }
    let cache = committed_cache();
    let results: Vec<_> = fig05_points()
        .iter()
        .map(|p| cache.load(p).expect("covered by the cache-hit test"))
        .collect();
    assert_eq!(fig05_table(&results), FIG05_GOLDEN);
}

/// From-scratch variant: re-simulates the whole Fig. 5 grid (no cache) and
/// demands the committed bytes. `#[ignore]`d for local `cargo test` speed;
/// CI's golden step runs it.
#[test]
#[ignore = "re-simulates the full Fig. 5 grid; run with --ignored"]
fn fig05_regenerates_byte_identically_from_scratch() {
    if !env_is_default() {
        eprintln!("skipping: MN_REQUESTS/MN_SEED override the golden grid");
        return;
    }
    let results = Harness::bare(1).run_grid(fig05_points());
    assert_eq!(fig05_table(&results), FIG05_GOLDEN);
}

/// Replays Fig. 10 through the full campaign path (per-port decomposition,
/// ordered merge, cache). With intact fingerprints every point is a cache
/// hit and this finishes in seconds; on drift it re-simulates, so it is
/// `#[ignore]`d for local runs and exercised by CI's golden step.
#[test]
#[ignore = "replays the full Fig. 10 campaign; run with --ignored"]
fn fig10_regenerates_byte_identically() {
    if !env_is_default() {
        eprintln!("skipping: MN_REQUESTS/MN_SEED override the golden grid");
        return;
    }
    let mut harness = Harness::cached(
        2,
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/cache"),
    );
    assert_eq!(fig10_report(&mut harness), FIG10_GOLDEN);
}
