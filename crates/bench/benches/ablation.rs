//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! half- vs full-duplex links, arbitration schemes, and skip-list write
//! routing. These run short end-to-end simulations and report their wall
//! clock; the *simulated* outcomes of the same ablations are what the
//! fig10/fig12 binaries report.

use criterion::{criterion_group, criterion_main, Criterion};

use mn_core::{simulate, SystemConfig};
use mn_noc::{ArbiterKind, LinkDuplex};
use mn_topo::TopologyKind;
use mn_workloads::Workload;

fn quick(topology: TopologyKind) -> SystemConfig {
    let mut c = SystemConfig::paper_baseline(topology, 1.0).expect("valid");
    c.requests_per_port = 600;
    c
}

fn bench_duplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("duplex_ablation");
    group.sample_size(10);
    for duplex in [LinkDuplex::Half, LinkDuplex::Full] {
        group.bench_function(format!("{duplex:?}"), |b| {
            let mut config = quick(TopologyKind::Chain);
            config.noc.duplex = duplex;
            b.iter(|| simulate(&config, Workload::Dct))
        });
    }
    group.finish();
}

fn bench_arbiters(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter_ablation");
    group.sample_size(10);
    for arbiter in [
        ArbiterKind::RoundRobin,
        ArbiterKind::Distance,
        ArbiterKind::AdaptiveDistance,
    ] {
        group.bench_function(format!("{arbiter:?}"), |b| {
            let config = quick(TopologyKind::Chain).with_arbiter(arbiter);
            b.iter(|| simulate(&config, Workload::Dct))
        });
    }
    group.finish();
}

fn bench_skiplist_write_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("skiplist_write_routing");
    group.sample_size(10);
    for burst_routing in [false, true] {
        group.bench_function(format!("burst_routing_{burst_routing}"), |b| {
            let mut config = quick(TopologyKind::SkipList);
            config.write_burst_routing = burst_routing;
            b.iter(|| simulate(&config, Workload::Backprop))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_duplex,
    bench_arbiters,
    bench_skiplist_write_routing
);
criterion_main!(benches);
