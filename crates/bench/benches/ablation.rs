//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! half- vs full-duplex links, arbitration schemes, and skip-list write
//! routing. These run short end-to-end simulations and report their wall
//! clock; the *simulated* outcomes of the same ablations are what the
//! fig10/fig12 binaries report. Self-contained harness, no external crates.

use std::hint::black_box;
use std::time::Instant;

use mn_core::{simulate, SystemConfig};
use mn_noc::{ArbiterKind, LinkDuplex};
use mn_topo::TopologyKind;
use mn_workloads::Workload;

fn quick(topology: TopologyKind) -> SystemConfig {
    let mut c = SystemConfig::paper_baseline(topology, 1.0).expect("valid");
    c.requests_per_port = 600;
    c
}

fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    black_box(f()); // warm up
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / f64::from(iters);
    println!("{name:<44} {:>10.2} ms/iter", per_iter * 1e3);
}

fn main() {
    for duplex in [LinkDuplex::Half, LinkDuplex::Full] {
        let mut config = quick(TopologyKind::Chain);
        config.noc.duplex = duplex;
        bench(&format!("duplex_ablation/{duplex:?}"), 10, || {
            simulate(&config, Workload::Dct)
        });
    }

    for arbiter in [
        ArbiterKind::RoundRobin,
        ArbiterKind::Distance,
        ArbiterKind::AdaptiveDistance,
    ] {
        let config = quick(TopologyKind::Chain).with_arbiter(arbiter);
        bench(&format!("arbiter_ablation/{arbiter:?}"), 10, || {
            simulate(&config, Workload::Dct)
        });
    }

    for burst_routing in [false, true] {
        let mut config = quick(TopologyKind::SkipList);
        config.write_burst_routing = burst_routing;
        bench(
            &format!("skiplist_write_routing/burst_routing_{burst_routing}"),
            10,
            || simulate(&config, Workload::Backprop),
        );
    }
}
