//! Micro-benchmarks for the simulator's hot paths: the event queue,
//! routing-table construction, router arbitration, and a small end-to-end
//! network run. Self-contained timing harness (no external crates): each
//! case warms up, then reports mean wall time per iteration.

use std::hint::black_box;
use std::time::Instant;

use mn_noc::{ArbiterKind, Candidate, Network, NocConfig, Packet, PacketKind};
use mn_sim::{EventQueue, SimTime};
use mn_topo::{CubeTech, Placement, Topology, TopologyKind};

fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    for _ in 0..iters.div_ceil(10) {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / f64::from(iters);
    println!("{name:<40} {:>12.3} us/iter", per_iter * 1e6);
}

fn event_times() -> Vec<SimTime> {
    // Pseudo-random but deterministic times.
    let mut times = Vec::with_capacity(10_000);
    let mut x: u64 = 0x2545_F491_4F6C_DD1D;
    for _ in 0..10_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        times.push(SimTime::from_ps(x % 1_000_000));
    }
    times
}

fn main() {
    let times = event_times();
    bench("event_queue_push_pop_10k", 100, || {
        let mut q = EventQueue::with_capacity(times.len());
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut sum = 0usize;
        while let Some((_, e)) = q.pop() {
            sum += e;
        }
        sum
    });

    for kind in TopologyKind::ALL {
        let topo = Topology::build(kind, &Placement::homogeneous(16, CubeTech::Dram)).unwrap();
        bench(&format!("routing_table_{kind}"), 200, || topo.routing());
    }

    let candidates: Vec<Candidate> = (0..6)
        .map(|p| Candidate {
            input_port: p,
            weight: 1 + p as u64,
        })
        .collect();
    for kind in [
        ArbiterKind::RoundRobin,
        ArbiterKind::Distance,
        ArbiterKind::AdaptiveDistance,
    ] {
        let mut arb = kind.instantiate(6);
        bench(&format!("arbitration_{kind:?}"), 10_000, || {
            arb.pick(&candidates)
        });
    }

    let topo = Topology::build(
        TopologyKind::Chain,
        &Placement::homogeneous(16, CubeTech::Dram),
    )
    .unwrap();
    bench("network_1k_packets_chain16", 20, || {
        let mut net = Network::new(&topo, NocConfig::default());
        let mut now = SimTime::ZERO;
        let mut sent = 0u64;
        let mut done = 0u64;
        let mut ready = Vec::new();
        while done < 1_000 {
            while sent < 1_000 {
                let dst = topo.cube_at_position((sent % 16 + 1) as u32).unwrap();
                let pkt = Packet::request(sent, PacketKind::ReadRequest, topo.host(), dst);
                if net.inject(topo.host(), 0, pkt, now).is_err() {
                    break;
                }
                sent += 1;
            }
            net.advance(now, &mut ready);
            for &node in &ready {
                while net.take_delivery(node, now).is_some() {
                    done += 1;
                }
            }
            if let Some(t) = net.next_event_time() {
                now = t;
            }
        }
        done
    });
}
