//! Criterion micro-benchmarks for the simulator's hot paths: the event
//! queue, routing-table construction, router arbitration, and a small
//! end-to-end network run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mn_noc::{Arbiter, ArbiterKind, Candidate, Network, NocConfig, Packet, PacketKind};
use mn_sim::{EventQueue, SimTime};
use mn_topo::{CubeTech, Placement, Topology, TopologyKind};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter_batched(
            || {
                // Pseudo-random but deterministic times.
                let mut times = Vec::with_capacity(10_000);
                let mut x: u64 = 0x2545_F491_4F6C_DD1D;
                for _ in 0..10_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    times.push(SimTime::from_ps(x % 1_000_000));
                }
                times
            },
            |times| {
                let mut q = EventQueue::with_capacity(times.len());
                for (i, &t) in times.iter().enumerate() {
                    q.push(t, i);
                }
                let mut sum = 0usize;
                while let Some((_, e)) = q.pop() {
                    sum += e;
                }
                sum
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_routing(c: &mut Criterion) {
    for kind in TopologyKind::ALL {
        c.bench_function(&format!("routing_table_{kind}"), |b| {
            let topo = Topology::build(kind, &Placement::homogeneous(16, CubeTech::Dram)).unwrap();
            b.iter(|| topo.routing())
        });
    }
}

fn bench_arbitration(c: &mut Criterion) {
    let candidates: Vec<Candidate> = (0..6)
        .map(|p| Candidate {
            input_port: p,
            weight: 1 + p as u64,
        })
        .collect();
    for kind in [
        ArbiterKind::RoundRobin,
        ArbiterKind::Distance,
        ArbiterKind::AdaptiveDistance,
    ] {
        c.bench_function(&format!("arbitration_{kind:?}"), |b| {
            let mut arb: Box<dyn Arbiter> = kind.instantiate(6);
            b.iter(|| arb.pick(&candidates))
        });
    }
}

fn bench_network_end_to_end(c: &mut Criterion) {
    c.bench_function("network_1k_packets_chain16", |b| {
        let topo = Topology::build(
            TopologyKind::Chain,
            &Placement::homogeneous(16, CubeTech::Dram),
        )
        .unwrap();
        b.iter(|| {
            let mut net = Network::new(&topo, NocConfig::default());
            let mut now = SimTime::ZERO;
            let mut sent = 0u64;
            let mut done = 0u64;
            while done < 1_000 {
                while sent < 1_000 {
                    let dst = topo.cube_at_position((sent % 16 + 1) as u32).unwrap();
                    let pkt = Packet::request(sent, PacketKind::ReadRequest, topo.host(), dst);
                    if net.inject(topo.host(), 0, pkt, now).is_err() {
                        break;
                    }
                    sent += 1;
                }
                for node in net.advance(now) {
                    while net.take_delivery(node, now).is_some() {
                        done += 1;
                    }
                }
                if let Some(t) = net.next_event_time() {
                    now = t;
                }
            }
            done
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_routing,
    bench_arbitration,
    bench_network_end_to_end
);
criterion_main!(benches);
