//! # mn-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` for the
//! index). Each binary declares its grid of `(configuration, workload)`
//! points and submits it to the `mn-campaign` engine through a
//! [`Harness`], which runs points across `MN_JOBS` workers, serves
//! finished points from the on-disk result cache (`results/cache/`), and
//! can append machine-readable per-point records after the text tables.
//!
//! All experiment binaries honor:
//!
//! - `MN_REQUESTS` — requests per simulated port (default 6000; larger
//!   runs are smoother but slower),
//! - `MN_SEED` — RNG seed (default the configs' built-in seed),
//! - `MN_JOBS` — campaign worker threads (default: available parallelism),
//! - `MN_CACHE_DIR` / `MN_CACHE=off` — result-cache location / disable,
//! - `MN_FAULT_RATE` — per-traversal transient-CRC probability (default 0:
//!   fault injection off; enabling it changes the result fingerprints),
//! - `MN_FAULT_SEED` — fault-schedule seed (default 0),
//! - `MN_TRACE` — telemetry mode `off|counters|full` (default off; purely
//!   observational, never changes results or fingerprints — but cached
//!   points come back without telemetry, so combine with `MN_CACHE=off`),
//! - `MN_HOST_POLICY` — closed-loop window policy `open|fixed:<n>|aimd|ecn`
//!   (default open: no injection gate; anything else changes the result
//!   fingerprints),
//! - `MN_HOST_WINDOW` — initial closed-loop window in outstanding requests
//!   (the cap is raised to match; only meaningful with a non-open policy),
//! - `--format text|json|csv` — append per-point records to the tables.
//!
//! Malformed values are reported on stderr and the default applies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use mn_campaign::{
    env_parse, fault_rate_from_env, fault_seed_from_env, write_point_records, Campaign,
    CampaignPoint, OutputFormat, PointOutcome,
};
use mn_core::{mix_grid, speedup_pct, MixSpec, RunResult, SystemConfig, WindowPolicyKind};
use mn_noc::{ArbiterKind, FaultConfig};
use mn_sim::SimTime;
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

/// Requests per port for experiment runs (`MN_REQUESTS`, default 6000).
pub fn requests_per_port() -> u64 {
    env_parse("MN_REQUESTS").unwrap_or(6_000)
}

/// Optional seed override (`MN_SEED`).
pub fn seed_override() -> Option<u64> {
    env_parse("MN_SEED")
}

/// Applies the harness environment knobs to a config. With `MN_FAULT_RATE`
/// unset (the default), fault injection stays disabled and results remain
/// on the committed-golden fingerprints.
pub fn tune(mut config: SystemConfig) -> SystemConfig {
    config.requests_per_port = requests_per_port();
    if let Some(seed) = seed_override() {
        config.seed = seed;
    }
    if let Some(rate) = fault_rate_from_env() {
        config.noc.fault.transient_rate = rate;
    }
    if let Some(seed) = fault_seed_from_env() {
        config.noc.fault.seed = seed;
    }
    if let Some(mode) = mn_campaign::trace_from_env() {
        config.noc.trace = mode;
    }
    if let Some(policy) = mn_campaign::host_policy_from_env() {
        config.host.policy = policy;
        // ECN windows need links that mark: give the env knob a working
        // threshold when the config leaves marking off.
        if policy == WindowPolicyKind::Ecn && config.noc.ecn_threshold == 0 {
            config.noc.ecn_threshold = CLOSED_LOOP_ECN_THRESHOLD;
        }
    }
    if let Some(window) = mn_campaign::host_window_from_env() {
        config.host.initial_window = window;
        config.host.window_cap = config.host.window_cap.max(window);
    }
    config
}

/// Builds the paper's configuration for (topology, DRAM fraction,
/// placement) with the baseline round-robin arbitration.
///
/// # Panics
///
/// Panics if the mix is unrealizable (the paper's grid never is).
pub fn config_for(
    topology: TopologyKind,
    dram_fraction: f64,
    placement: NvmPlacement,
) -> SystemConfig {
    tune(
        SystemConfig::paper_baseline(topology, dram_fraction)
            .expect("paper grid mixes are realizable")
            .with_nvm_placement(placement),
    )
}

/// The 12-configuration grid of Figs. 10–12: three topologies x the four
/// DRAM:NVM mixes, in the paper's column order.
pub fn twelve_config_grid(topologies: [TopologyKind; 3]) -> Vec<SystemConfig> {
    let mut grid = Vec::new();
    for mix in mix_grid() {
        for topo in topologies {
            grid.push(config_for(topo, mix.dram_fraction, mix.placement));
        }
    }
    grid
}

/// The full `{mix} × {topology}` grid of Figs. 13–15: the paper's four
/// DRAM:NVM mixes crossed with all five topologies, mix-major. The mixes
/// come from [`mn_core::mix_grid`] and the topologies from
/// [`TopologyKind::ALL`], so the figure binaries can no longer drift from
/// the paper's grid (or from each other).
pub fn mix_topology_grid() -> Vec<(MixSpec, TopologyKind)> {
    let mut grid = Vec::new();
    for mix in mix_grid() {
        for topo in TopologyKind::ALL {
            grid.push((mix, topo));
        }
    }
    grid
}

/// The `100%-C` round-robin baseline every speedup figure normalizes
/// against, sized (requests, seed) like `template` so the comparison is
/// apples-to-apples without consulting the environment. The telemetry
/// mode is inherited too, so under `MN_TRACE` the baseline's records
/// carry the same columns as the grid's (it cannot affect the numbers).
pub fn baseline_config(template: &SystemConfig) -> SystemConfig {
    let mut base = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0)
        .expect("the all-DRAM chain is always realizable");
    base.requests_per_port = template.requests_per_port;
    base.seed = template.seed;
    base.noc.trace = template.noc.trace;
    base
}

/// One row of a speedup table: workload label plus `(config label, %)`.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Workload label.
    pub workload: String,
    /// `(configuration label, speedup percent)` pairs in column order.
    pub entries: Vec<(String, f64)>,
}

/// The per-binary front end to the campaign engine: builds grids, runs
/// them (parallel + cached, per the environment), accumulates every
/// outcome, and emits the optional `--format json|csv` records at the end.
#[derive(Debug)]
pub struct Harness {
    campaign: Campaign,
    format: OutputFormat,
    outcomes: Vec<PointOutcome>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness configured from the environment (`MN_JOBS`, cache knobs)
    /// and the process arguments (`--format`).
    pub fn new() -> Harness {
        Harness {
            campaign: Campaign::from_env(),
            format: OutputFormat::from_args(),
            outcomes: Vec::new(),
        }
    }

    /// A harness configured from the environment but with the result
    /// cache detached — what instrumented sweeps (`closed_loop_sweep`)
    /// use, since cache hits come back without the telemetry their
    /// reports are built from.
    pub fn uncached() -> Harness {
        Harness {
            campaign: Campaign::from_env().no_cache(),
            format: OutputFormat::from_args(),
            outcomes: Vec::new(),
        }
    }

    /// A harness for tests: explicit worker count, no cache, no stderr
    /// reporting, no argument parsing.
    pub fn bare(jobs: usize) -> Harness {
        Harness {
            campaign: Campaign::new(jobs).quiet(),
            format: OutputFormat::Text,
            outcomes: Vec::new(),
        }
    }

    /// A quiet harness backed by an explicit cache directory — what the
    /// golden tests use to replay a committed `results/cache/` without
    /// consulting the environment.
    pub fn cached(jobs: usize, dir: impl Into<std::path::PathBuf>) -> Harness {
        Harness {
            campaign: Campaign::new(jobs).quiet().cache_dir(dir),
            format: OutputFormat::Text,
            outcomes: Vec::new(),
        }
    }

    /// Runs a grid of points through the engine; results come back in
    /// submission order.
    ///
    /// # Panics
    ///
    /// Panics — naming the failing point and its error — if any point
    /// failed. The figure binaries need complete grids to render their
    /// tables; sweeps that expect failures (e.g. `fault_sweep`, where a
    /// killed link may partition a chain) use
    /// [`Harness::run_grid_outcomes`] instead.
    pub fn run_grid(&mut self, points: Vec<CampaignPoint>) -> Vec<RunResult> {
        let results: Vec<RunResult> = self
            .run_grid_outcomes(points)
            .iter()
            .map(|o| match &o.result {
                Ok(result) => result.clone(),
                Err(e) => panic!(
                    "campaign point {} / {} failed: {e}",
                    o.point.config.label(),
                    o.point.workload.label()
                ),
            })
            .collect();
        results
    }

    /// Runs a grid and returns the full per-point outcomes, failures
    /// included: a point whose fault schedule breaks its topology comes
    /// back as an error record while the rest of the grid completes.
    pub fn run_grid_outcomes(&mut self, points: Vec<CampaignPoint>) -> Vec<PointOutcome> {
        let outcome = self.campaign.run(points);
        self.outcomes.extend(outcome.outcomes.iter().cloned());
        outcome.outcomes
    }

    /// Runs `configs` x `workloads` (plus the shared `100%-C` baseline per
    /// workload) as one campaign and returns the paper's speedup rows,
    /// optionally overriding the arbitration scheme on every grid config.
    pub fn speedup_table(
        &mut self,
        configs: &[SystemConfig],
        workloads: &[Workload],
        arbiter: Option<ArbiterKind>,
    ) -> Vec<SpeedupRow> {
        let Some(template) = configs.first() else {
            return Vec::new();
        };
        let base = baseline_config(template);
        let mut points: Vec<CampaignPoint> = workloads
            .iter()
            .map(|&wl| CampaignPoint::new(base.clone(), wl))
            .collect();
        for &wl in workloads {
            for config in configs {
                let mut config = config.clone();
                if let Some(arb) = arbiter {
                    config.noc.arbiter = arb;
                }
                points.push(CampaignPoint::new(config, wl));
            }
        }
        let results = self.run_grid(points);

        let (baselines, grid) = results.split_at(workloads.len());
        let mut rows = Vec::new();
        for (w, &wl) in workloads.iter().enumerate() {
            let base_wall = baselines[w].wall;
            let entries = grid[w * configs.len()..(w + 1) * configs.len()]
                .iter()
                .map(|r| (r.label.clone(), speedup_pct(base_wall, r.wall)))
                .collect();
            rows.push(SpeedupRow {
                workload: wl.label().to_string(),
                entries,
            });
        }
        rows
    }

    /// Runs the `100%-C` baseline (sized like `template`) for every
    /// workload and returns its wall times, keyed by workload label.
    pub fn chain_baselines(
        &mut self,
        workloads: &[Workload],
        template: &SystemConfig,
    ) -> HashMap<String, SimTime> {
        let base = baseline_config(template);
        let points = workloads
            .iter()
            .map(|&wl| CampaignPoint::new(base.clone(), wl))
            .collect();
        self.run_grid(points)
            .into_iter()
            .map(|r| (r.workload.clone(), r.wall))
            .collect()
    }

    /// Emits the accumulated per-point records in the requested format
    /// (nothing, for the default text format). Call last, after the text
    /// tables.
    ///
    /// # Panics
    ///
    /// Panics when stdout is gone (a broken pipe mid-emission).
    pub fn finish(self) {
        write_point_records(self.format, &self.outcomes).expect("stdout closed mid-emission");
    }
}

/// The Fig. 5 grid: every workload on the all-DRAM chain, ring, and tree
/// (sized from the environment like every figure binary).
pub fn fig05_points() -> Vec<CampaignPoint> {
    const TOPOLOGIES: [TopologyKind; 3] =
        [TopologyKind::Chain, TopologyKind::Ring, TopologyKind::Tree];
    Workload::ALL
        .into_iter()
        .flat_map(|wl| {
            TOPOLOGIES
                .into_iter()
                .map(move |topo| CampaignPoint::new(config_for(topo, 1.0, NvmPlacement::Last), wl))
        })
        .collect()
}

/// Renders the Fig. 5 latency-breakdown table from the results of
/// [`fig05_points`] — byte-identical to the `fig05` binary's stdout, so
/// the golden test can diff it against `results/fig05.txt`.
pub fn fig05_table(results: &[RunResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 5: latency breakdown relative to chain total =="
    );
    let _ = writeln!(
        out,
        "{:<10} {:<6} {:>10} {:>10} {:>10} {:>10}",
        "workload", "topo", "to-mem", "in-mem", "from-mem", "total(ns)"
    );
    let topologies = [TopologyKind::Chain, TopologyKind::Ring, TopologyKind::Tree];
    for (w, wl) in Workload::ALL.into_iter().enumerate() {
        let mut chain_total = None;
        for (t, topo) in topologies.into_iter().enumerate() {
            let result = &results[w * topologies.len() + t];
            let b = &result.breakdown;
            let total = b.total_mean_ns();
            let base = *chain_total.get_or_insert(total);
            let _ = writeln!(
                out,
                "{:<10} {:<6} {:>9.3} {:>10.3} {:>10.3} {:>9.1}ns",
                wl.label(),
                topo.label(),
                b.to_memory.mean_ns() / base,
                b.in_memory.mean_ns() / base,
                b.from_memory.mean_ns() / base,
                total,
            );
        }
    }
    out
}

/// Runs the Fig. 10 experiment (distance arbitration on the twelve
/// baseline configurations, plus the round-robin delta view) and renders
/// both tables — exactly the `fig10` binary's stdout.
pub fn fig10_report(harness: &mut Harness) -> String {
    let grid = twelve_config_grid([TopologyKind::Chain, TopologyKind::Ring, TopologyKind::Tree]);
    let with_distance = harness.speedup_table(&grid, &Workload::ALL, Some(ArbiterKind::Distance));
    let mut out = render_speedup_table(
        "Fig. 10: distance-based arbitration on baseline topologies (vs 100%-C RR)",
        &with_distance,
    );

    let with_rr = harness.speedup_table(&grid, &Workload::ALL, Some(ArbiterKind::RoundRobin));
    let delta_rows: Vec<SpeedupRow> = with_distance
        .iter()
        .zip(&with_rr)
        .map(|(d, r)| SpeedupRow {
            workload: d.workload.clone(),
            entries: d
                .entries
                .iter()
                .zip(&r.entries)
                .map(|((label, dp), (_, rp))| (label.clone(), dp - rp))
                .collect(),
        })
        .collect();
    out.push_str(&render_speedup_table(
        "Fig. 10 (delta view): distance arbitration minus round-robin, percentage points",
        &delta_rows,
    ));
    out
}

/// Prints a speedup table with an `average` row, matching the paper's
/// figure layout (workloads as rows, configurations as columns).
pub fn print_speedup_table(title: &str, rows: &[SpeedupRow]) {
    print!("{}", render_speedup_table(title, rows));
}

/// Renders a speedup table to a string, byte-identical to what
/// [`print_speedup_table`] emits — the golden tests diff this against the
/// committed `results/*.txt`.
pub fn render_speedup_table(title: &str, rows: &[SpeedupRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let Some(first) = rows.first() else {
        let _ = writeln!(out, "(no data)");
        return out;
    };
    let _ = write!(out, "{:<10}", "workload");
    for (label, _) in &first.entries {
        let _ = write!(out, " {label:>16}");
    }
    let _ = writeln!(out);
    let cols = first.entries.len();
    let mut sums = vec![0.0; cols];
    for row in rows {
        let _ = write!(out, "{:<10}", row.workload);
        for (i, (_, pct)) in row.entries.iter().enumerate() {
            let _ = write!(out, " {pct:>+15.1}%");
            sums[i] += pct;
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<10}", "average");
    for sum in sums {
        let _ = write!(out, " {:>+15.1}%", sum / rows.len() as f64);
    }
    let _ = writeln!(out);
    out
}

/// The fault-schedule seed the sweep pins, so the committed
/// `results/fault_sweep.txt` regenerates deterministically.
pub const FAULT_SWEEP_SEED: u64 = 0xFA01;

/// The scenarios the `fault_sweep` binary drives through every topology: a
/// healthy reference, escalating transient-CRC rates, lane degradation,
/// and hard link kills, all on the pinned [`FAULT_SWEEP_SEED`].
pub fn fault_scenarios() -> Vec<(&'static str, FaultConfig)> {
    let with = |f: fn(&mut FaultConfig)| {
        let mut config = FaultConfig::none();
        config.seed = FAULT_SWEEP_SEED;
        f(&mut config);
        config
    };
    vec![
        // All rates zero: fault injection disabled, so this row shares
        // fingerprints (and cache entries) with the paper figures.
        ("healthy", FaultConfig::none()),
        ("tr=1e-4", with(|c| c.transient_rate = 1e-4)),
        ("tr=1e-3", with(|c| c.transient_rate = 1e-3)),
        ("tr=1e-2", with(|c| c.transient_rate = 1e-2)),
        ("degrade=10%", with(|c| c.degrade_rate = 0.10)),
        ("kill=8%", with(|c| c.link_kill_rate = 0.08)),
    ]
}

/// Runs the fault sweep (every topology x [`fault_scenarios`], all-DRAM,
/// NW workload) and renders the sensitivity table — exactly the
/// `fault_sweep` binary's stdout. Points whose fault schedule breaks their
/// topology (a killed link partitions the chain) come back as `ERROR` rows
/// instead of aborting the sweep.
pub fn fault_sweep_report(harness: &mut Harness) -> String {
    use std::fmt::Write as _;
    let scenarios = fault_scenarios();
    let mut points = Vec::new();
    for topo in TopologyKind::ALL {
        for (_, fault) in &scenarios {
            let mut config = config_for(topo, 1.0, NvmPlacement::Last);
            config.noc.fault = fault.clone();
            points.push(CampaignPoint::new(config, Workload::Nw));
        }
    }
    let outcomes = harness.run_grid_outcomes(points);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fault sweep: wall-time sensitivity to link faults (all-DRAM, NW) =="
    );
    let _ = writeln!(
        out,
        "{:<6} {:<12} {:>14} {:>12}",
        "topo", "scenario", "wall(ns)", "vs healthy"
    );
    for (t, topo) in TopologyKind::ALL.into_iter().enumerate() {
        let row = &outcomes[t * scenarios.len()..(t + 1) * scenarios.len()];
        let healthy_wall = row[0].result.as_ref().ok().map(|r| r.wall);
        for ((name, _), outcome) in scenarios.iter().zip(row) {
            match &outcome.result {
                Ok(result) => {
                    let delta = healthy_wall
                        .map(|base| format!("{:>+11.1}%", speedup_pct(base, result.wall)))
                        .unwrap_or_else(|| format!("{:>12}", "n/a"));
                    let _ = writeln!(
                        out,
                        "{:<6} {:<12} {:>14.1} {delta}",
                        topo.label(),
                        name,
                        result.wall.as_ns_f64(),
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        out,
                        "{:<6} {:<12} {:>14} ERROR: {e}",
                        topo.label(),
                        name,
                        "-",
                    );
                }
            }
        }
    }
    out
}

/// The offered-load axis of the closed-loop sweep: wavefront issue slots
/// per port (`SystemConfig::window`, the host's intensity knob) — more
/// slots offer more concurrent bursts, independent of the congestion
/// window that gates how many may be in flight.
pub const CLOSED_LOOP_SLOTS: [usize; 3] = [1, 4, 16];

/// ECN mark threshold (in buffered packets at a link output) used by the
/// sweep's `ecn` rows and by `MN_HOST_POLICY=ecn` when the config leaves
/// marking off.
pub const CLOSED_LOOP_ECN_THRESHOLD: u32 = 6;

/// The window policies the closed-loop sweep drives through every
/// topology: the open-loop reference, tight and generous fixed windows,
/// and the two adaptive policies.
pub fn closed_loop_policies() -> Vec<WindowPolicyKind> {
    vec![
        WindowPolicyKind::Open,
        WindowPolicyKind::Fixed(1),
        WindowPolicyKind::Fixed(32),
        WindowPolicyKind::Aimd,
        WindowPolicyKind::Ecn,
    ]
}

/// One closed-loop sweep point: the paper's all-DRAM baseline on
/// `topology` with `slots` issue slots and the given window policy.
/// Telemetry is at least `Counters` (the report needs the host rollup and
/// fairness), and `ecn` rows get marking links.
pub fn closed_loop_config(
    topology: TopologyKind,
    policy: WindowPolicyKind,
    slots: usize,
) -> SystemConfig {
    let mut config = config_for(topology, 1.0, NvmPlacement::Last);
    config.window = slots;
    if !config.noc.trace.enabled() {
        config.noc.trace = mn_core::TraceConfig::Counters;
    }
    config.host.policy = policy;
    if policy == WindowPolicyKind::Ecn {
        config.noc.ecn_threshold = CLOSED_LOOP_ECN_THRESHOLD;
    }
    config
}

/// Runs the closed-loop sweep (chain / tree / skip-list x
/// [`closed_loop_policies`] x [`CLOSED_LOOP_SLOTS`], all-DRAM, NW
/// workload) and renders the offered-load table plus the per-policy
/// saturation-knee summary — exactly the `closed_loop_sweep` binary's
/// stdout.
pub fn closed_loop_report(harness: &mut Harness) -> String {
    use std::fmt::Write as _;
    const TOPOLOGIES: [TopologyKind; 3] = [
        TopologyKind::Chain,
        TopologyKind::Tree,
        TopologyKind::SkipList,
    ];
    let policies = closed_loop_policies();
    let mut points = Vec::new();
    for topo in TOPOLOGIES {
        for &policy in &policies {
            for slots in CLOSED_LOOP_SLOTS {
                points.push(CampaignPoint::new(
                    closed_loop_config(topo, policy, slots),
                    Workload::Nw,
                ));
            }
        }
    }
    let results = harness.run_grid(points);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Closed loop: offered load x window policy (all-DRAM, NW) =="
    );
    let _ = writeln!(
        out,
        "{:<6} {:<9} {:>5} {:>12} {:>10} {:>6} {:>7} {:>7}",
        "topo", "policy", "slots", "goodput/us", "p99(ns)", "jain", "window", "marked"
    );
    let opt = |v: Option<f64>| match v {
        Some(x) if x.is_finite() => format!("{x:>7.1}"),
        _ => format!("{:>7}", "-"),
    };
    for (t, topo) in TOPOLOGIES.into_iter().enumerate() {
        for (p, policy) in policies.iter().enumerate() {
            for (s, slots) in CLOSED_LOOP_SLOTS.into_iter().enumerate() {
                let result = &results[(t * policies.len() + p) * CLOSED_LOOP_SLOTS.len() + s];
                let tele = result.telemetry.as_ref();
                let host = tele.and_then(|t| t.host.as_ref());
                let _ = writeln!(
                    out,
                    "{:<6} {:<9} {:>5} {:>12.3} {:>10.1} {:>6.3} {} {}",
                    topo.label(),
                    policy.label(),
                    slots,
                    result.throughput_per_us(),
                    result.read_latency_quantile(0.99).as_ns_f64(),
                    tele.map_or(f64::NAN, |t| t.fairness.jain()),
                    opt(host.map(|h| h.steady_window())),
                    opt(host.map(|h| h.marked_fraction() * 100.0)),
                );
            }
        }
    }

    // The knee: the smallest offered load whose goodput is within 5% of
    // this (topology, policy)'s peak — where adding slots stops paying.
    let _ = writeln!(
        out,
        "\n-- saturation knee: smallest slot count within 5% of peak goodput --"
    );
    let _ = writeln!(
        out,
        "{:<6} {:<9} {:>10} {:>15}",
        "topo", "policy", "knee", "peak goodput/us"
    );
    for (t, topo) in TOPOLOGIES.into_iter().enumerate() {
        for (p, policy) in policies.iter().enumerate() {
            let goodput = |s: usize| {
                results[(t * policies.len() + p) * CLOSED_LOOP_SLOTS.len() + s].throughput_per_us()
            };
            let peak = (0..CLOSED_LOOP_SLOTS.len())
                .map(goodput)
                .fold(f64::MIN, f64::max);
            let knee = CLOSED_LOOP_SLOTS
                .into_iter()
                .enumerate()
                .find(|&(s, _)| goodput(s) >= 0.95 * peak)
                .map_or(*CLOSED_LOOP_SLOTS.last().unwrap(), |(_, slots)| slots);
            let _ = writeln!(
                out,
                "{:<6} {:<9} {:>10} {:>15.3}",
                topo.label(),
                policy.label(),
                knee,
                peak,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_twelve_configs() {
        let grid =
            twelve_config_grid([TopologyKind::Chain, TopologyKind::Ring, TopologyKind::Tree]);
        assert_eq!(grid.len(), 12);
        assert_eq!(grid[0].label(), "100%-C");
        assert_eq!(grid[5].label(), "50%-T (NVM-L)");
        assert_eq!(grid[11].label(), "0%-T");
    }

    #[test]
    fn mix_topology_grid_covers_the_paper() {
        let grid = mix_topology_grid();
        assert_eq!(grid.len(), 20); // 4 mixes x 5 topologies
        assert_eq!(grid[0].1, TopologyKind::Chain);
        assert!((grid[0].0.dram_fraction - 1.0).abs() < 1e-12);
        assert!((grid[19].0.dram_fraction).abs() < 1e-12);
        assert_eq!(grid[19].1, TopologyKind::MetaCube);
    }

    #[test]
    fn tune_applies_env_defaults() {
        let c = config_for(TopologyKind::Chain, 1.0, NvmPlacement::Last);
        assert!(c.requests_per_port > 0);
    }

    #[test]
    fn speedup_table_is_consistent() {
        // The request count is threaded through the configs (and from
        // there into the shared baseline) — no process-global environment
        // mutation, which raced with other tests under the parallel
        // harness.
        let mut config = SystemConfig::paper_baseline(TopologyKind::Tree, 1.0).unwrap();
        config.requests_per_port = 300;
        let rows = Harness::bare(2).speedup_table(&[config], &[Workload::Nw], None);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].entries.len(), 1);
        assert_eq!(rows[0].entries[0].0, "100%-T");
    }

    #[test]
    fn baseline_inherits_template_sizing() {
        let mut template = SystemConfig::paper_baseline(TopologyKind::MetaCube, 0.5).unwrap();
        template.requests_per_port = 777;
        template.seed = 42;
        let base = baseline_config(&template);
        assert_eq!(base.label(), "100%-C");
        assert_eq!(base.requests_per_port, 777);
        assert_eq!(base.seed, 42);
    }

    #[test]
    fn closed_loop_configs_wire_the_policies() {
        let c = closed_loop_config(TopologyKind::Chain, WindowPolicyKind::Ecn, 4);
        assert_eq!(c.window, 4);
        assert_eq!(c.noc.ecn_threshold, CLOSED_LOOP_ECN_THRESHOLD);
        assert!(c.host.enabled());
        assert!(c.noc.trace.enabled());
        let open = closed_loop_config(TopologyKind::Chain, WindowPolicyKind::Open, 1);
        assert!(!open.host.enabled());
        assert_eq!(open.noc.ecn_threshold, 0);
        assert_eq!(closed_loop_policies().len(), 5);
    }

    #[test]
    fn empty_speedup_table() {
        assert!(Harness::bare(1)
            .speedup_table(&[], &[Workload::Nw], None)
            .is_empty());
    }
}
