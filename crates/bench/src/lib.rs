//! # mn-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` for the
//! index). This library holds the shared sweep/printing machinery so each
//! binary stays a declarative description of its experiment.
//!
//! All experiment binaries honor two environment variables:
//!
//! - `MN_REQUESTS` — requests per simulated port (default 6000; larger
//!   runs are smoother but slower),
//! - `MN_SEED` — RNG seed (default the configs' built-in seed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use mn_core::{simulate, speedup_pct, RunResult, SystemConfig};
use mn_noc::ArbiterKind;
use mn_sim::SimTime;
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

/// Requests per port for experiment runs (`MN_REQUESTS`, default 6000).
pub fn requests_per_port() -> u64 {
    std::env::var("MN_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6_000)
}

/// Optional seed override (`MN_SEED`).
pub fn seed_override() -> Option<u64> {
    std::env::var("MN_SEED").ok().and_then(|v| v.parse().ok())
}

/// Applies the harness environment knobs to a config.
pub fn tune(mut config: SystemConfig) -> SystemConfig {
    config.requests_per_port = requests_per_port();
    if let Some(seed) = seed_override() {
        config.seed = seed;
    }
    config
}

/// Builds the paper's configuration for (topology, DRAM fraction,
/// placement) with the baseline round-robin arbitration.
///
/// # Panics
///
/// Panics if the mix is unrealizable (the paper's grid never is).
pub fn config_for(
    topology: TopologyKind,
    dram_fraction: f64,
    placement: NvmPlacement,
) -> SystemConfig {
    tune(
        SystemConfig::paper_baseline(topology, dram_fraction)
            .expect("paper grid mixes are realizable")
            .with_nvm_placement(placement),
    )
}

/// The 12-configuration grid of Figs. 10–12: three topologies x the four
/// DRAM:NVM mixes, in the paper's column order.
pub fn twelve_config_grid(topologies: [TopologyKind; 3]) -> Vec<SystemConfig> {
    let mixes = [
        (1.0, NvmPlacement::Last),
        (0.5, NvmPlacement::Last),
        (0.5, NvmPlacement::First),
        (0.0, NvmPlacement::Last),
    ];
    let mut grid = Vec::new();
    for (frac, place) in mixes {
        for topo in topologies {
            grid.push(config_for(topo, frac, place));
        }
    }
    grid
}

/// Runs the `100%-C` round-robin baseline for every workload and returns
/// its wall times, keyed by workload label.
pub fn chain_baselines(workloads: &[Workload]) -> HashMap<String, SimTime> {
    workloads
        .iter()
        .map(|&wl| {
            let base = config_for(TopologyKind::Chain, 1.0, NvmPlacement::Last);
            (wl.label().to_string(), simulate(&base, wl).wall)
        })
        .collect()
}

/// One row of a speedup table: workload label plus `(config label, %)`.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Workload label.
    pub workload: String,
    /// `(configuration label, speedup percent)` pairs in column order.
    pub entries: Vec<(String, f64)>,
}

/// Runs `configs` x `workloads`, normalizing to the `100%-C` baseline, and
/// optionally overriding the arbitration scheme.
pub fn speedup_table(
    configs: &[SystemConfig],
    workloads: &[Workload],
    arbiter: Option<ArbiterKind>,
) -> Vec<SpeedupRow> {
    let baselines = chain_baselines(workloads);
    let mut rows = Vec::new();
    for &wl in workloads {
        let base = baselines[wl.label()];
        let mut entries = Vec::new();
        for config in configs {
            let mut config = config.clone();
            if let Some(arb) = arbiter {
                config.noc.arbiter = arb;
            }
            let result = simulate(&config, wl);
            entries.push((config.label(), speedup_pct(base, result.wall)));
        }
        rows.push(SpeedupRow {
            workload: wl.label().to_string(),
            entries,
        });
    }
    rows
}

/// Prints a speedup table with an `average` row, matching the paper's
/// figure layout (workloads as rows, configurations as columns).
pub fn print_speedup_table(title: &str, rows: &[SpeedupRow]) {
    println!("\n== {title} ==");
    let Some(first) = rows.first() else {
        println!("(no data)");
        return;
    };
    print!("{:<10}", "workload");
    for (label, _) in &first.entries {
        print!(" {label:>16}");
    }
    println!();
    let cols = first.entries.len();
    let mut sums = vec![0.0; cols];
    for row in rows {
        print!("{:<10}", row.workload);
        for (i, (_, pct)) in row.entries.iter().enumerate() {
            print!(" {pct:>+15.1}%");
            sums[i] += pct;
        }
        println!();
    }
    print!("{:<10}", "average");
    for sum in sums {
        print!(" {:>+15.1}%", sum / rows.len() as f64);
    }
    println!();
}

/// Convenience: run one configuration under one workload.
pub fn run_one(config: &SystemConfig, workload: Workload) -> RunResult {
    simulate(config, workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_twelve_configs() {
        let grid =
            twelve_config_grid([TopologyKind::Chain, TopologyKind::Ring, TopologyKind::Tree]);
        assert_eq!(grid.len(), 12);
        assert_eq!(grid[0].label(), "100%-C");
        assert_eq!(grid[5].label(), "50%-T (NVM-L)");
        assert_eq!(grid[11].label(), "0%-T");
    }

    #[test]
    fn tune_applies_env_defaults() {
        let c = config_for(TopologyKind::Chain, 1.0, NvmPlacement::Last);
        assert!(c.requests_per_port > 0);
    }

    #[test]
    fn speedup_table_is_consistent() {
        let mut configs = vec![config_for(TopologyKind::Tree, 1.0, NvmPlacement::Last)];
        configs[0].requests_per_port = 300;
        let mut fast = configs.clone();
        fast[0].requests_per_port = 300;
        // Using a tiny run, the table machinery produces one row/column.
        std::env::set_var("MN_REQUESTS", "300");
        let rows = speedup_table(&fast, &[Workload::Nw], None);
        std::env::remove_var("MN_REQUESTS");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].entries.len(), 1);
    }
}
