//! Fig. 12: all techniques combined — tree/skip-list/MetaCube with
//! adaptive (technology- and type-aware) distance arbitration, plus the
//! write-burst routing policy on skip lists — normalized to 100%-Chain.
//!
//! Expected shape (§5.3): every configuration improves on its Fig. 11
//! counterpart or holds; the skip-list regains the write-heavy losses
//! (BACKPROP benefits most of all workloads); MetaCube stays on top.

use mn_bench::{print_speedup_table, twelve_config_grid, Harness};
use mn_noc::ArbiterKind;
use mn_topo::TopologyKind;
use mn_workloads::Workload;

fn main() {
    let mut harness = Harness::new();
    let mut grid = twelve_config_grid([
        TopologyKind::Tree,
        TopologyKind::SkipList,
        TopologyKind::MetaCube,
    ]);
    for config in &mut grid {
        config.write_burst_routing = true; // only skip lists act on this
    }
    let rows = harness.speedup_table(&grid, &Workload::ALL, Some(ArbiterKind::AdaptiveDistance));
    print_speedup_table(
        "Fig. 12: all techniques combined — adaptive distance arbitration + write-burst routing (vs 100%-C)",
        &rows,
    );
    harness.finish();
}
