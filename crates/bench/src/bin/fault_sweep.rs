//! Fault sweep: wall-time sensitivity of every topology to injected link
//! faults — transient CRC errors (replayed from the retry buffer), lane
//! degradation (links fall to half/quarter width), and hard link kills
//! (routed around where the topology has path diversity).
//!
//! Not a figure from the paper: this is the robustness harness for the
//! fault-injection subsystem. Expected shape: transient rates up to 1e-3
//! are nearly free (replays add serialization, not loss); 1e-2 visibly
//! stretches wall time; degraded lanes hurt bandwidth-bound topologies
//! (chain) most; killed links are absorbed by ring/skip-list/tree path
//! diversity but *partition* the chain, which shows up as a structured
//! `ERROR` row — the rest of the sweep still completes.
//!
//! The schedule seed is pinned (`FAULT_SWEEP_SEED`), so the table is
//! deterministic at any `MN_JOBS`.

use mn_bench::{fault_sweep_report, Harness};

fn main() {
    let mut harness = Harness::new();
    print!("{}", fault_sweep_report(&mut harness));
    harness.finish();
}
