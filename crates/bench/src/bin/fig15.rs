//! Fig. 15: breakdown of network (transport) energy and read/write
//! (memory access) energy, averaged across workloads, normalized to the
//! total energy of the 100%-Chain MN.
//!
//! Expected shape (§6.3): network energy dominates all-DRAM MNs and grows
//! with hop count (chain worst, tree least among cube-only topologies;
//! skip-list above tree because writes detour); the all-NVM chain cuts
//! network energy roughly 3x but its write energy pushes the total above
//! the baseline.

use mn_bench::{config_for, mix_topology_grid, Harness};
use mn_campaign::CampaignPoint;
use mn_workloads::Workload;

fn main() {
    let mut harness = Harness::new();
    let grid = mix_topology_grid();

    let mut points = Vec::new();
    for &(mix, topo) in &grid {
        let config = config_for(topo, mix.dram_fraction, mix.placement);
        for wl in Workload::ALL {
            points.push(CampaignPoint::new(config.clone(), wl));
        }
    }
    let results = harness.run_grid(points);

    // Average energy per configuration across all workloads.
    let n = Workload::ALL.len();
    let table: Vec<(String, f64, f64, f64)> = grid
        .iter()
        .enumerate()
        .map(|(g, _)| {
            let per_wl = &results[g * n..(g + 1) * n];
            let network: f64 = per_wl.iter().map(|r| r.energy.network.as_pj()).sum();
            let read: f64 = per_wl.iter().map(|r| r.energy.read.as_pj()).sum();
            let write: f64 = per_wl.iter().map(|r| r.energy.write.as_pj()).sum();
            let n = n as f64;
            (per_wl[0].label.clone(), network / n, read / n, write / n)
        })
        .collect();
    let baseline_total: f64 = table
        .iter()
        .find(|(label, ..)| label == "100%-C")
        .map(|(_, n, r, w)| n + r + w)
        .expect("baseline present");

    println!("== Fig. 15: energy breakdown relative to 100%-C total ==");
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}",
        "config", "network", "read", "write", "total"
    );
    for (label, n, r, w) in table {
        println!(
            "{label:<18} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            n / baseline_total * 100.0,
            r / baseline_total * 100.0,
            w / baseline_total * 100.0,
            (n + r + w) / baseline_total * 100.0,
        );
    }
    harness.finish();
}
