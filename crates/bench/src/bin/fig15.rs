//! Fig. 15: breakdown of network (transport) energy and read/write
//! (memory access) energy, averaged across workloads, normalized to the
//! total energy of the 100%-Chain MN.
//!
//! Expected shape (§6.3): network energy dominates all-DRAM MNs and grows
//! with hop count (chain worst, tree least among cube-only topologies;
//! skip-list above tree because writes detour); the all-NVM chain cuts
//! network energy roughly 3x but its write energy pushes the total above
//! the baseline.

use mn_bench::{config_for, run_one};
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

fn main() {
    println!("== Fig. 15: energy breakdown relative to 100%-C total ==");
    let mixes = [
        (1.0, NvmPlacement::Last),
        (0.5, NvmPlacement::Last),
        (0.5, NvmPlacement::First),
        (0.0, NvmPlacement::Last),
    ];
    let topologies = [
        TopologyKind::Chain,
        TopologyKind::Ring,
        TopologyKind::Tree,
        TopologyKind::SkipList,
        TopologyKind::MetaCube,
    ];

    // Average energy per configuration across all workloads.
    let mut table = Vec::new();
    for (frac, place) in mixes {
        for topo in topologies {
            let config = config_for(topo, frac, place);
            let mut network = 0.0;
            let mut read = 0.0;
            let mut write = 0.0;
            for wl in Workload::ALL {
                let e = run_one(&config, wl).energy;
                network += e.network.as_pj();
                read += e.read.as_pj();
                write += e.write.as_pj();
            }
            let n = Workload::ALL.len() as f64;
            table.push((config.label(), network / n, read / n, write / n));
        }
    }
    let baseline_total: f64 = table
        .iter()
        .find(|(label, ..)| label == "100%-C")
        .map(|(_, n, r, w)| n + r + w)
        .expect("baseline present");

    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}",
        "config", "network", "read", "write", "total"
    );
    for (label, n, r, w) in table {
        println!(
            "{label:<18} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            n / baseline_total * 100.0,
            r / baseline_total * 100.0,
            w / baseline_total * 100.0,
            (n + r + w) / baseline_total * 100.0,
        );
    }
}
