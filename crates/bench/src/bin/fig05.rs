//! Fig. 5: breakdown of memory request latency (to memory / in memory /
//! from memory) for chain, ring, and tree, normalized to the chain's total.
//!
//! Expected shape (§3.2): network latency dominates array latency under
//! load; the request (to-memory) path out-queues the response path because
//! responses are prioritized on the shared links; NW has the largest
//! in-memory share.

use mn_bench::{config_for, Harness};
use mn_campaign::CampaignPoint;
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

const TOPOLOGIES: [TopologyKind; 3] = [TopologyKind::Chain, TopologyKind::Ring, TopologyKind::Tree];

fn main() {
    let mut harness = Harness::new();
    let points: Vec<CampaignPoint> = Workload::ALL
        .into_iter()
        .flat_map(|wl| {
            TOPOLOGIES
                .into_iter()
                .map(move |topo| CampaignPoint::new(config_for(topo, 1.0, NvmPlacement::Last), wl))
        })
        .collect();
    let results = harness.run_grid(points);

    println!("== Fig. 5: latency breakdown relative to chain total ==");
    println!(
        "{:<10} {:<6} {:>10} {:>10} {:>10} {:>10}",
        "workload", "topo", "to-mem", "in-mem", "from-mem", "total(ns)"
    );
    for (w, wl) in Workload::ALL.into_iter().enumerate() {
        let mut chain_total = None;
        for (t, topo) in TOPOLOGIES.into_iter().enumerate() {
            let result = &results[w * TOPOLOGIES.len() + t];
            let b = &result.breakdown;
            let total = b.total_mean_ns();
            let base = *chain_total.get_or_insert(total);
            println!(
                "{:<10} {:<6} {:>9.3} {:>10.3} {:>10.3} {:>9.1}ns",
                wl.label(),
                topo.label(),
                b.to_memory.mean_ns() / base,
                b.in_memory.mean_ns() / base,
                b.from_memory.mean_ns() / base,
                total,
            );
        }
    }
    harness.finish();
}
