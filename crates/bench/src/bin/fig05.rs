//! Fig. 5: breakdown of memory request latency (to memory / in memory /
//! from memory) for chain, ring, and tree, normalized to the chain's total.
//!
//! Expected shape (§3.2): network latency dominates array latency under
//! load; the request (to-memory) path out-queues the response path because
//! responses are prioritized on the shared links; NW has the largest
//! in-memory share.

use mn_bench::{fig05_points, fig05_table, Harness};

fn main() {
    let mut harness = Harness::new();
    let results = harness.run_grid(fig05_points());
    print!("{}", fig05_table(&results));
    harness.finish();
}
