//! Reproduces §5's interleave-granularity claim: "addresses are mapped to
//! ports at a 256 byte granularity... chosen empirically based on a sweep
//! of various mapping sizes. In the presence of spatial locality, larger
//! mapping granularities (e.g., 1024 bytes) caused increases in network
//! latency large enough for performance degradation. The smallest size,
//! 64 bytes, caused reduction in row-buffer hits within the memory cubes."

use mn_bench::{config_for, run_one};
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

fn main() {
    println!("== interleave-granularity sweep (tree, all-DRAM) ==");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12}",
        "workload", "bytes", "wall", "net lat(ns)", "row hits"
    );
    for wl in [Workload::Dct, Workload::Matrixmul, Workload::Backprop] {
        for bytes in [64u64, 256, 1024] {
            let mut config = config_for(TopologyKind::Tree, 1.0, NvmPlacement::Last);
            config.interleave_bytes = bytes;
            let r = run_one(&config, wl);
            let b = &r.breakdown;
            println!(
                "{:<10} {:>8} {:>12} {:>12.1} {:>11.1}%",
                wl.label(),
                bytes,
                format!("{}", r.wall),
                b.to_memory.mean_ns() + b.from_memory.mean_ns(),
                r.row_hit_rate * 100.0,
            );
        }
        println!();
    }
    println!("expected shape: 64 B loses row-buffer hits; 1024 B concentrates");
    println!("bursts onto single cubes and raises network latency; 256 B balances.");
}
