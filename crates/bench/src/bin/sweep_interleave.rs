//! Reproduces §5's interleave-granularity claim: "addresses are mapped to
//! ports at a 256 byte granularity... chosen empirically based on a sweep
//! of various mapping sizes. In the presence of spatial locality, larger
//! mapping granularities (e.g., 1024 bytes) caused increases in network
//! latency large enough for performance degradation. The smallest size,
//! 64 bytes, caused reduction in row-buffer hits within the memory cubes."

use mn_bench::{config_for, Harness};
use mn_campaign::CampaignPoint;
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

const WORKLOADS: [Workload; 3] = [Workload::Dct, Workload::Matrixmul, Workload::Backprop];
const SIZES: [u64; 3] = [64, 256, 1024];

fn main() {
    let mut harness = Harness::new();
    let points: Vec<CampaignPoint> = WORKLOADS
        .into_iter()
        .flat_map(|wl| {
            SIZES.into_iter().map(move |bytes| {
                let mut config = config_for(TopologyKind::Tree, 1.0, NvmPlacement::Last);
                config.interleave_bytes = bytes;
                CampaignPoint::new(config, wl)
            })
        })
        .collect();
    let results = harness.run_grid(points);

    println!("== interleave-granularity sweep (tree, all-DRAM) ==");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12}",
        "workload", "bytes", "wall", "net lat(ns)", "row hits"
    );
    for (w, wl) in WORKLOADS.into_iter().enumerate() {
        for (s, bytes) in SIZES.into_iter().enumerate() {
            let r = &results[w * SIZES.len() + s];
            let b = &r.breakdown;
            println!(
                "{:<10} {:>8} {:>12} {:>12.1} {:>11.1}%",
                wl.label(),
                bytes,
                format!("{}", r.wall),
                b.to_memory.mean_ns() + b.from_memory.mean_ns(),
                r.row_hit_rate * 100.0,
            );
        }
        println!();
    }
    println!("expected shape: 64 B loses row-buffer hits; 1024 B concentrates");
    println!("bursts onto single cubes and raises network latency; 256 B balances.");
    harness.finish();
}
