//! Fig. 7: the tree topology under different DRAM:NVM capacity ratios,
//! normalized to the 100%-DRAM chain.
//!
//! Expected shape (§3.3): using some NVM remains well above the chain
//! baseline; the all-NVM point varies most by workload and is weakest for
//! low-contention workloads (NW).

use mn_bench::{config_for, print_speedup_table, Harness};
use mn_core::mix_grid;
use mn_topo::TopologyKind;
use mn_workloads::Workload;

fn main() {
    let mut harness = Harness::new();
    let configs: Vec<_> = mix_grid()
        .into_iter()
        .map(|mix| config_for(TopologyKind::Tree, mix.dram_fraction, mix.placement))
        .collect();
    let rows = harness.speedup_table(&configs, &Workload::ALL, None);
    print_speedup_table(
        "Fig. 7: tree topology with different DRAM:NVM ratios (vs 100%-Chain)",
        &rows,
    );
    harness.finish();
}
