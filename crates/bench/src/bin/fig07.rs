//! Fig. 7: the tree topology under different DRAM:NVM capacity ratios,
//! normalized to the 100%-DRAM chain.
//!
//! Expected shape (§3.3): using some NVM remains well above the chain
//! baseline; the all-NVM point varies most by workload and is weakest for
//! low-contention workloads (NW).

use mn_bench::{config_for, print_speedup_table, speedup_table};
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

fn main() {
    let configs = vec![
        config_for(TopologyKind::Tree, 1.0, NvmPlacement::Last),
        config_for(TopologyKind::Tree, 0.5, NvmPlacement::Last),
        config_for(TopologyKind::Tree, 0.5, NvmPlacement::First),
        config_for(TopologyKind::Tree, 0.0, NvmPlacement::Last),
    ];
    let rows = speedup_table(&configs, &Workload::ALL, None);
    print_speedup_table(
        "Fig. 7: tree topology with different DRAM:NVM ratios (vs 100%-Chain)",
        &rows,
    );
}
