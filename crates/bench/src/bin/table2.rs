//! Table 2: the evaluated system's configuration parameters, printed from
//! the live defaults so the table can never drift from the code.

use mn_campaign::{write_records, OutputFormat, Record, Value};
use mn_core::SystemConfig;
use mn_mem::MemTechSpec;
use mn_topo::TopologyKind;

fn main() {
    let format = OutputFormat::from_args();
    let c = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).expect("baseline valid");
    let dram = MemTechSpec::dram_hbm();
    let nvm = MemTechSpec::nvm_pcm();

    println!("== Table 2: list of parameters in evaluated system ==");
    let rows: Vec<(&str, String)> = vec![
        ("Memory Ports", c.ports.to_string()),
        ("Total Memory", format!("{} GB (2 TB)", c.total_capacity_gb)),
        (
            "Stack Capacity",
            format!(
                "{} GB (DRAM), {} GB (NVM)",
                dram.capacity_gb, nvm.capacity_gb
            ),
        ),
        (
            "Banks / Stack",
            format!(
                "{} (4 quadrants x {})",
                c.banks_per_quadrant * 4,
                c.banks_per_quadrant
            ),
        ),
        (
            "DRAM Timings",
            format!(
                "tRCD={} tCL={} tRP={} tRAS={}",
                dram.timings.t_rcd, dram.timings.t_cl, dram.timings.t_rp, dram.timings.t_ras
            ),
        ),
        (
            "NVM Timings",
            format!(
                "tRCD={} tCL={} tWR={}",
                nvm.timings.t_rcd, nvm.timings.t_cl, nvm.timings.t_wr
            ),
        ),
        (
            "DRAM Read/Write",
            format!(
                "{} / {} pJ/bit",
                dram.energy.read_pj_per_bit, dram.energy.write_pj_per_bit
            ),
        ),
        (
            "NVM Read/Write",
            format!(
                "{} / {} pJ/bit",
                nvm.energy.read_pj_per_bit, nvm.energy.write_pj_per_bit
            ),
        ),
        (
            "Network Energy",
            format!("{} pJ/bit/hop", c.noc.transport_pj_per_bit_hop),
        ),
        (
            "Link",
            format!(
                "16 lanes @ 15 Gbps ({} ps/byte), SerDes {}",
                c.noc.external_link.ps_per_byte, c.noc.external_link.fixed_latency
            ),
        ),
        (
            "Packets",
            format!(
                "control {} B / data {} B",
                c.noc.control_bytes, c.noc.data_bytes
            ),
        ),
        ("Port interleave", format!("{} B", c.interleave_bytes)),
        ("Issue slots / port", c.window.to_string()),
        ("Host write buffer", c.host_write_buffer.to_string()),
    ];
    for (name, value) in &rows {
        println!("{name:<20} {value}");
    }

    let records: Vec<Record> = rows
        .into_iter()
        .map(|(name, value)| {
            vec![
                ("parameter", Value::Str(name.to_string())),
                ("value", Value::Str(value)),
            ]
        })
        .collect();
    write_records(&mut std::io::stdout().lock(), format, &records)
        .expect("stdout closed mid-emission");
}
