//! Fig. 14: sensitivity to total capacity — a 1 TB system (half the cubes
//! behind each port, same footprint pressure) versus the 2 TB baseline.
//! Reported as the average speedup of 1 TB over 2 TB per configuration,
//! averaged across workloads, as in the paper's figure.
//!
//! Expected shape (§6.2): all-DRAM configurations gain (shorter networks,
//! memory latency roughly constant); the 50% and especially 0% NVM
//! configurations lose — fewer cubes means less memory-level parallelism
//! and more queuing inside the (slower) cubes.

use mn_bench::{config_for, run_one};
use mn_core::speedup_pct;
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

fn main() {
    println!("== Fig. 14: average speedup of a 1 TB system over the 2 TB baseline ==");
    let mixes = [
        (1.0, NvmPlacement::Last, "100%"),
        (0.5, NvmPlacement::Last, "50% (NVM-L)"),
        (0.5, NvmPlacement::First, "50% (NVM-F)"),
        (0.0, NvmPlacement::Last, "0%"),
    ];
    let topologies = [
        TopologyKind::Chain,
        TopologyKind::Ring,
        TopologyKind::Tree,
        TopologyKind::SkipList,
        TopologyKind::MetaCube,
    ];
    println!("{:<14} {:<10} {:>12}", "mix", "topology", "avg speedup");
    for (frac, place, mix_label) in mixes {
        for topo in topologies {
            let two_tb = config_for(topo, frac, place);
            let mut one_tb = two_tb.clone();
            one_tb.total_capacity_gb = 1024;
            let mut sum = 0.0;
            for wl in Workload::ALL {
                let t2 = run_one(&two_tb, wl).wall;
                let t1 = run_one(&one_tb, wl).wall;
                sum += speedup_pct(t2, t1);
            }
            println!(
                "{:<14} {:<10} {:>+11.2}%",
                mix_label,
                topo.to_string(),
                sum / Workload::ALL.len() as f64
            );
        }
    }
}
