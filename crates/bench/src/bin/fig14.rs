//! Fig. 14: sensitivity to total capacity — a 1 TB system (half the cubes
//! behind each port, same footprint pressure) versus the 2 TB baseline.
//! Reported as the average speedup of 1 TB over 2 TB per configuration,
//! averaged across workloads, as in the paper's figure.
//!
//! Expected shape (§6.2): all-DRAM configurations gain (shorter networks,
//! memory latency roughly constant); the 50% and especially 0% NVM
//! configurations lose — fewer cubes means less memory-level parallelism
//! and more queuing inside the (slower) cubes.

use mn_bench::{config_for, mix_topology_grid, Harness};
use mn_campaign::CampaignPoint;
use mn_core::{ratio_label, speedup_pct};
use mn_workloads::Workload;

fn main() {
    let mut harness = Harness::new();
    let grid = mix_topology_grid();

    let mut points = Vec::new();
    for &(mix, topo) in &grid {
        let two_tb = config_for(topo, mix.dram_fraction, mix.placement);
        let mut one_tb = two_tb.clone();
        one_tb.total_capacity_gb = 1024;
        for wl in Workload::ALL {
            points.push(CampaignPoint::new(two_tb.clone(), wl));
            points.push(CampaignPoint::new(one_tb.clone(), wl));
        }
    }
    let results = harness.run_grid(points);

    println!("== Fig. 14: average speedup of a 1 TB system over the 2 TB baseline ==");
    println!("{:<14} {:<10} {:>12}", "mix", "topology", "avg speedup");
    let per_config = Workload::ALL.len() * 2;
    for (g, &(mix, topo)) in grid.iter().enumerate() {
        let pairs = results[g * per_config..(g + 1) * per_config].chunks_exact(2);
        let sum: f64 = pairs.map(|p| speedup_pct(p[0].wall, p[1].wall)).sum();
        println!(
            "{:<14} {:<10} {:>+11.2}%",
            ratio_label(mix),
            topo.to_string(),
            sum / Workload::ALL.len() as f64
        );
    }
    harness.finish();
}
