//! Extensions beyond the paper's evaluation:
//!
//! 1. **Oracle age arbitration** — §4.1 proposes distance as a proxy for a
//!    packet's age because true timestamps do not fit in flit headers. The
//!    simulator can cheat: how much of the ideal does the proxy capture?
//! 2. **Mesh topology** — §3 excludes meshes ("the average hop count is
//!    larger than a tree no matter which memory cube is connected to the
//!    host"). Verify the exclusion was justified end to end.

use mn_bench::{config_for, print_speedup_table, Harness};
use mn_noc::ArbiterKind;
use mn_topo::{CubeTech, NvmPlacement, Placement, Topology, TopologyKind, TopologyMetrics};
use mn_workloads::Workload;

fn main() {
    let mut harness = Harness::new();

    // --- 1. distance-as-age vs the oracle -------------------------------
    let grid = vec![
        config_for(TopologyKind::Chain, 1.0, NvmPlacement::Last),
        config_for(TopologyKind::Ring, 1.0, NvmPlacement::Last),
        config_for(TopologyKind::Tree, 1.0, NvmPlacement::Last),
    ];
    let workloads = [Workload::Backprop, Workload::Dct, Workload::Kmeans];
    for (arbiter, title) in [
        (ArbiterKind::Distance, "distance-as-age proxy (§4.1)"),
        (
            ArbiterKind::OracleAge,
            "oracle true-age arbitration (ideal)",
        ),
    ] {
        let rows = harness.speedup_table(&grid, &workloads, Some(arbiter));
        print_speedup_table(&format!("Extension: {title}, vs 100%-C RR"), &rows);
    }

    // --- 2. the excluded mesh -------------------------------------------
    let mesh_topo = Topology::build(
        TopologyKind::Mesh,
        &Placement::homogeneous(16, CubeTech::Dram),
    )
    .expect("mesh builds");
    let tree_topo = Topology::build(
        TopologyKind::Tree,
        &Placement::homogeneous(16, CubeTech::Dram),
    )
    .expect("tree builds");
    let mesh_m = TopologyMetrics::compute(&mesh_topo);
    let tree_m = TopologyMetrics::compute(&tree_topo);
    println!(
        "\n== Extension: the excluded mesh (§3) ==\n\
         avg read hops: mesh {:.2} vs tree {:.2}; max: {} vs {}",
        mesh_m.avg_read_hops, tree_m.avg_read_hops, mesh_m.max_read_hops, tree_m.max_read_hops
    );
    let rows = harness.speedup_table(
        &[
            config_for(TopologyKind::Mesh, 1.0, NvmPlacement::Last),
            config_for(TopologyKind::Tree, 1.0, NvmPlacement::Last),
        ],
        &workloads,
        None,
    );
    print_speedup_table("mesh vs tree, end to end (vs 100%-C RR)", &rows);
    println!("\nexpected: the tree wins — the paper was right to exclude the mesh.");
    harness.finish();
}
