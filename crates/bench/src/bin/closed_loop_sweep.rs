//! Closed-loop sweep: offered load x window policy on every baseline
//! topology — the host-model harness for the `mn-host` subsystem.
//!
//! Not a figure from the paper: the paper's hosts are open-loop. Expected
//! shape: goodput saturates as issue slots grow, and where the knee lands
//! depends on the policy — `fixed:1` serializes (lowest goodput, earliest
//! knee), `fixed:32` barely gates, `aimd` converges near the
//! uncongested window, and `ecn` backs off on marked responses (nonzero
//! marked fraction, fairest under load). The per-policy Jain index and
//! steady-state window columns come from telemetry, so the harness runs
//! uncached (cache hits carry no telemetry).
//!
//! Every point is seeded by its config, so the table is deterministic at
//! any `MN_JOBS`.

use mn_bench::{closed_loop_report, Harness};

fn main() {
    let mut harness = Harness::uncached();
    print!("{}", closed_loop_report(&mut harness));
    harness.finish();
}
