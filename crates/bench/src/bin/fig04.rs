//! Fig. 4: speedup of all-DRAM ring and tree MNs over the chain.
//!
//! Expected shape (§3.1): the tree (fewest hops) wins everywhere, the ring
//! sits between tree and chain, and NW (lowest network load) moves least.

use mn_bench::{config_for, print_speedup_table, Harness};
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

fn main() {
    let mut harness = Harness::new();
    let configs = vec![
        config_for(TopologyKind::Ring, 1.0, NvmPlacement::Last),
        config_for(TopologyKind::Tree, 1.0, NvmPlacement::Last),
    ];
    let rows = harness.speedup_table(&configs, &Workload::ALL, None);
    print_speedup_table(
        "Fig. 4: speedup of DRAM memory networks over a chain topology",
        &rows,
    );
    harness.finish();
}
