//! Fig. 10: distance-based arbitration alone, on the twelve baseline
//! configurations (chain/ring/tree x DRAM:NVM mixes), normalized to the
//! 100%-Chain round-robin baseline. A second table isolates the
//! arbitration delta (distance vs round-robin per configuration).
//!
//! Expected shape (§5.1): "mixed results" — distance-as-age helps most
//! all-DRAM and NVM-L configurations but can invert on NVM-F, where nearby
//! slow arrays make young-looking responses actually old.

use mn_bench::{fig10_report, Harness};

fn main() {
    let mut harness = Harness::new();
    print!("{}", fig10_report(&mut harness));
    harness.finish();
}
