//! Fig. 10: distance-based arbitration alone, on the twelve baseline
//! configurations (chain/ring/tree x DRAM:NVM mixes), normalized to the
//! 100%-Chain round-robin baseline. A second table isolates the
//! arbitration delta (distance vs round-robin per configuration).
//!
//! Expected shape (§5.1): "mixed results" — distance-as-age helps most
//! all-DRAM and NVM-L configurations but can invert on NVM-F, where nearby
//! slow arrays make young-looking responses actually old.

use mn_bench::{print_speedup_table, twelve_config_grid, Harness, SpeedupRow};
use mn_noc::ArbiterKind;
use mn_topo::TopologyKind;
use mn_workloads::Workload;

fn main() {
    let mut harness = Harness::new();
    let grid = twelve_config_grid([TopologyKind::Chain, TopologyKind::Ring, TopologyKind::Tree]);
    let with_distance = harness.speedup_table(&grid, &Workload::ALL, Some(ArbiterKind::Distance));
    print_speedup_table(
        "Fig. 10: distance-based arbitration on baseline topologies (vs 100%-C RR)",
        &with_distance,
    );

    let with_rr = harness.speedup_table(&grid, &Workload::ALL, Some(ArbiterKind::RoundRobin));
    let delta_rows: Vec<SpeedupRow> = with_distance
        .iter()
        .zip(&with_rr)
        .map(|(d, r)| SpeedupRow {
            workload: d.workload.clone(),
            entries: d
                .entries
                .iter()
                .zip(&r.entries)
                .map(|((label, dp), (_, rp))| (label.clone(), dp - rp))
                .collect(),
        })
        .collect();
    print_speedup_table(
        "Fig. 10 (delta view): distance arbitration minus round-robin, percentage points",
        &delta_rows,
    );
    harness.finish();
}
