//! `kernel_bench` — the DES-kernel microbenchmark behind `BENCH_kernel.json`.
//!
//! Times the canonical *chain-640-requests* microbench (the paper-baseline
//! chain MN driven to 640 completed requests) plus two larger reference
//! points, and reports the kernel-health metrics the hot-path work targets:
//!
//! - **events/sec** and **ns/event** — wall time divided by the number of
//!   discrete events processed. The event stream is part of the
//!   bit-reproducible contract, so the denominator is stable across kernel
//!   changes and the ratio tracks pure dispatch cost.
//! - **peak queue depth** — the event heap's high-water mark; arbitration
//!   coalescing and pre-sizing drive this down.
//! - **allocations per 1k events** — counted by a wrapping global
//!   allocator; scratch-buffer reuse and slab tokens drive this toward
//!   zero in the steady state.
//!
//! Results go to stdout (human-readable) and to `BENCH_kernel.json`
//! (`MN_BENCH_OUT` to relocate), so CI can archive the perf trajectory
//! per-PR and regressions are visible as a diff, not an anecdote.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mn_core::{simulate_port, SystemConfig};
use mn_topo::TopologyKind;
use mn_workloads::Workload;

/// A pass-through allocator that counts heap operations on the hot path.
/// Lives in the binary (the workspace libraries `forbid(unsafe_code)`; the
/// two calls below are the canonical delegating-allocator idiom).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`, which upholds the GlobalAlloc
// contract; the counter has no safety implications.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Case {
    name: &'static str,
    topology: TopologyKind,
    requests: u64,
    workload: Workload,
    iters: u32,
}

struct Measurement {
    name: String,
    events_per_iter: u64,
    queue_peak: usize,
    ns_per_event: f64,
    events_per_sec: f64,
    allocs_per_1k_events: f64,
    wall_per_iter_ms: f64,
}

fn run_case(case: &Case) -> Measurement {
    let mut config =
        SystemConfig::paper_baseline(case.topology, 1.0).expect("paper baseline is valid");
    config.requests_per_port = case.requests;

    // Warm up (page in code, size caches) outside the measured window.
    let reference = simulate_port(&config, case.workload, 0);
    let events = reference.kernel_events();
    let queue_peak = reference.event_queue_peak();

    let alloc_start = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..case.iters {
        let obs = simulate_port(&config, case.workload, 0);
        assert_eq!(
            obs.kernel_events(),
            events,
            "event stream must be deterministic"
        );
        std::hint::black_box(&obs);
    }
    let wall = start.elapsed();
    let allocs = ALLOCS.load(Ordering::Relaxed) - alloc_start;

    let total_events = events * u64::from(case.iters);
    let secs = wall.as_secs_f64();
    Measurement {
        name: case.name.to_string(),
        events_per_iter: events,
        queue_peak,
        ns_per_event: secs * 1e9 / total_events as f64,
        events_per_sec: total_events as f64 / secs,
        allocs_per_1k_events: allocs as f64 * 1000.0 / total_events as f64,
        wall_per_iter_ms: secs * 1e3 / f64::from(case.iters),
    }
}

fn main() {
    let cases = [
        Case {
            name: "chain-640-requests",
            topology: TopologyKind::Chain,
            requests: 640,
            workload: Workload::Dct,
            iters: 40,
        },
        Case {
            name: "tree-2k-requests",
            topology: TopologyKind::Tree,
            requests: 2_000,
            workload: Workload::Nw,
            iters: 10,
        },
        Case {
            name: "skiplist-2k-requests",
            topology: TopologyKind::SkipList,
            requests: 2_000,
            workload: Workload::Backprop,
            iters: 10,
        },
    ];

    println!(
        "{:<22} {:>12} {:>10} {:>10} {:>14} {:>12} {:>12}",
        "case", "events/iter", "peak q", "ns/event", "events/sec", "alloc/1kev", "ms/iter"
    );
    let mut measurements = Vec::new();
    for case in &cases {
        let m = run_case(case);
        println!(
            "{:<22} {:>12} {:>10} {:>10.1} {:>14.0} {:>12.2} {:>12.3}",
            m.name,
            m.events_per_iter,
            m.queue_peak,
            m.ns_per_event,
            m.events_per_sec,
            m.allocs_per_1k_events,
            m.wall_per_iter_ms
        );
        measurements.push(m);
    }

    let out = std::env::var("MN_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernel.json".to_string());
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\":\"{}\",\"events_per_iter\":{},\"peak_queue_depth\":{},\
             \"ns_per_event\":{:.3},\"events_per_sec\":{:.0},\
             \"allocs_per_1k_events\":{:.2},\"wall_per_iter_ms\":{:.3}}}{comma}",
            m.name,
            m.events_per_iter,
            m.queue_peak,
            m.ns_per_event,
            m.events_per_sec,
            m.allocs_per_1k_events,
            m.wall_per_iter_ms
        );
    }
    json.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(&out, &json) {
        eprintln!("warning: could not write {out}: {err}");
    } else {
        eprintln!("wrote {out}");
    }
}
