//! `kernel_bench` — the DES-kernel microbenchmark behind `BENCH_kernel.json`.
//!
//! Times the canonical *chain-640-requests* microbench (the paper-baseline
//! chain MN driven to 640 completed requests), two larger reference points,
//! and a fault-enabled chain variant (CRC retry/replay exercises the
//! retry-buffer path), and reports the kernel-health metrics the hot-path
//! work targets:
//!
//! - **events/sec** and **ns/event** — wall time divided by the number of
//!   discrete events processed. The event stream is part of the
//!   bit-reproducible contract, so the denominator is stable across kernel
//!   changes and the ratio tracks pure dispatch cost.
//! - **peak queue depth** — the ladder queue's high-water mark.
//! - **allocations per 1k events** — counted by a wrapping global
//!   allocator, both for the whole run and for the *steady state* alone
//!   (the simulation loop after construction). Arena-backed packets and
//!   pooled buffers drive the steady-state figure to zero.
//! - **ladder spills / rewindows and arena high-water** — the kernel v3
//!   counters ([`mn_sim::KernelCounters`]); spills say how often events
//!   landed beyond the bucket window, the arena high-water bounds the
//!   packet working set.
//!
//! Results go to stdout (human-readable) and to `BENCH_kernel.json`
//! (`MN_BENCH_OUT` to relocate), so CI can archive the perf trajectory
//! per-PR and regressions are visible as a diff, not an anecdote.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::time::Instant;

use mn_core::{simulate_port, SystemConfig};
use mn_sim::counters;
use mn_topo::TopologyKind;
use mn_workloads::Workload;

/// A pass-through allocator that counts heap operations on the hot path,
/// feeding the process-global tally in `mn_sim::counters` (which the port
/// simulator snapshots around its steady-state loop). Lives in the binary
/// (the workspace libraries `forbid(unsafe_code)`; the two calls below are
/// the canonical delegating-allocator idiom).
struct CountingAlloc;

// SAFETY: delegates verbatim to `System`, which upholds the GlobalAlloc
// contract; the counter is a relaxed atomic add with no safety
// implications (and no allocation of its own).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        counters::record_heap_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Case {
    name: &'static str,
    topology: TopologyKind,
    requests: u64,
    workload: Workload,
    iters: u32,
    /// Transient CRC fault rate (0.0 = healthy links).
    fault_rate: f64,
}

struct Measurement {
    name: String,
    events_per_iter: u64,
    queue_peak: usize,
    ns_per_event: f64,
    events_per_sec: f64,
    allocs_per_1k_events: f64,
    steady_allocs_per_1k_events: f64,
    bucket_spills: u64,
    rewindows: u64,
    arena_high_water: u64,
    wall_per_iter_ms: f64,
}

fn run_case(case: &Case) -> Measurement {
    let mut config =
        SystemConfig::paper_baseline(case.topology, 1.0).expect("paper baseline is valid");
    config.requests_per_port = case.requests;
    if case.fault_rate > 0.0 {
        config.noc.fault.transient_rate = case.fault_rate;
        config.noc.fault.seed = 7;
    }
    // MN_TRACE lets CI measure telemetry overhead (off/counters/full)
    // with the same binary; the event stream is identical either way.
    if let Some(mode) = mn_campaign::trace_from_env() {
        config.noc.trace = mode;
    }

    // Warm up (page in code, size caches) outside the measured window.
    let reference = simulate_port(&config, case.workload, 0);
    let events = reference.kernel_events();
    let kernel = reference.kernel_counters();

    let alloc_start = counters::heap_allocs();
    let start = Instant::now();
    let mut steady_allocs = 0u64;
    for _ in 0..case.iters {
        let obs = simulate_port(&config, case.workload, 0);
        assert_eq!(
            obs.kernel_events(),
            events,
            "event stream must be deterministic"
        );
        steady_allocs += obs.kernel_counters().steady_heap_allocs;
        std::hint::black_box(&obs);
    }
    let wall = start.elapsed();
    let allocs = counters::heap_allocs() - alloc_start;

    let total_events = events * u64::from(case.iters);
    let secs = wall.as_secs_f64();
    Measurement {
        name: case.name.to_string(),
        events_per_iter: events,
        queue_peak: kernel.queue_peak as usize,
        ns_per_event: secs * 1e9 / total_events as f64,
        events_per_sec: total_events as f64 / secs,
        allocs_per_1k_events: allocs as f64 * 1000.0 / total_events as f64,
        steady_allocs_per_1k_events: steady_allocs as f64 * 1000.0 / total_events as f64,
        bucket_spills: kernel.bucket_spills,
        rewindows: kernel.rewindows,
        arena_high_water: kernel.arena_high_water,
        wall_per_iter_ms: secs * 1e3 / f64::from(case.iters),
    }
}

fn main() {
    let cases = [
        Case {
            name: "chain-640-requests",
            topology: TopologyKind::Chain,
            requests: 640,
            workload: Workload::Dct,
            iters: 40,
            fault_rate: 0.0,
        },
        Case {
            name: "tree-2k-requests",
            topology: TopologyKind::Tree,
            requests: 2_000,
            workload: Workload::Nw,
            iters: 10,
            fault_rate: 0.0,
        },
        Case {
            name: "skiplist-2k-requests",
            topology: TopologyKind::SkipList,
            requests: 2_000,
            workload: Workload::Backprop,
            iters: 10,
            fault_rate: 0.0,
        },
        // Retry/replay path: transient CRC faults stretch link occupancy
        // and touch the per-link retry buffers every few hundred packets.
        Case {
            name: "chain-640-faulty",
            topology: TopologyKind::Chain,
            requests: 640,
            workload: Workload::Dct,
            iters: 40,
            fault_rate: 0.02,
        },
    ];

    println!(
        "{:<22} {:>12} {:>8} {:>9} {:>13} {:>11} {:>11} {:>7} {:>8} {:>8} {:>10}",
        "case",
        "events/iter",
        "peak q",
        "ns/event",
        "events/sec",
        "alloc/1kev",
        "steady/1k",
        "spills",
        "rewind",
        "arena",
        "ms/iter"
    );
    let mut measurements = Vec::new();
    for case in &cases {
        let m = run_case(case);
        println!(
            "{:<22} {:>12} {:>8} {:>9.1} {:>13.0} {:>11.2} {:>11.3} {:>7} {:>8} {:>8} {:>10.3}",
            m.name,
            m.events_per_iter,
            m.queue_peak,
            m.ns_per_event,
            m.events_per_sec,
            m.allocs_per_1k_events,
            m.steady_allocs_per_1k_events,
            m.bucket_spills,
            m.rewindows,
            m.arena_high_water,
            m.wall_per_iter_ms
        );
        measurements.push(m);
    }

    let out = std::env::var("MN_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernel.json".to_string());
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\":\"{}\",\"events_per_iter\":{},\"peak_queue_depth\":{},\
             \"ns_per_event\":{:.3},\"events_per_sec\":{:.0},\
             \"allocs_per_1k_events\":{:.2},\"steady_allocs_per_1k_events\":{:.3},\
             \"bucket_spills\":{},\"rewindows\":{},\"arena_high_water\":{},\
             \"wall_per_iter_ms\":{:.3}}}{comma}",
            m.name,
            m.events_per_iter,
            m.queue_peak,
            m.ns_per_event,
            m.events_per_sec,
            m.allocs_per_1k_events,
            m.steady_allocs_per_1k_events,
            m.bucket_spills,
            m.rewindows,
            m.arena_high_water,
            m.wall_per_iter_ms
        );
    }
    json.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(&out, &json) {
        eprintln!("warning: could not write {out}: {err}");
    } else {
        eprintln!("wrote {out}");
    }
}
