//! Fig. 11: tree vs skip-list vs MetaCube with the default round-robin
//! arbitration, across the DRAM:NVM mixes, normalized to 100%-Chain.
//!
//! Expected shape (§5.2): MetaCube wins essentially everywhere and is the
//! one topology where 100% DRAM beats every NVM mix; skip-list trails the
//! tree on write-heavy workloads (its writes ride the long chain) and
//! shows its best relative results on NVM-L mixes.

use mn_bench::{print_speedup_table, twelve_config_grid, Harness};
use mn_topo::TopologyKind;
use mn_workloads::Workload;

fn main() {
    let mut harness = Harness::new();
    let grid = twelve_config_grid([
        TopologyKind::Tree,
        TopologyKind::SkipList,
        TopologyKind::MetaCube,
    ]);
    let rows = harness.speedup_table(&grid, &Workload::ALL, None);
    print_speedup_table(
        "Fig. 11: Tree vs SkipList vs MetaCube, round-robin arbitration (vs 100%-C)",
        &rows,
    );
    harness.finish();
}
