//! Reproduces §5's SerDes-latency claim: "we experimented modifying this
//! parameter and found that 2 ns made little difference compared to no
//! latency, however larger values (e.g., 10 ns) have a large impact on
//! network latency."

use mn_bench::{config_for, run_one};
use mn_core::speedup_pct;
use mn_sim::SimDuration;
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

fn main() {
    println!("== SerDes per-hop latency sweep (chain, all-DRAM) ==");
    println!(
        "{:<10} {:>8} {:>12} {:>14} {:>12}",
        "workload", "serdes", "wall", "net lat(ns)", "vs 2ns"
    );
    for wl in [Workload::Dct, Workload::Kmeans] {
        let mut base_wall = None;
        let mut rows = Vec::new();
        for ns in [0u64, 2, 10] {
            let mut config = config_for(TopologyKind::Chain, 1.0, NvmPlacement::Last);
            config.noc.external_link.fixed_latency = SimDuration::from_ns(ns);
            let r = run_one(&config, wl);
            if ns == 2 {
                base_wall = Some(r.wall);
            }
            rows.push((ns, r));
        }
        let base = base_wall.expect("2 ns row present");
        for (ns, r) in rows {
            let b = &r.breakdown;
            println!(
                "{:<10} {:>6}ns {:>12} {:>14.1} {:>+11.1}%",
                wl.label(),
                ns,
                format!("{}", r.wall),
                b.to_memory.mean_ns() + b.from_memory.mean_ns(),
                speedup_pct(r.wall, base),
            );
        }
        println!();
    }
    println!("expected shape: 0 ns ≈ 2 ns (small deltas); 10 ns much slower.");
}
