//! Reproduces §5's SerDes-latency claim: "we experimented modifying this
//! parameter and found that 2 ns made little difference compared to no
//! latency, however larger values (e.g., 10 ns) have a large impact on
//! network latency."

use mn_bench::{config_for, Harness};
use mn_campaign::CampaignPoint;
use mn_core::speedup_pct;
use mn_sim::SimDuration;
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

const WORKLOADS: [Workload; 2] = [Workload::Dct, Workload::Kmeans];
const LATENCIES_NS: [u64; 3] = [0, 2, 10];

fn main() {
    let mut harness = Harness::new();
    let points: Vec<CampaignPoint> = WORKLOADS
        .into_iter()
        .flat_map(|wl| {
            LATENCIES_NS.into_iter().map(move |ns| {
                let mut config = config_for(TopologyKind::Chain, 1.0, NvmPlacement::Last);
                config.noc.external_link.fixed_latency = SimDuration::from_ns(ns);
                CampaignPoint::new(config, wl)
            })
        })
        .collect();
    let results = harness.run_grid(points);

    println!("== SerDes per-hop latency sweep (chain, all-DRAM) ==");
    println!(
        "{:<10} {:>8} {:>12} {:>14} {:>12}",
        "workload", "serdes", "wall", "net lat(ns)", "vs 2ns"
    );
    for (w, wl) in WORKLOADS.into_iter().enumerate() {
        let per_wl = &results[w * LATENCIES_NS.len()..(w + 1) * LATENCIES_NS.len()];
        let base = per_wl[1].wall; // the 2 ns row
        for (r, ns) in per_wl.iter().zip(LATENCIES_NS) {
            let b = &r.breakdown;
            println!(
                "{:<10} {:>6}ns {:>12} {:>14.1} {:>+11.1}%",
                wl.label(),
                ns,
                format!("{}", r.wall),
                b.to_memory.mean_ns() + b.from_memory.mean_ns(),
                speedup_pct(r.wall, base),
            );
        }
        println!();
    }
    println!("expected shape: 0 ns ≈ 2 ns (small deltas); 10 ns much slower.");
    harness.finish();
}
