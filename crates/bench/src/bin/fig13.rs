//! Fig. 13: sensitivity to the number of host memory ports — the 2 TB
//! system served by four ports instead of eight (twice the cubes, and
//! twice the traffic, per port). Reported as the change in speedup when
//! moving from eight to four ports, per configuration.
//!
//! Expected shape (§6.1): linear topologies (chain, ring) degrade most as
//! their hop counts double; 50% NVM-L suffers the worst of the mixes;
//! all-NVM configurations move least (memory-latency-bound); MetaCube is
//! nearly flat on some workloads.

use mn_bench::{config_for, print_speedup_table, run_one, SpeedupRow};
use mn_core::speedup_pct;
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

fn main() {
    let mixes = [
        (1.0, NvmPlacement::Last, "100%"),
        (0.5, NvmPlacement::Last, "50% (NVM-L)"),
        (0.5, NvmPlacement::First, "50% (NVM-F)"),
        (0.0, NvmPlacement::Last, "0%"),
    ];
    let topologies = [
        TopologyKind::Chain,
        TopologyKind::Ring,
        TopologyKind::Tree,
        TopologyKind::SkipList,
        TopologyKind::MetaCube,
    ];

    let mut rows = Vec::new();
    for wl in Workload::ALL {
        let mut entries = Vec::new();
        for (frac, place, _) in mixes {
            for topo in topologies {
                let eight = config_for(topo, frac, place);
                let mut four = eight.clone();
                four.ports = 4;
                // Hold total system work constant: each of the four ports
                // serves twice the address space and twice the requests.
                four.requests_per_port = eight.requests_per_port * 2;
                let t8 = run_one(&eight, wl).wall;
                let t4 = run_one(&four, wl).wall;
                // Change in performance when halving the port count: the
                // four-port system's speedup relative to the same
                // configuration at eight ports.
                entries.push((
                    format!("{}%-{}", (frac * 100.0) as u32, topo.label()),
                    speedup_pct(t8, t4),
                ));
            }
        }
        rows.push(SpeedupRow {
            workload: wl.label().to_string(),
            entries,
        });
    }
    print_speedup_table(
        "Fig. 13: speedup change moving from eight to four host ports (2 TB fixed)",
        &rows,
    );
}
