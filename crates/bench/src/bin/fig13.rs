//! Fig. 13: sensitivity to the number of host memory ports — the 2 TB
//! system served by four ports instead of eight (twice the cubes, and
//! twice the traffic, per port). Reported as the change in speedup when
//! moving from eight to four ports, per configuration.
//!
//! Expected shape (§6.1): linear topologies (chain, ring) degrade most as
//! their hop counts double; 50% NVM-L suffers the worst of the mixes;
//! all-NVM configurations move least (memory-latency-bound); MetaCube is
//! nearly flat on some workloads.

use mn_bench::{config_for, mix_topology_grid, print_speedup_table, Harness, SpeedupRow};
use mn_campaign::CampaignPoint;
use mn_core::speedup_pct;
use mn_workloads::Workload;

fn main() {
    let mut harness = Harness::new();
    let grid = mix_topology_grid();

    // Two points per (workload, configuration): the eight-port baseline
    // and the four-port variant, submitted as one campaign.
    let mut points = Vec::new();
    for wl in Workload::ALL {
        for &(mix, topo) in &grid {
            let eight = config_for(topo, mix.dram_fraction, mix.placement);
            let mut four = eight.clone();
            four.ports = 4;
            // Hold total system work constant: each of the four ports
            // serves twice the address space and twice the requests.
            four.requests_per_port = eight.requests_per_port * 2;
            points.push(CampaignPoint::new(eight, wl));
            points.push(CampaignPoint::new(four, wl));
        }
    }
    let results = harness.run_grid(points);

    let mut rows = Vec::new();
    for (w, wl) in Workload::ALL.into_iter().enumerate() {
        let entries = grid
            .iter()
            .enumerate()
            .map(|(g, _)| {
                let eight = &results[(w * grid.len() + g) * 2];
                let four = &results[(w * grid.len() + g) * 2 + 1];
                // Change in performance when halving the port count: the
                // four-port system's speedup relative to the same
                // configuration at eight ports.
                (eight.label.clone(), speedup_pct(eight.wall, four.wall))
            })
            .collect();
        rows.push(SpeedupRow {
            workload: wl.label().to_string(),
            entries,
        });
    }
    print_speedup_table(
        "Fig. 13: speedup change moving from eight to four host ports (2 TB fixed)",
        &rows,
    );
    harness.finish();
}
