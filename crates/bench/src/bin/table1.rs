//! Table 1: maximum DDR bus speed vs. DIMMs per channel, plus the
//! capacity/bandwidth tradeoff and the pin-cost comparison that motivate
//! memory networks (§1–2.1).

use mn_campaign::{write_records, OutputFormat, Record, Value};
use mn_mem::ddr::{
    channel_bandwidth_gbs, cube_links_for_pin_budget, max_speed_mhz, DdrGeneration, DdrSystem,
    CUBE_LINK_BANDWIDTH_GBS, MAX_DPC,
};

fn kv(section: &str, key: String, value: String) -> Record {
    vec![
        ("section", Value::Str(section.to_string())),
        ("key", Value::Str(key)),
        ("value", Value::Str(value)),
    ]
}

fn main() {
    let format = OutputFormat::from_args();
    let mut records = Vec::new();

    println!("== Table 1: max memory interface speed vs DIMMs per channel ==");
    println!("{:<16} {:>10} {:>10}", "Number of DPC", "DDR3", "DDR4");
    for dpc in 1..=MAX_DPC {
        let d3 = max_speed_mhz(DdrGeneration::Ddr3, dpc).expect("supported");
        let d4 = max_speed_mhz(DdrGeneration::Ddr4, dpc).expect("supported");
        println!("{dpc:<16} {d3:>7} MHz {d4:>7} MHz");
        records.push(kv(
            "max_speed",
            format!("dpc={dpc}"),
            format!("ddr3={d3}MHz ddr4={d4}MHz"),
        ));
    }

    println!("\n== capacity/bandwidth tradeoff (4-channel DDR3 server, 32 GB DIMMs) ==");
    println!(
        "{:<6} {:>12} {:>14} {:>16}",
        "DPC", "capacity", "bandwidth", "GB/s per 100GB"
    );
    for dpc in 1..=MAX_DPC {
        let sys = DdrSystem {
            generation: DdrGeneration::Ddr3,
            channels: 4,
            dpc,
            dimm_gb: 32,
        };
        let bw = sys.bandwidth_gbs().expect("supported");
        let per = sys.bandwidth_per_gb().expect("supported") * 100.0;
        println!(
            "{:<6} {:>9} GB {:>9.1} GB/s {:>16.2}",
            dpc,
            sys.capacity_gb(),
            bw,
            per,
        );
        records.push(kv(
            "capacity_bandwidth",
            format!("dpc={dpc}"),
            format!(
                "capacity={}GB bandwidth={bw:.1}GB/s per_100gb={per:.2}",
                sys.capacity_gb()
            ),
        ));
    }

    println!("\n== pin-cost comparison (§1, §2.2) ==");
    let server = DdrSystem {
        generation: DdrGeneration::Ddr4,
        channels: 4,
        dpc: 2,
        dimm_gb: 32,
    };
    let links = cube_links_for_pin_budget(DdrGeneration::Ddr4, 4);
    println!(
        "4-channel DDR4: {} pins, {:.1} GB/s peak",
        server.pins(),
        server.bandwidth_gbs().expect("supported")
    );
    println!(
        "same pins as memory-cube links: {} links, {:.0} GB/s peak ({}x channels)",
        links,
        f64::from(links) * CUBE_LINK_BANDWIDTH_GBS,
        links / 4
    );
    records.push(kv(
        "pin_cost",
        "ddr4_4ch".to_string(),
        format!(
            "pins={} bandwidth={:.1}GB/s",
            server.pins(),
            server.bandwidth_gbs().expect("supported")
        ),
    ));
    records.push(kv(
        "pin_cost",
        "cube_links_same_pins".to_string(),
        format!(
            "links={links} bandwidth={:.0}GB/s",
            f64::from(links) * CUBE_LINK_BANDWIDTH_GBS
        ),
    ));
    let _ = channel_bandwidth_gbs(2133);

    write_records(&mut std::io::stdout().lock(), format, &records)
        .expect("stdout closed mid-emission");
}
