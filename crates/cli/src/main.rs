//! The `mncube` binary: parse, execute, print.

use std::process::ExitCode;

use mn_cli::{execute, Command};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match Command::parse(&args).and_then(|cmd| execute(&cmd)) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mncube: {e}");
            eprintln!("try 'mncube help'");
            ExitCode::FAILURE
        }
    }
}
