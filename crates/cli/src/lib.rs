//! # mn-cli — the `mncube` command-line interface
//!
//! A thin, dependency-free front end over `mn-core` for exploring the
//! design space without writing Rust:
//!
//! ```sh
//! mncube run --topology tree --workload dct --dram 50 --placement last
//! mncube compare --workload backprop --arbiter adaptive
//! mncube topo --topology skiplist --cubes 16
//! mncube sweep --topology tree --workload kmeans
//! ```
//!
//! The argument parser is hand-rolled (the workspace keeps its dependency
//! set to the simulation essentials); see [`Command::parse`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod args;
mod commands;

pub use args::{ArgError, Command, CompareArgs, RunArgs, SweepArgs, TopoArgs};
pub use commands::{execute, execute_with};
