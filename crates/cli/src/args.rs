//! Argument parsing for the `mncube` binary.
//!
//! Deliberately hand-rolled: the workspace keeps its dependencies to the
//! simulation essentials, and the grammar is small — five subcommands with
//! `--flag value` options.

use std::error::Error;
use std::fmt;

use mn_core::WindowPolicyKind;
use mn_noc::ArbiterKind;
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

/// A bad invocation, with a message suitable for direct printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ArgError {}

fn err(msg: impl Into<String>) -> ArgError {
    ArgError(msg.into())
}

/// Arguments of `mncube run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// MN topology.
    pub topology: TopologyKind,
    /// Workload proxy.
    pub workload: Workload,
    /// DRAM capacity percentage (100, 50, 0, ...).
    pub dram_pct: u32,
    /// NVM placement.
    pub placement: NvmPlacement,
    /// Arbitration scheme.
    pub arbiter: ArbiterKind,
    /// Requests per port.
    pub requests: u64,
    /// Enable write-burst routing on skip lists.
    pub write_burst: bool,
    /// RNG seed override.
    pub seed: Option<u64>,
}

/// Arguments of `mncube compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareArgs {
    /// Workload proxy.
    pub workload: Workload,
    /// Arbitration scheme.
    pub arbiter: ArbiterKind,
    /// Requests per port.
    pub requests: u64,
}

/// Arguments of `mncube topo`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoArgs {
    /// MN topology.
    pub topology: TopologyKind,
    /// Number of cubes.
    pub cubes: u32,
    /// DRAM capacity percentage.
    pub dram_pct: u32,
    /// NVM placement.
    pub placement: NvmPlacement,
}

/// Arguments of `mncube sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// MN topology.
    pub topology: TopologyKind,
    /// Workload proxy.
    pub workload: Workload,
    /// Requests per port.
    pub requests: u64,
}

/// Arguments of `mncube trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArgs {
    /// MN topology.
    pub topology: TopologyKind,
    /// Workload proxy.
    pub workload: Workload,
    /// DRAM capacity percentage.
    pub dram_pct: u32,
    /// NVM placement.
    pub placement: NvmPlacement,
    /// Requests per port.
    pub requests: u64,
    /// RNG seed override.
    pub seed: Option<u64>,
    /// Output path for the Perfetto trace (defaults to
    /// `$MN_TRACE_DIR/trace.json`, or `./trace.json`).
    pub out: Option<std::path::PathBuf>,
}

/// Arguments of `mncube closedloop`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopArgs {
    /// MN topology.
    pub topology: TopologyKind,
    /// Workload proxy.
    pub workload: Workload,
    /// Congestion-control window policy.
    pub policy: WindowPolicyKind,
    /// Initial window override in outstanding requests (the cap is raised
    /// to match when needed).
    pub window: Option<u32>,
    /// Requests per port.
    pub requests: u64,
    /// RNG seed override.
    pub seed: Option<u64>,
}

/// A parsed `mncube` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Simulate one configuration and print its full report.
    Run(RunArgs),
    /// Compare every topology under one workload.
    Compare(CompareArgs),
    /// Render a topology and its structural metrics.
    Topo(TopoArgs),
    /// Sweep the DRAM:NVM ratio for one topology.
    Sweep(SweepArgs),
    /// Simulate one port with full tracing and export a Perfetto trace
    /// plus a latency-decomposition report.
    Trace(TraceArgs),
    /// Simulate one configuration with the closed-loop host model and
    /// report window/RTT/goodput alongside the usual run report.
    ClosedLoop(ClosedLoopArgs),
    /// Print usage.
    Help,
}

/// The usage text.
pub const USAGE: &str = "\
mncube — memory-network simulator (ISCA'17 'There and Back Again')

USAGE:
    mncube run     [--topology T] [--workload W] [--dram PCT] [--placement P]
                   [--arbiter A] [--requests N] [--write-burst] [--seed S]
    mncube compare [--workload W] [--arbiter A] [--requests N]
    mncube topo    [--topology T] [--cubes N] [--dram PCT] [--placement P]
    mncube sweep   [--topology T] [--workload W] [--requests N]
    mncube trace   [--topology T] [--workload W] [--dram PCT] [--placement P]
                   [--requests N] [--seed S] [--out FILE]
    mncube closedloop [--topology T] [--workload W] [--policy PO]
                   [--window N] [--requests N] [--seed S]
    mncube help

VALUES:
    T:   chain | ring | tree | skiplist | metacube | mesh
    W:   backprop | bit | buff | dct | hotspot | kmeans | matrixmul | nw
    PCT: 100 | 75 | 50 | 25 | 0       (DRAM share of capacity)
    P:   first | last                 (NVM placement)
    A:   rr | distance | adaptive | oracle
    PO:  open | fixed:<n> | aimd | ecn (congestion-control window policy)

'trace' writes a Chrome/Perfetto trace.json (open in ui.perfetto.dev);
--out overrides the destination, else $MN_TRACE_DIR/trace.json is used.
'closedloop' gates injection on an outstanding-request window and reports
the steady-state window, RTT, and goodput (ecn also enables link marking).
";

fn parse_topology(s: &str) -> Result<TopologyKind, ArgError> {
    match s.to_ascii_lowercase().as_str() {
        "chain" | "c" => Ok(TopologyKind::Chain),
        "ring" | "r" => Ok(TopologyKind::Ring),
        "tree" | "t" => Ok(TopologyKind::Tree),
        "skiplist" | "skip-list" | "sl" => Ok(TopologyKind::SkipList),
        "metacube" | "mc" => Ok(TopologyKind::MetaCube),
        "mesh" | "m" => Ok(TopologyKind::Mesh),
        other => Err(err(format!("unknown topology '{other}'"))),
    }
}

fn parse_workload(s: &str) -> Result<Workload, ArgError> {
    Workload::ALL
        .into_iter()
        .find(|w| w.label().eq_ignore_ascii_case(s))
        .ok_or_else(|| err(format!("unknown workload '{s}'")))
}

fn parse_placement(s: &str) -> Result<NvmPlacement, ArgError> {
    match s.to_ascii_lowercase().as_str() {
        "first" | "f" | "nvm-f" => Ok(NvmPlacement::First),
        "last" | "l" | "nvm-l" => Ok(NvmPlacement::Last),
        other => Err(err(format!("unknown placement '{other}'"))),
    }
}

fn parse_arbiter(s: &str) -> Result<ArbiterKind, ArgError> {
    match s.to_ascii_lowercase().as_str() {
        "rr" | "roundrobin" | "round-robin" => Ok(ArbiterKind::RoundRobin),
        "distance" | "dist" => Ok(ArbiterKind::Distance),
        "adaptive" | "adaptive-distance" => Ok(ArbiterKind::AdaptiveDistance),
        "oracle" | "age" => Ok(ArbiterKind::OracleAge),
        other => Err(err(format!("unknown arbiter '{other}'"))),
    }
}

fn parse_u64(flag: &str, s: &str) -> Result<u64, ArgError> {
    s.parse()
        .map_err(|_| err(format!("{flag} expects a number, got '{s}'")))
}

fn parse_policy(s: &str) -> Result<WindowPolicyKind, ArgError> {
    s.parse().map_err(|e| err(format!("{e}")))
}

/// A tiny `--flag value` cursor.
struct Cursor<'a> {
    args: &'a [String],
    index: usize,
}

impl<'a> Cursor<'a> {
    fn next_flag(&mut self) -> Option<&'a str> {
        let arg = self.args.get(self.index)?;
        self.index += 1;
        Some(arg.as_str())
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, ArgError> {
        let value = self
            .args
            .get(self.index)
            .ok_or_else(|| err(format!("{flag} expects a value")))?;
        self.index += 1;
        Ok(value.as_str())
    }
}

impl Command {
    /// Parses a full argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] with a human-readable message on any unknown
    /// subcommand, flag, or malformed value.
    pub fn parse(args: &[String]) -> Result<Command, ArgError> {
        let Some(sub) = args.first() else {
            return Ok(Command::Help);
        };
        let mut cursor = Cursor {
            args: &args[1..],
            index: 0,
        };
        match sub.as_str() {
            "help" | "--help" | "-h" => Ok(Command::Help),
            "run" => {
                let mut parsed = RunArgs {
                    topology: TopologyKind::Tree,
                    workload: Workload::Dct,
                    dram_pct: 100,
                    placement: NvmPlacement::Last,
                    arbiter: ArbiterKind::RoundRobin,
                    requests: 6_000,
                    write_burst: false,
                    seed: None,
                };
                while let Some(flag) = cursor.next_flag() {
                    match flag {
                        "--topology" => parsed.topology = parse_topology(cursor.value(flag)?)?,
                        "--workload" => parsed.workload = parse_workload(cursor.value(flag)?)?,
                        "--dram" => parsed.dram_pct = parse_u64(flag, cursor.value(flag)?)? as u32,
                        "--placement" => parsed.placement = parse_placement(cursor.value(flag)?)?,
                        "--arbiter" => parsed.arbiter = parse_arbiter(cursor.value(flag)?)?,
                        "--requests" => parsed.requests = parse_u64(flag, cursor.value(flag)?)?,
                        "--write-burst" => parsed.write_burst = true,
                        "--seed" => parsed.seed = Some(parse_u64(flag, cursor.value(flag)?)?),
                        other => return Err(err(format!("unknown flag '{other}' for run"))),
                    }
                }
                Ok(Command::Run(parsed))
            }
            "compare" => {
                let mut parsed = CompareArgs {
                    workload: Workload::Dct,
                    arbiter: ArbiterKind::RoundRobin,
                    requests: 6_000,
                };
                while let Some(flag) = cursor.next_flag() {
                    match flag {
                        "--workload" => parsed.workload = parse_workload(cursor.value(flag)?)?,
                        "--arbiter" => parsed.arbiter = parse_arbiter(cursor.value(flag)?)?,
                        "--requests" => parsed.requests = parse_u64(flag, cursor.value(flag)?)?,
                        other => return Err(err(format!("unknown flag '{other}' for compare"))),
                    }
                }
                Ok(Command::Compare(parsed))
            }
            "topo" => {
                let mut parsed = TopoArgs {
                    topology: TopologyKind::SkipList,
                    cubes: 16,
                    dram_pct: 100,
                    placement: NvmPlacement::Last,
                };
                let mut explicit_cubes = false;
                while let Some(flag) = cursor.next_flag() {
                    match flag {
                        "--topology" => parsed.topology = parse_topology(cursor.value(flag)?)?,
                        "--cubes" => {
                            parsed.cubes = parse_u64(flag, cursor.value(flag)?)? as u32;
                            explicit_cubes = true;
                        }
                        "--dram" => parsed.dram_pct = parse_u64(flag, cursor.value(flag)?)? as u32,
                        "--placement" => parsed.placement = parse_placement(cursor.value(flag)?)?,
                        other => return Err(err(format!("unknown flag '{other}' for topo"))),
                    }
                }
                if parsed.dram_pct != 100 && explicit_cubes {
                    return Err(err("--cubes applies to all-DRAM views; with --dram the cube count follows the mix"));
                }
                Ok(Command::Topo(parsed))
            }
            "sweep" => {
                let mut parsed = SweepArgs {
                    topology: TopologyKind::Tree,
                    workload: Workload::Dct,
                    requests: 6_000,
                };
                while let Some(flag) = cursor.next_flag() {
                    match flag {
                        "--topology" => parsed.topology = parse_topology(cursor.value(flag)?)?,
                        "--workload" => parsed.workload = parse_workload(cursor.value(flag)?)?,
                        "--requests" => parsed.requests = parse_u64(flag, cursor.value(flag)?)?,
                        other => return Err(err(format!("unknown flag '{other}' for sweep"))),
                    }
                }
                Ok(Command::Sweep(parsed))
            }
            "trace" => {
                let mut parsed = TraceArgs {
                    topology: TopologyKind::Tree,
                    workload: Workload::Dct,
                    dram_pct: 100,
                    placement: NvmPlacement::Last,
                    requests: 6_000,
                    seed: None,
                    out: None,
                };
                while let Some(flag) = cursor.next_flag() {
                    match flag {
                        "--topology" => parsed.topology = parse_topology(cursor.value(flag)?)?,
                        "--workload" => parsed.workload = parse_workload(cursor.value(flag)?)?,
                        "--dram" => parsed.dram_pct = parse_u64(flag, cursor.value(flag)?)? as u32,
                        "--placement" => parsed.placement = parse_placement(cursor.value(flag)?)?,
                        "--requests" => parsed.requests = parse_u64(flag, cursor.value(flag)?)?,
                        "--seed" => parsed.seed = Some(parse_u64(flag, cursor.value(flag)?)?),
                        "--out" => parsed.out = Some(cursor.value(flag)?.into()),
                        other => return Err(err(format!("unknown flag '{other}' for trace"))),
                    }
                }
                Ok(Command::Trace(parsed))
            }
            "closedloop" | "closed-loop" => {
                let mut parsed = ClosedLoopArgs {
                    topology: TopologyKind::Tree,
                    workload: Workload::Dct,
                    policy: WindowPolicyKind::Aimd,
                    window: None,
                    requests: 6_000,
                    seed: None,
                };
                while let Some(flag) = cursor.next_flag() {
                    match flag {
                        "--topology" => parsed.topology = parse_topology(cursor.value(flag)?)?,
                        "--workload" => parsed.workload = parse_workload(cursor.value(flag)?)?,
                        "--policy" => parsed.policy = parse_policy(cursor.value(flag)?)?,
                        "--window" => {
                            let window = parse_u64(flag, cursor.value(flag)?)?;
                            if window == 0 {
                                return Err(err("--window must admit at least one request"));
                            }
                            parsed.window = Some(window.min(u64::from(u32::MAX)) as u32);
                        }
                        "--requests" => parsed.requests = parse_u64(flag, cursor.value(flag)?)?,
                        "--seed" => parsed.seed = Some(parse_u64(flag, cursor.value(flag)?)?),
                        other => return Err(err(format!("unknown flag '{other}' for closedloop"))),
                    }
                }
                Ok(Command::ClosedLoop(parsed))
            }
            other => Err(err(format!(
                "unknown subcommand '{other}' (try 'mncube help')"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, ArgError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Command::parse(&owned)
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&["help"]), Ok(Command::Help));
        assert_eq!(parse(&["--help"]), Ok(Command::Help));
    }

    #[test]
    fn run_defaults() {
        let Command::Run(a) = parse(&["run"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(a.topology, TopologyKind::Tree);
        assert_eq!(a.workload, Workload::Dct);
        assert_eq!(a.dram_pct, 100);
        assert!(!a.write_burst);
    }

    #[test]
    fn run_full_flags() {
        let Command::Run(a) = parse(&[
            "run",
            "--topology",
            "skiplist",
            "--workload",
            "BACKPROP",
            "--dram",
            "50",
            "--placement",
            "first",
            "--arbiter",
            "adaptive",
            "--requests",
            "1234",
            "--write-burst",
            "--seed",
            "9",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(a.topology, TopologyKind::SkipList);
        assert_eq!(a.workload, Workload::Backprop);
        assert_eq!(a.dram_pct, 50);
        assert_eq!(a.placement, NvmPlacement::First);
        assert_eq!(a.arbiter, ArbiterKind::AdaptiveDistance);
        assert_eq!(a.requests, 1234);
        assert!(a.write_burst);
        assert_eq!(a.seed, Some(9));
    }

    #[test]
    fn topology_aliases() {
        for (s, k) in [
            ("c", TopologyKind::Chain),
            ("MC", TopologyKind::MetaCube),
            ("skip-list", TopologyKind::SkipList),
            ("mesh", TopologyKind::Mesh),
        ] {
            assert_eq!(parse_topology(s).unwrap(), k);
        }
    }

    #[test]
    fn arbiter_aliases() {
        assert_eq!(parse_arbiter("rr").unwrap(), ArbiterKind::RoundRobin);
        assert_eq!(parse_arbiter("oracle").unwrap(), ArbiterKind::OracleAge);
    }

    #[test]
    fn errors_are_informative() {
        let e = parse(&["run", "--topology", "torus"]).unwrap_err();
        assert!(e.to_string().contains("torus"));
        let e = parse(&["run", "--requests"]).unwrap_err();
        assert!(e.to_string().contains("expects a value"));
        let e = parse(&["fly"]).unwrap_err();
        assert!(e.to_string().contains("fly"));
        let e = parse(&["run", "--bogus", "1"]).unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn compare_and_sweep_parse() {
        assert!(matches!(
            parse(&["compare", "--workload", "nw"]),
            Ok(Command::Compare(_))
        ));
        assert!(matches!(
            parse(&["sweep", "--topology", "ring"]),
            Ok(Command::Sweep(_))
        ));
    }

    #[test]
    fn trace_parses_flags_and_defaults() {
        let Command::Trace(a) = parse(&["trace"]).unwrap() else {
            panic!("expected trace");
        };
        assert_eq!(a.topology, TopologyKind::Tree);
        assert_eq!(a.out, None);

        let Command::Trace(a) = parse(&[
            "trace",
            "--topology",
            "chain",
            "--workload",
            "kmeans",
            "--dram",
            "50",
            "--requests",
            "640",
            "--out",
            "/tmp/t.json",
        ])
        .unwrap() else {
            panic!("expected trace");
        };
        assert_eq!(a.topology, TopologyKind::Chain);
        assert_eq!(a.workload, Workload::Kmeans);
        assert_eq!(a.dram_pct, 50);
        assert_eq!(a.requests, 640);
        assert_eq!(a.out, Some(std::path::PathBuf::from("/tmp/t.json")));

        // The arbiter knob belongs to run/compare, not trace.
        assert!(parse(&["trace", "--arbiter", "rr"]).is_err());
    }

    #[test]
    fn closedloop_parses_flags_and_defaults() {
        let Command::ClosedLoop(a) = parse(&["closedloop"]).unwrap() else {
            panic!("expected closedloop");
        };
        assert_eq!(a.topology, TopologyKind::Tree);
        assert_eq!(a.policy, WindowPolicyKind::Aimd);
        assert_eq!(a.window, None);

        let Command::ClosedLoop(a) = parse(&[
            "closed-loop",
            "--topology",
            "ring",
            "--workload",
            "nw",
            "--policy",
            "fixed:8",
            "--window",
            "16",
            "--requests",
            "500",
            "--seed",
            "7",
        ])
        .unwrap() else {
            panic!("expected closedloop");
        };
        assert_eq!(a.topology, TopologyKind::Ring);
        assert_eq!(a.workload, Workload::Nw);
        assert_eq!(a.policy, WindowPolicyKind::Fixed(8));
        assert_eq!(a.window, Some(16));
        assert_eq!(a.requests, 500);
        assert_eq!(a.seed, Some(7));

        let e = parse(&["closedloop", "--policy", "tcp"]).unwrap_err();
        assert!(e.to_string().contains("tcp"));
        let e = parse(&["closedloop", "--window", "0"]).unwrap_err();
        assert!(e.to_string().contains("at least one"));
    }

    #[test]
    fn topo_cube_mix_conflict() {
        assert!(parse(&["topo", "--cubes", "8", "--dram", "50"]).is_err());
        assert!(parse(&["topo", "--cubes", "8"]).is_ok());
        assert!(parse(&["topo", "--dram", "50"]).is_ok());
    }
}
