//! Execution of parsed commands.

use std::fmt::Write as _;

use mn_core::{simulate, speedup_pct, RunResult, SystemConfig};
use mn_topo::{render_ascii, Placement, Topology, TopologyKind, TopologyMetrics};

use crate::args::{ArgError, Command, CompareArgs, RunArgs, SweepArgs, TopoArgs, USAGE};

fn build_config(
    topology: TopologyKind,
    dram_pct: u32,
    placement: mn_topo::NvmPlacement,
    requests: u64,
) -> Result<SystemConfig, ArgError> {
    let mut config = SystemConfig::paper_baseline(topology, f64::from(dram_pct) / 100.0)
        .map_err(|e| ArgError(e.to_string()))?
        .with_nvm_placement(placement);
    config.requests_per_port = requests;
    Ok(config)
}

fn report(result: &RunResult) -> String {
    let b = &result.breakdown;
    let (to, inm, from) = b.fractions();
    let mut out = String::new();
    let _ = writeln!(out, "configuration   {}", result.label);
    let _ = writeln!(out, "workload        {}", result.workload);
    let _ = writeln!(out, "wall time       {}", result.wall);
    let _ = writeln!(
        out,
        "requests        {} reads, {} writes",
        result.reads, result.writes
    );
    let _ = writeln!(
        out,
        "throughput      {:.1} requests/us",
        result.throughput_per_us()
    );
    let _ = writeln!(
        out,
        "latency         to {:.1} ns ({:.0}%) | in {:.1} ns ({:.0}%) | from {:.1} ns ({:.0}%)",
        b.to_memory.mean_ns(),
        to * 100.0,
        b.in_memory.mean_ns(),
        inm * 100.0,
        b.from_memory.mean_ns(),
        from * 100.0,
    );
    let _ = writeln!(
        out,
        "read latency    p50 {} | p95 {} | p99 {}",
        result.read_latency_quantile(0.50),
        result.read_latency_quantile(0.95),
        result.read_latency_quantile(0.99),
    );
    let _ = writeln!(out, "avg hops        {:.2}", result.avg_hops);
    let _ = writeln!(
        out,
        "row-buffer hits {:.0}%",
        result.row_hit_rate * 100.0
    );
    let e = &result.energy;
    let _ = writeln!(
        out,
        "energy          network {:.1} uJ | reads {:.1} uJ | writes {:.1} uJ | total {:.1} uJ",
        e.network.as_uj(),
        e.read.as_uj(),
        e.write.as_uj(),
        e.total().as_uj(),
    );
    out
}

fn run(args: &RunArgs) -> Result<String, ArgError> {
    let mut config = build_config(args.topology, args.dram_pct, args.placement, args.requests)?;
    config.noc.arbiter = args.arbiter;
    config.write_burst_routing = args.write_burst;
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    let result = simulate(&config, args.workload);
    Ok(report(&result))
}

fn compare(args: &CompareArgs) -> Result<String, ArgError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} under every topology (all-DRAM, {:?} arbitration):\n",
        args.workload.label(),
        args.arbiter
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>10} {:>12}",
        "topology", "wall", "vs chain", "energy (uJ)"
    );
    let mut chain_wall = None;
    for topology in TopologyKind::ALL_EXTENDED {
        let mut config = build_config(topology, 100, mn_topo::NvmPlacement::Last, args.requests)?;
        config.noc.arbiter = args.arbiter;
        let result = simulate(&config, args.workload);
        let base = *chain_wall.get_or_insert(result.wall);
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>+9.1}% {:>12.1}",
            topology.to_string(),
            format!("{}", result.wall),
            speedup_pct(base, result.wall),
            result.energy.total().as_uj(),
        );
    }
    Ok(out)
}

fn topo(args: &TopoArgs) -> Result<String, ArgError> {
    let placement = if args.dram_pct == 100 {
        Placement::homogeneous(args.cubes as usize, mn_topo::CubeTech::Dram)
    } else {
        Placement::mixed_by_capacity(f64::from(args.dram_pct) / 100.0, args.placement)
            .map_err(|e| ArgError(e.to_string()))?
    };
    let topology =
        Topology::build(args.topology, &placement).map_err(|e| ArgError(e.to_string()))?;
    let metrics = TopologyMetrics::compute(&topology);
    let mut out = render_ascii(&topology);
    let _ = writeln!(
        out,
        "\navg read hops {:.2} | max read {} | max write {} | {} links ({} unused by reads)",
        metrics.avg_read_hops,
        metrics.max_read_hops,
        metrics.max_write_hops,
        metrics.total_links,
        metrics.read_unused_links,
    );
    Ok(out)
}

fn sweep(args: &SweepArgs) -> Result<String, ArgError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "DRAM:NVM ratio sweep, {} on {}:\n",
        args.workload.label(),
        args.topology
    );
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>12} {:>10} {:>12}",
        "mix", "cubes", "wall", "vs 100%", "energy (uJ)"
    );
    let mut base = None;
    for dram_pct in [100u32, 75, 50, 25, 0] {
        let config = build_config(
            args.topology,
            dram_pct,
            mn_topo::NvmPlacement::Last,
            args.requests,
        )?;
        let cubes = config
            .placement()
            .map_err(|e| ArgError(e.to_string()))?
            .cube_count();
        let result = simulate(&config, args.workload);
        let base_wall = *base.get_or_insert(result.wall);
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>12} {:>+9.1}% {:>12.1}",
            result.label,
            cubes,
            format!("{}", result.wall),
            speedup_pct(base_wall, result.wall),
            result.energy.total().as_uj(),
        );
    }
    Ok(out)
}

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns [`ArgError`] when the configuration cannot be built (e.g. an
/// unrealizable DRAM percentage).
pub fn execute(command: &Command) -> Result<String, ArgError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Run(args) => run(args),
        Command::Compare(args) => compare(args),
        Command::Topo(args) => topo(args),
        Command::Sweep(args) => sweep(args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunArgs;
    use mn_noc::ArbiterKind;
    use mn_topo::NvmPlacement;
    use mn_workloads::Workload;

    #[test]
    fn help_prints_usage() {
        let text = execute(&Command::Help).unwrap();
        assert!(text.contains("mncube run"));
        assert!(text.contains("skiplist"));
    }

    #[test]
    fn run_produces_report() {
        let text = execute(&Command::Run(RunArgs {
            topology: TopologyKind::Chain,
            workload: Workload::Nw,
            dram_pct: 100,
            placement: NvmPlacement::Last,
            arbiter: ArbiterKind::RoundRobin,
            requests: 300,
            write_burst: false,
            seed: Some(1),
        }))
        .unwrap();
        assert!(text.contains("configuration   100%-C"));
        assert!(text.contains("workload        NW"));
        assert!(text.contains("row-buffer hits"));
    }

    #[test]
    fn bad_mix_is_an_error_not_a_panic() {
        let result = execute(&Command::Run(RunArgs {
            topology: TopologyKind::Chain,
            workload: Workload::Nw,
            dram_pct: 90, // 90% does not divide into whole cubes
            placement: NvmPlacement::Last,
            arbiter: ArbiterKind::RoundRobin,
            requests: 100,
            write_burst: false,
            seed: None,
        }));
        assert!(result.is_err());
    }

    #[test]
    fn topo_renders() {
        let text = execute(&Command::Topo(crate::args::TopoArgs {
            topology: TopologyKind::SkipList,
            cubes: 16,
            dram_pct: 100,
            placement: NvmPlacement::Last,
        }))
        .unwrap();
        assert!(text.contains("HOST"));
        assert!(text.contains("max write 16"));
    }
}
