//! Execution of parsed commands.
//!
//! Every simulation a command needs goes through the `mn-campaign` engine,
//! so CLI runs parallelize across `MN_JOBS` workers and share the on-disk
//! result cache with the figure binaries.

use std::fmt::Write as _;

use mn_campaign::{Campaign, CampaignPoint};
use mn_core::{speedup_pct, RunResult, SystemConfig};
use mn_topo::{render_ascii, Placement, Topology, TopologyKind, TopologyMetrics};
use mn_workloads::Workload;

use crate::args::{
    ArgError, ClosedLoopArgs, Command, CompareArgs, RunArgs, SweepArgs, TopoArgs, TraceArgs, USAGE,
};

fn build_config(
    topology: TopologyKind,
    dram_pct: u32,
    placement: mn_topo::NvmPlacement,
    requests: u64,
) -> Result<SystemConfig, ArgError> {
    let mut config = SystemConfig::paper_baseline(topology, f64::from(dram_pct) / 100.0)
        .map_err(|e| ArgError(e.to_string()))?
        .with_nvm_placement(placement);
    config.requests_per_port = requests;
    // MN_TRACE fills the telemetry columns of `--format`-style consumers
    // downstream; note cached points come back without telemetry, so
    // combine with MN_CACHE=off for fresh instrumented runs.
    if let Some(mode) = mn_campaign::trace_from_env() {
        config.noc.trace = mode;
    }
    // The closed-loop host knobs, like the figure binaries honor. A
    // non-open policy joins the fingerprint, so cached open-loop results
    // are never served for these runs.
    if let Some(policy) = mn_campaign::host_policy_from_env() {
        config.host.policy = policy;
        if policy == mn_core::WindowPolicyKind::Ecn && config.noc.ecn_threshold == 0 {
            config.noc.ecn_threshold = 6;
        }
    }
    if let Some(window) = mn_campaign::host_window_from_env() {
        config.host.initial_window = window;
        config.host.window_cap = config.host.window_cap.max(window);
    }
    Ok(config)
}

fn run_grid(campaign: &Campaign, configs: Vec<SystemConfig>, workload: Workload) -> Vec<RunResult> {
    let points = configs
        .into_iter()
        .map(|config| CampaignPoint::new(config, workload))
        .collect();
    campaign.run(points).into_results()
}

fn report(result: &RunResult) -> String {
    let b = &result.breakdown;
    let (to, inm, from) = b.fractions();
    let mut out = String::new();
    let _ = writeln!(out, "configuration   {}", result.label);
    let _ = writeln!(out, "workload        {}", result.workload);
    let _ = writeln!(out, "wall time       {}", result.wall);
    let _ = writeln!(
        out,
        "requests        {} reads, {} writes",
        result.reads, result.writes
    );
    let _ = writeln!(
        out,
        "throughput      {:.1} requests/us",
        result.throughput_per_us()
    );
    let _ = writeln!(
        out,
        "latency         to {:.1} ns ({:.0}%) | in {:.1} ns ({:.0}%) | from {:.1} ns ({:.0}%)",
        b.to_memory.mean_ns(),
        to * 100.0,
        b.in_memory.mean_ns(),
        inm * 100.0,
        b.from_memory.mean_ns(),
        from * 100.0,
    );
    let _ = writeln!(
        out,
        "read latency    p50 {} | p95 {} | p99 {}",
        result.read_latency_quantile(0.50),
        result.read_latency_quantile(0.95),
        result.read_latency_quantile(0.99),
    );
    let _ = writeln!(out, "avg hops        {:.2}", result.avg_hops);
    let _ = writeln!(out, "row-buffer hits {:.0}%", result.row_hit_rate * 100.0);
    let e = &result.energy;
    let _ = writeln!(
        out,
        "energy          network {:.1} uJ | reads {:.1} uJ | writes {:.1} uJ | total {:.1} uJ",
        e.network.as_uj(),
        e.read.as_uj(),
        e.write.as_uj(),
        e.total().as_uj(),
    );
    out
}

fn run(campaign: &Campaign, args: &RunArgs) -> Result<String, ArgError> {
    let mut config = build_config(args.topology, args.dram_pct, args.placement, args.requests)?;
    config.noc.arbiter = args.arbiter;
    config.write_burst_routing = args.write_burst;
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    let results = run_grid(campaign, vec![config], args.workload);
    Ok(report(&results[0]))
}

fn compare(campaign: &Campaign, args: &CompareArgs) -> Result<String, ArgError> {
    let mut configs = Vec::new();
    for topology in TopologyKind::ALL_EXTENDED {
        let mut config = build_config(topology, 100, mn_topo::NvmPlacement::Last, args.requests)?;
        config.noc.arbiter = args.arbiter;
        configs.push(config);
    }
    let results = run_grid(campaign, configs, args.workload);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} under every topology (all-DRAM, {:?} arbitration):\n",
        args.workload.label(),
        args.arbiter
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>10} {:>12}",
        "topology", "wall", "vs chain", "energy (uJ)"
    );
    let base = results[0].wall; // ALL_EXTENDED starts with the chain
    for (topology, result) in TopologyKind::ALL_EXTENDED.into_iter().zip(&results) {
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>+9.1}% {:>12.1}",
            topology.to_string(),
            format!("{}", result.wall),
            speedup_pct(base, result.wall),
            result.energy.total().as_uj(),
        );
    }
    Ok(out)
}

fn topo(args: &TopoArgs) -> Result<String, ArgError> {
    let placement = if args.dram_pct == 100 {
        Placement::homogeneous(args.cubes as usize, mn_topo::CubeTech::Dram)
    } else {
        Placement::mixed_by_capacity(f64::from(args.dram_pct) / 100.0, args.placement)
            .map_err(|e| ArgError(e.to_string()))?
    };
    let topology =
        Topology::build(args.topology, &placement).map_err(|e| ArgError(e.to_string()))?;
    let metrics = TopologyMetrics::compute(&topology);
    let mut out = render_ascii(&topology);
    let _ = writeln!(
        out,
        "\navg read hops {:.2} | max read {} | max write {} | {} links ({} unused by reads)",
        metrics.avg_read_hops,
        metrics.max_read_hops,
        metrics.max_write_hops,
        metrics.total_links,
        metrics.read_unused_links,
    );
    Ok(out)
}

fn sweep(campaign: &Campaign, args: &SweepArgs) -> Result<String, ArgError> {
    let mut configs = Vec::new();
    let mut cube_counts = Vec::new();
    for dram_pct in [100u32, 75, 50, 25, 0] {
        let config = build_config(
            args.topology,
            dram_pct,
            mn_topo::NvmPlacement::Last,
            args.requests,
        )?;
        cube_counts.push(
            config
                .placement()
                .map_err(|e| ArgError(e.to_string()))?
                .cube_count(),
        );
        configs.push(config);
    }
    let results = run_grid(campaign, configs, args.workload);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "DRAM:NVM ratio sweep, {} on {}:\n",
        args.workload.label(),
        args.topology
    );
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>12} {:>10} {:>12}",
        "mix", "cubes", "wall", "vs 100%", "energy (uJ)"
    );
    let base_wall = results[0].wall;
    for (result, cubes) in results.iter().zip(cube_counts) {
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>12} {:>+9.1}% {:>12.1}",
            result.label,
            cubes,
            format!("{}", result.wall),
            speedup_pct(base_wall, result.wall),
            result.energy.total().as_uj(),
        );
    }
    Ok(out)
}

fn trace(args: &TraceArgs) -> Result<String, ArgError> {
    let mut config = build_config(args.topology, args.dram_pct, args.placement, args.requests)?;
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    config.noc.trace = mn_core::TraceConfig::Full;

    // Tracing bypasses the campaign engine on purpose: a cache hit
    // returns the simulated result without the telemetry rollup, and a
    // trace run exists precisely for that rollup. One port is simulated
    // directly (ports are independent; port 0 is representative).
    let mut observation = mn_core::try_simulate_port(&config, args.workload, 0)
        .map_err(|e| ArgError(e.to_string()))?;
    let telemetry = observation
        .take_telemetry()
        .ok_or_else(|| ArgError("tracing produced no telemetry".into()))?;

    let path = args.out.clone().unwrap_or_else(|| {
        let dir = mn_campaign::trace_dir_from_env().unwrap_or_default();
        dir.join("trace.json")
    });
    let mut file = std::fs::File::create(&path)
        .map_err(|e| ArgError(format!("cannot create {}: {e}", path.display())))?;
    mn_telemetry::write_chrome_trace(
        &mut file,
        &[
            mn_telemetry::TraceProcess {
                pid: 1,
                name: "network",
                tracer: &telemetry.net.tracer,
            },
            mn_telemetry::TraceProcess {
                pid: 2,
                name: "memory controllers",
                tracer: &telemetry.ctrl_tracer,
            },
        ],
    )
    .map_err(|e| ArgError(format!("cannot write {}: {e}", path.display())))?;

    let mut out = telemetry.summary.report();
    let events = telemetry.net.tracer.len() + telemetry.ctrl_tracer.len();
    let dropped = telemetry.net.tracer.dropped() + telemetry.ctrl_tracer.dropped();
    let _ = writeln!(
        out,
        "trace           {} events ({} dropped) -> {}",
        events,
        dropped,
        path.display()
    );
    Ok(out)
}

fn closedloop(args: &ClosedLoopArgs) -> Result<String, ArgError> {
    let mut config = build_config(
        args.topology,
        100,
        mn_topo::NvmPlacement::Last,
        args.requests,
    )?;
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    config.host.policy = args.policy;
    if let Some(window) = args.window {
        config.host.initial_window = window;
        config.host.window_cap = config.host.window_cap.max(window);
    }
    // ECN windows need links that mark; match the closed_loop_sweep
    // binary's threshold when the config leaves marking off.
    if args.policy == mn_core::WindowPolicyKind::Ecn && config.noc.ecn_threshold == 0 {
        config.noc.ecn_threshold = 6;
    }
    if !config.noc.trace.enabled() {
        config.noc.trace = mn_core::TraceConfig::Counters;
    }

    // Like `trace`, this bypasses the campaign engine: the closed-loop
    // rollup (window series, RTT, marked fraction) rides on telemetry,
    // which cache hits drop.
    let result =
        mn_core::try_simulate(&config, args.workload).map_err(|e| ArgError(e.to_string()))?;
    let mut out = report(&result);
    let _ = writeln!(out, "window policy   {}", args.policy);
    if let Some(telemetry) = &result.telemetry {
        out.push_str(&telemetry.report());
    }
    Ok(out)
}

/// Executes a parsed command against an explicit campaign engine,
/// returning the text to print.
///
/// # Errors
///
/// Returns [`ArgError`] when the configuration cannot be built (e.g. an
/// unrealizable DRAM percentage).
pub fn execute_with(campaign: &Campaign, command: &Command) -> Result<String, ArgError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Run(args) => run(campaign, args),
        Command::Compare(args) => compare(campaign, args),
        Command::Topo(args) => topo(args),
        Command::Sweep(args) => sweep(campaign, args),
        Command::Trace(args) => trace(args),
        Command::ClosedLoop(args) => closedloop(args),
    }
}

/// Executes a parsed command with the environment-configured engine
/// (`MN_JOBS` workers, shared `results/cache/`).
///
/// # Errors
///
/// Returns [`ArgError`] when the configuration cannot be built.
pub fn execute(command: &Command) -> Result<String, ArgError> {
    execute_with(&Campaign::from_env(), command)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunArgs;
    use mn_noc::ArbiterKind;
    use mn_topo::NvmPlacement;
    use mn_workloads::Workload;

    fn bare() -> Campaign {
        Campaign::new(2).quiet()
    }

    #[test]
    fn help_prints_usage() {
        let text = execute_with(&bare(), &Command::Help).unwrap();
        assert!(text.contains("mncube run"));
        assert!(text.contains("skiplist"));
    }

    #[test]
    fn run_produces_report() {
        let text = execute_with(
            &bare(),
            &Command::Run(RunArgs {
                topology: TopologyKind::Chain,
                workload: Workload::Nw,
                dram_pct: 100,
                placement: NvmPlacement::Last,
                arbiter: ArbiterKind::RoundRobin,
                requests: 300,
                write_burst: false,
                seed: Some(1),
            }),
        )
        .unwrap();
        assert!(text.contains("configuration   100%-C"));
        assert!(text.contains("workload        NW"));
        assert!(text.contains("row-buffer hits"));
    }

    #[test]
    fn bad_mix_is_an_error_not_a_panic() {
        let result = execute_with(
            &bare(),
            &Command::Run(RunArgs {
                topology: TopologyKind::Chain,
                workload: Workload::Nw,
                dram_pct: 90, // 90% does not divide into whole cubes
                placement: NvmPlacement::Last,
                arbiter: ArbiterKind::RoundRobin,
                requests: 100,
                write_burst: false,
                seed: None,
            }),
        );
        assert!(result.is_err());
    }

    #[test]
    fn compare_runs_as_one_campaign() {
        let text = execute_with(
            &bare(),
            &Command::Compare(crate::args::CompareArgs {
                workload: Workload::Nw,
                arbiter: ArbiterKind::RoundRobin,
                requests: 150,
            }),
        )
        .unwrap();
        assert!(text.contains("chain"));
        assert!(text.contains("vs chain"));
    }

    #[test]
    fn trace_writes_perfetto_json_and_reports() {
        let path =
            std::env::temp_dir().join(format!("mncube-trace-test-{}.json", std::process::id()));
        let text = execute_with(
            &bare(),
            &Command::Trace(crate::args::TraceArgs {
                topology: TopologyKind::Chain,
                workload: Workload::Kmeans,
                dram_pct: 100,
                placement: NvmPlacement::Last,
                requests: 200,
                seed: Some(1),
                out: Some(path.clone()),
            }),
        )
        .unwrap();
        assert!(text.contains("latency decomposition"));
        assert!(text.contains("request network"));
        assert!(text.contains("fairness"));
        assert!(text.contains("trace           "));

        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"network\""));
        assert!(json.contains("\"name\":\"memory controllers\""));
        assert!(json.contains("\"BankAccess\""));
    }

    #[test]
    fn closedloop_reports_the_window_rollup() {
        let text = execute_with(
            &bare(),
            &Command::ClosedLoop(crate::args::ClosedLoopArgs {
                topology: TopologyKind::Chain,
                workload: Workload::Nw,
                policy: mn_core::WindowPolicyKind::Ecn,
                window: Some(4),
                requests: 300,
                seed: Some(1),
            }),
        )
        .unwrap();
        assert!(text.contains("configuration   100%-C"));
        assert!(text.contains("window policy   ecn"));
        assert!(text.contains("closed loop"));
        assert!(text.contains("window steady"));
    }

    #[test]
    fn topo_renders() {
        let text = execute_with(
            &bare(),
            &Command::Topo(crate::args::TopoArgs {
                topology: TopologyKind::SkipList,
                cubes: 16,
                dram_pct: 100,
                placement: NvmPlacement::Last,
            }),
        )
        .unwrap();
        assert!(text.contains("HOST"));
        assert!(text.contains("max write 16"));
    }
}
