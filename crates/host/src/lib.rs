//! # mn-host — closed-loop host models for the memory-network simulator
//!
//! Every generator in the workspace is open-loop by default: ports push
//! their trace into the NoC at the workload's offered rate regardless of
//! what the network is doing, so "heavy traffic" degenerates into
//! unbounded host queues instead of the saturation curves a real APU port
//! (finite MSHRs, stalls feeding back into issue) would show. This crate
//! adds the feedback path: an **outstanding-request window** that gates
//! injection in the port simulator, with a pluggable policy deciding how
//! the window reacts to completions.
//!
//! Three policies (plus the pass-through default):
//!
//! - [`WindowPolicyKind::Open`] — no gate; the open-loop behavior every
//!   committed golden was produced with. The default.
//! - [`WindowPolicyKind::Fixed`] — a hard cap of `n` outstanding
//!   requests, MSHR-style.
//! - [`WindowPolicyKind::Aimd`] — additive increase while completed RTTs
//!   stay at or below the target, multiplicative decrease (halving, at
//!   most once per window of completions) when they exceed it.
//! - [`WindowPolicyKind::Ecn`] — links mark packets whose departure
//!   buffer is congested (`NocConfig::ecn_threshold` in `mn-noc`); the
//!   host halves the window on marked responses and opens additively on
//!   unmarked ones.
//!
//! Dispatch mirrors the NoC's arbiters: [`WindowPolicyKind::instantiate`]
//! produces a closed [`WindowPolicyImpl`] enum with inherent `#[inline]`
//! methods — no virtual calls on the per-response path.
//!
//! Determinism: the policies are pure integer state machines (windows are
//! fixed-point `u64`s, no floats) driven only by the completion stream,
//! which is itself deterministic, so closed-loop runs are bit-identical
//! at any worker count. Host parameters join a run's result fingerprint
//! **only when [`HostConfig::enabled`] holds** — the open-loop default
//! leaves every committed fingerprint and cache byte untouched, exactly
//! the discipline the fault model established.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use mn_sim::SimDuration;

/// Fixed-point scale for adaptive windows: 1 window slot = `FP` units.
/// Additive increase grows the window by ~1 slot per window of
/// completions (`FP * FP / window_fp` per completion), entirely in
/// integer arithmetic so the trajectory is bit-reproducible.
const FP: u64 = 256;

/// Which congestion-control policy drives the outstanding-request window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowPolicyKind {
    /// Open loop: no injection gate (the default; preserves the
    /// open-loop goldens byte for byte).
    Open,
    /// A fixed window of `n` outstanding requests (MSHR-like).
    Fixed(u32),
    /// Additive-increase / multiplicative-decrease on completed RTT
    /// versus [`HostConfig::target_rtt`].
    Aimd,
    /// Halve on ECN-marked responses, open additively otherwise.
    Ecn,
}

impl WindowPolicyKind {
    /// Short label for tables and fingerprints.
    pub fn label(&self) -> String {
        match self {
            WindowPolicyKind::Open => "open".to_string(),
            WindowPolicyKind::Fixed(n) => format!("fixed:{n}"),
            WindowPolicyKind::Aimd => "aimd".to_string(),
            WindowPolicyKind::Ecn => "ecn".to_string(),
        }
    }

    /// Builds the policy's runtime state for `config`.
    pub fn instantiate(&self, config: &HostConfig) -> WindowPolicyImpl {
        let cap_fp = u64::from(config.window_cap.max(1)) * FP;
        let init_fp = (u64::from(config.initial_window.max(1)) * FP).min(cap_fp);
        match self {
            WindowPolicyKind::Open => WindowPolicyImpl::Open,
            WindowPolicyKind::Fixed(n) => WindowPolicyImpl::Fixed {
                window: (*n).clamp(1, config.window_cap.max(1)),
            },
            WindowPolicyKind::Aimd => WindowPolicyImpl::Aimd(AdaptiveState {
                window_fp: init_fp,
                cap_fp,
                target_ps: config.target_rtt.as_ps(),
                since_decrease: 0,
            }),
            WindowPolicyKind::Ecn => WindowPolicyImpl::Ecn(AdaptiveState {
                window_fp: init_fp,
                cap_fp,
                target_ps: 0,
                since_decrease: 0,
            }),
        }
    }
}

impl fmt::Display for WindowPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Error parsing a [`WindowPolicyKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWindowPolicyError(String);

impl fmt::Display for ParseWindowPolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown window policy {:?} (expected open | fixed:<n> | aimd | ecn)",
            self.0
        )
    }
}

impl Error for ParseWindowPolicyError {}

impl FromStr for WindowPolicyKind {
    type Err = ParseWindowPolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        if let Some(n) = lower.strip_prefix("fixed:") {
            return match n.parse::<u32>() {
                Ok(n) if n >= 1 => Ok(WindowPolicyKind::Fixed(n)),
                _ => Err(ParseWindowPolicyError(s.to_string())),
            };
        }
        match lower.as_str() {
            "open" | "off" => Ok(WindowPolicyKind::Open),
            "aimd" => Ok(WindowPolicyKind::Aimd),
            "ecn" => Ok(WindowPolicyKind::Ecn),
            _ => Err(ParseWindowPolicyError(s.to_string())),
        }
    }
}

/// Host-model tunables. The default ([`HostConfig::open`]) disables the
/// closed loop entirely: the port simulator then skips every gate and
/// its behavior — and its result fingerprint — is bit-identical to a
/// build without this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct HostConfig {
    /// The window policy ([`WindowPolicyKind::Open`] = no gate).
    pub policy: WindowPolicyKind,
    /// Hard upper bound on any policy's window, in requests.
    pub window_cap: u32,
    /// Starting window for the adaptive policies (clamped to the cap).
    pub initial_window: u32,
    /// AIMD's RTT setpoint: completions at or below it grow the window,
    /// above it shrink it.
    pub target_rtt: SimDuration,
}

impl HostConfig {
    /// The open-loop configuration: no gate, adaptive defaults left in
    /// place for when a policy is selected.
    pub fn open() -> HostConfig {
        HostConfig {
            policy: WindowPolicyKind::Open,
            window_cap: 64,
            initial_window: 8,
            target_rtt: SimDuration::from_ns(600),
        }
    }

    /// True when the closed loop actually gates injection. The port
    /// simulator only instantiates a policy (and only extends the result
    /// fingerprint) when this holds.
    pub fn enabled(&self) -> bool {
        self.policy != WindowPolicyKind::Open
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the cap or initial window is zero, the initial window
    /// exceeds the cap, or a fixed window is zero.
    pub fn validate(&self) {
        assert!(self.window_cap >= 1, "window_cap must be at least 1");
        assert!(
            (1..=self.window_cap).contains(&self.initial_window),
            "initial_window must be in [1, window_cap], got {} (cap {})",
            self.initial_window,
            self.window_cap
        );
        if let WindowPolicyKind::Fixed(n) = self.policy {
            assert!(n >= 1, "fixed window must be at least 1");
        }
        if self.policy == WindowPolicyKind::Aimd {
            assert!(
                self.target_rtt > SimDuration::ZERO,
                "aimd needs a positive target_rtt"
            );
        }
    }
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig::open()
    }
}

/// Shared state of the two adaptive policies: a fixed-point window, its
/// cap, the (AIMD-only) RTT setpoint, and a completion counter enforcing
/// at most one multiplicative decrease per window of completions — the
/// standard "once per RTT" rule that keeps a burst of bad feedback from
/// collapsing the window to 1 instantly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveState {
    window_fp: u64,
    cap_fp: u64,
    target_ps: u64,
    since_decrease: u64,
}

impl AdaptiveState {
    #[inline]
    fn window(&self) -> u32 {
        (self.window_fp / FP).max(1) as u32
    }

    #[inline]
    fn grow(&mut self) {
        self.window_fp = (self.window_fp + FP * FP / self.window_fp).min(self.cap_fp);
    }

    /// Halves the window if a full window of completions has passed
    /// since the last decrease; returns whether it fired.
    #[inline]
    fn try_halve(&mut self) -> bool {
        if self.since_decrease >= u64::from(self.window()) {
            self.window_fp = (self.window_fp / 2).max(FP);
            self.since_decrease = 0;
            true
        } else {
            false
        }
    }
}

/// The instantiated window policy: a closed enum with inherent inlined
/// methods, mirroring the NoC's `ArbiterImpl` (no `dyn` on the
/// per-response path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowPolicyImpl {
    /// No gate.
    Open,
    /// Hard cap.
    Fixed {
        /// The window, in outstanding requests.
        window: u32,
    },
    /// AIMD on completed RTT.
    Aimd(AdaptiveState),
    /// Halve on ECN marks.
    Ecn(AdaptiveState),
}

impl WindowPolicyImpl {
    /// The current injection window in outstanding requests
    /// (`u32::MAX` for the open loop — never a binding constraint).
    #[inline]
    pub fn window(&self) -> u32 {
        match self {
            WindowPolicyImpl::Open => u32::MAX,
            WindowPolicyImpl::Fixed { window } => *window,
            WindowPolicyImpl::Aimd(s) | WindowPolicyImpl::Ecn(s) => s.window(),
        }
    }

    /// Feeds one completed request into the policy: its measured
    /// round-trip time and whether its response carried an ECN mark.
    #[inline]
    pub fn on_response(&mut self, rtt: SimDuration, marked: bool) {
        match self {
            WindowPolicyImpl::Open | WindowPolicyImpl::Fixed { .. } => {}
            WindowPolicyImpl::Aimd(s) => {
                s.since_decrease += 1;
                if rtt.as_ps() > s.target_ps {
                    if !s.try_halve() {
                        // Holdoff window not yet elapsed: absorb the
                        // signal without growing.
                    }
                } else {
                    s.grow();
                }
            }
            WindowPolicyImpl::Ecn(s) => {
                s.since_decrease += 1;
                if marked {
                    let _ = s.try_halve();
                } else {
                    s.grow();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_sim::SimRng;

    fn cfg(policy: WindowPolicyKind) -> HostConfig {
        HostConfig {
            policy,
            ..HostConfig::open()
        }
    }

    #[test]
    fn open_never_binds() {
        let mut p = WindowPolicyKind::Open.instantiate(&cfg(WindowPolicyKind::Open));
        assert_eq!(p.window(), u32::MAX);
        p.on_response(SimDuration::from_ns(10_000), true);
        assert_eq!(p.window(), u32::MAX);
    }

    #[test]
    fn fixed_is_fixed() {
        let mut p = WindowPolicyKind::Fixed(7).instantiate(&cfg(WindowPolicyKind::Fixed(7)));
        assert_eq!(p.window(), 7);
        for _ in 0..100 {
            p.on_response(SimDuration::from_ns(10_000), true);
        }
        assert_eq!(p.window(), 7);
    }

    #[test]
    fn fixed_clamps_to_cap() {
        let c = HostConfig {
            policy: WindowPolicyKind::Fixed(500),
            window_cap: 32,
            ..HostConfig::open()
        };
        assert_eq!(c.policy.instantiate(&c).window(), 32);
    }

    #[test]
    fn aimd_grows_on_fast_rtt_and_halves_on_slow() {
        let c = cfg(WindowPolicyKind::Aimd);
        let mut p = c.policy.instantiate(&c);
        let start = p.window();
        // A long run of on-target completions opens the window to cap.
        for _ in 0..10_000 {
            p.on_response(SimDuration::from_ns(100), false);
        }
        assert!(p.window() > start);
        assert_eq!(p.window(), c.window_cap);
        // Sustained over-target RTTs halve it (at most once per window
        // of completions), eventually down to the floor of 1.
        for _ in 0..10_000 {
            p.on_response(SimDuration::from_ns(5_000), false);
        }
        assert_eq!(p.window(), 1);
    }

    #[test]
    fn aimd_decrease_holds_off_one_window() {
        let c = cfg(WindowPolicyKind::Aimd);
        let mut p = c.policy.instantiate(&c);
        let w0 = p.window() as u64;
        // Fewer than a window of bad completions: no decrease yet.
        for _ in 0..w0 - 1 {
            p.on_response(SimDuration::from_ns(5_000), false);
        }
        assert_eq!(p.window() as u64, w0);
        p.on_response(SimDuration::from_ns(5_000), false);
        assert!(u64::from(p.window()) < w0);
    }

    #[test]
    fn ecn_halves_on_marks_and_grows_otherwise() {
        let c = cfg(WindowPolicyKind::Ecn);
        let mut p = c.policy.instantiate(&c);
        let start = p.window();
        for _ in 0..10_000 {
            p.on_response(SimDuration::from_ns(100), false);
        }
        assert_eq!(p.window(), c.window_cap);
        for _ in 0..10_000 {
            p.on_response(SimDuration::from_ns(100), true);
        }
        assert_eq!(p.window(), 1);
        // Recovery: unmarked responses reopen it past the start.
        for _ in 0..10_000 {
            p.on_response(SimDuration::from_ns(100), false);
        }
        assert!(p.window() >= start);
    }

    /// Property (seed-looped, like the rest of the workspace): under any
    /// random feedback stream — RTTs scattered around the target, marks
    /// at any rate — adaptive windows stay within `[1, cap]`.
    #[test]
    fn adaptive_windows_stay_in_bounds_under_random_feedback() {
        for seed in 0..32u64 {
            let mut rng = SimRng::seed_from(0xD0C5_0000 ^ seed);
            for kind in [WindowPolicyKind::Aimd, WindowPolicyKind::Ecn] {
                let c = HostConfig {
                    policy: kind,
                    window_cap: 1 + (seed as u32 % 63),
                    initial_window: 1,
                    ..HostConfig::open()
                };
                c.validate();
                let mut p = kind.instantiate(&c);
                for _ in 0..4_000 {
                    let rtt = SimDuration::from_ps(rng.below(2_000_000));
                    let marked = rng.chance(0.3);
                    p.on_response(rtt, marked);
                    let w = p.window();
                    assert!(
                        (1..=c.window_cap).contains(&w),
                        "{kind:?} window {w} out of [1, {}] (seed {seed})",
                        c.window_cap
                    );
                }
            }
        }
    }

    #[test]
    fn policies_parse_and_round_trip() {
        for (s, want) in [
            ("open", WindowPolicyKind::Open),
            ("OFF", WindowPolicyKind::Open),
            ("fixed:12", WindowPolicyKind::Fixed(12)),
            (" Aimd ", WindowPolicyKind::Aimd),
            ("ecn", WindowPolicyKind::Ecn),
        ] {
            assert_eq!(s.parse::<WindowPolicyKind>().unwrap(), want);
        }
        for s in ["", "fixed", "fixed:0", "fixed:x", "reno"] {
            assert!(s.parse::<WindowPolicyKind>().is_err(), "{s:?} parsed");
        }
        // Display round-trips through FromStr.
        for kind in [
            WindowPolicyKind::Open,
            WindowPolicyKind::Fixed(3),
            WindowPolicyKind::Aimd,
            WindowPolicyKind::Ecn,
        ] {
            assert_eq!(kind.label().parse::<WindowPolicyKind>().unwrap(), kind);
        }
    }

    #[test]
    fn default_is_disabled_and_valid() {
        let c = HostConfig::default();
        assert!(!c.enabled());
        c.validate();
        assert!(cfg(WindowPolicyKind::Ecn).enabled());
    }

    #[test]
    #[should_panic(expected = "initial_window")]
    fn initial_window_above_cap_rejected() {
        HostConfig {
            initial_window: 100,
            window_cap: 10,
            ..HostConfig::open()
        }
        .validate();
    }
}
