//! Carrier crate for the workspace's runnable examples (in `/examples`)
//! and cross-crate integration tests (in `/tests`). It re-exports the
//! public crates so example code can be read top-to-bottom without a
//! dependency scavenger hunt.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mn_core as core;
pub use mn_mem as mem;
pub use mn_noc as noc;
pub use mn_sim as sim;
pub use mn_topo as topo;
pub use mn_workloads as workloads;
