//! # mn-workloads — synthetic workload proxies
//!
//! The paper evaluates its memory networks with AMD SDK and Rodinia GPGPU
//! kernels running on a simulated 32-CU APU. That substrate is not
//! available here, but the memory network only ever observes the *memory
//! request stream* that survives the cache hierarchy — and the paper
//! characterizes those streams precisely:
//!
//! - **BACKPROP** "has significantly more writes than reads" and is "by far
//!   the most write intensive workload in our suite" (§3.2, §5.3);
//! - **KMEANS, MATRIXMUL, NW** "have at least two reads for every one
//!   write", with KMEANS "the most read intensive" (§3.2, §5.3);
//! - **NW** "has the lowest network load of all the workloads" (§3.2);
//! - the remaining workloads (BIT, BUFF, DCT, HOTSPOT) "have nearly
//!   identical numbers of read and write requests".
//!
//! This crate substitutes each kernel with a parameterized stochastic
//! stream ([`TraceGenerator`]) matching those characteristics: read
//! fraction, injection intensity, spatial locality (sequential-run length
//! and a Zipf-hot working set), and footprint. The substitution preserves
//! exactly the properties the paper's analysis depends on; DESIGN.md
//! documents it.
//!
//! ## Example
//!
//! ```
//! use mn_workloads::{Workload, TraceGenerator};
//!
//! let profile = Workload::Backprop.profile();
//! assert!(profile.read_fraction < 0.5); // write-heavy
//!
//! let mut gen = TraceGenerator::new(profile, 1 << 30, 42);
//! let first = gen.next().unwrap();
//! assert!(first.addr < (1 << 30));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generator;
mod profile;

pub use generator::{MemRef, TraceGenerator};
pub use profile::{Workload, WorkloadProfile};
