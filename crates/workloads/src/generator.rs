//! The stochastic trace generator.

use mn_sim::{SimDuration, SimRng};

use crate::profile::WorkloadProfile;

/// Cache-line granularity of references (the LLC miss stream is 64 B).
pub const LINE_BYTES: u64 = 64;

/// One memory reference in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Time since the previous reference was offered.
    pub gap: SimDuration,
    /// Byte address (line-aligned) within the port's address space.
    pub addr: u64,
    /// True for writes.
    pub is_write: bool,
}

/// An infinite, deterministic stream of [`MemRef`]s following a
/// [`WorkloadProfile`].
///
/// The address process mixes three behaviours:
/// 1. with `sequential_prob`, continue the current run (next 64 B line);
/// 2. otherwise jump — with `hot_prob` into the Zipf-visited hot region
///    (the first `hot_fraction` of the footprint), else uniformly into the
///    whole footprint.
///
/// Inter-arrival gaps are exponential with mean `1/intensity`, the standard
/// open-loop offered-load model.
///
/// # Example
///
/// ```
/// use mn_workloads::{TraceGenerator, Workload};
///
/// let mut gen = TraceGenerator::new(Workload::Kmeans.profile(), 1 << 26, 7);
/// let refs: Vec<_> = gen.by_ref().take(1000).collect();
/// let reads = refs.iter().filter(|r| !r.is_write).count();
/// assert!(reads > 700, "KMEANS is read-heavy, got {reads}");
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    footprint_lines: u64,
    hot_lines: u64,
    rng: SimRng,
    cursor: u64,
    generated: u64,
}

impl TraceGenerator {
    /// Creates a generator over `address_space_bytes` of per-port address
    /// space, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid (see [`WorkloadProfile::validate`])
    /// or the footprint is smaller than one line.
    pub fn new(profile: WorkloadProfile, address_space_bytes: u64, seed: u64) -> TraceGenerator {
        profile.validate();
        let total_lines = address_space_bytes / LINE_BYTES;
        let footprint_lines = ((total_lines as f64 * profile.footprint_fraction) as u64).max(1);
        let hot_lines = ((footprint_lines as f64 * profile.hot_fraction) as u64).max(1);
        assert!(footprint_lines >= 1, "footprint smaller than one line");
        let mut rng = SimRng::seed_from(seed);
        let cursor = rng.below(footprint_lines);
        TraceGenerator {
            profile,
            footprint_lines,
            hot_lines,
            rng,
            cursor,
            generated: 0,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// References produced so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    fn next_line(&mut self) -> u64 {
        if self.rng.chance(self.profile.sequential_prob) {
            self.cursor = (self.cursor + 1) % self.footprint_lines;
        } else if self.rng.chance(self.profile.hot_prob) {
            self.cursor = self.rng.zipf(self.hot_lines, 1.0);
        } else {
            self.cursor = self.rng.below(self.footprint_lines);
        }
        self.cursor
    }

    fn next_gap(&mut self) -> SimDuration {
        // Exponential inter-arrival via inverse transform; clamp the
        // pathological u=0 case.
        let u = self.rng.unit().max(1e-12);
        let gap_ps = -u.ln() * self.profile.mean_gap_ps();
        SimDuration::from_ps(gap_ps.round() as u64)
    }
}

impl Iterator for TraceGenerator {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        let gap = self.next_gap();
        let line = self.next_line();
        let is_write = !self.rng.chance(self.profile.read_fraction);
        self.generated += 1;
        Some(MemRef {
            gap,
            addr: line * LINE_BYTES,
            is_write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Workload;

    const SPACE: u64 = 1 << 28; // 256 MB per port for tests

    fn take(w: Workload, n: usize, seed: u64) -> Vec<MemRef> {
        TraceGenerator::new(w.profile(), SPACE, seed)
            .take(n)
            .collect()
    }

    #[test]
    fn determinism() {
        assert_eq!(take(Workload::Dct, 500, 3), take(Workload::Dct, 500, 3));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(take(Workload::Dct, 100, 1), take(Workload::Dct, 100, 2));
    }

    #[test]
    fn addresses_in_bounds_and_aligned() {
        for r in take(Workload::Bit, 2000, 9) {
            assert!(r.addr < SPACE);
            assert_eq!(r.addr % LINE_BYTES, 0);
        }
    }

    #[test]
    fn read_fraction_calibrated() {
        for w in Workload::ALL {
            let refs = take(w, 20_000, 11);
            let reads = refs.iter().filter(|r| !r.is_write).count() as f64 / 20_000.0;
            let target = w.profile().read_fraction;
            assert!(
                (reads - target).abs() < 0.02,
                "{w}: got {reads}, want {target}"
            );
        }
    }

    #[test]
    fn intensity_calibrated() {
        for w in [Workload::Nw, Workload::Backprop] {
            let refs = take(w, 20_000, 13);
            let mean_gap: f64 = refs.iter().map(|r| r.gap.as_ps() as f64).sum::<f64>() / 20_000.0;
            let target = w.profile().mean_gap_ps();
            assert!(
                (mean_gap - target).abs() / target < 0.05,
                "{w}: mean gap {mean_gap}, want {target}"
            );
        }
    }

    #[test]
    fn sequential_runs_present() {
        let refs = take(Workload::Matrixmul, 5000, 17);
        let sequential = refs
            .windows(2)
            .filter(|w| w[1].addr == w[0].addr + LINE_BYTES)
            .count() as f64
            / 4999.0;
        // MATRIXMUL has sequential_prob 0.8.
        assert!(
            (0.7..0.9).contains(&sequential),
            "sequential fraction {sequential}"
        );
    }

    #[test]
    fn hot_region_is_hotter() {
        let p = Workload::Hotspot.profile(); // hot 5% with 50% of jumps
        let refs: Vec<MemRef> = TraceGenerator::new(p, SPACE, 23).take(50_000).collect();
        let hot_bound = (SPACE as f64 * p.hot_fraction) as u64;
        let hot_hits = refs.iter().filter(|r| r.addr < hot_bound).count() as f64 / 50_000.0;
        // At least 5x overrepresented relative to its size.
        assert!(hot_hits > p.hot_fraction * 5.0, "hot share {hot_hits}");
    }

    #[test]
    fn footprint_fraction_limits_range() {
        let mut p = Workload::Bit.profile();
        p.footprint_fraction = 0.25;
        let refs: Vec<MemRef> = TraceGenerator::new(p, SPACE, 5).take(5000).collect();
        let bound = SPACE / 4;
        assert!(refs.iter().all(|r| r.addr < bound));
    }

    #[test]
    fn generated_counts() {
        let mut g = TraceGenerator::new(Workload::Bit.profile(), SPACE, 1);
        assert_eq!(g.generated(), 0);
        let _ = g.by_ref().take(42).count();
        assert_eq!(g.generated(), 42);
    }

    #[test]
    fn tiny_address_space_works() {
        let mut g = TraceGenerator::new(Workload::Bit.profile(), 64, 1);
        for _ in 0..100 {
            assert_eq!(g.next().unwrap().addr, 0);
        }
    }
}
