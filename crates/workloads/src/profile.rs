//! The eight workload proxies and their stream parameters.

use std::fmt;

/// The workloads of the paper's evaluation (AMD SDK + Rodinia suites, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Rodinia back-propagation: by far the most write-intensive workload.
    Backprop,
    /// AMD SDK bitonic sort: balanced reads/writes, high load.
    Bit,
    /// AMD SDK buffer bandwidth: balanced, high load.
    Buff,
    /// AMD SDK DCT: balanced, high load, strong spatial locality.
    Dct,
    /// Rodinia HotSpot: balanced, moderate load, hot working set.
    Hotspot,
    /// Rodinia k-means: the most read-intensive workload.
    Kmeans,
    /// AMD SDK matrix multiply: read-heavy, strong locality.
    Matrixmul,
    /// Rodinia Needleman–Wunsch: read-leaning and the lowest network load.
    Nw,
}

impl Workload {
    /// All eight workloads in the paper's figure order.
    pub const ALL: [Workload; 8] = [
        Workload::Backprop,
        Workload::Bit,
        Workload::Buff,
        Workload::Dct,
        Workload::Hotspot,
        Workload::Kmeans,
        Workload::Matrixmul,
        Workload::Nw,
    ];

    /// The uppercase label used in the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            Workload::Backprop => "BACKPROP",
            Workload::Bit => "BIT",
            Workload::Buff => "BUFF",
            Workload::Dct => "DCT",
            Workload::Hotspot => "HOTSPOT",
            Workload::Kmeans => "KMEANS",
            Workload::Matrixmul => "MATRIXMUL",
            Workload::Nw => "NW",
        }
    }

    /// The calibrated stream parameters for this workload (see the
    /// crate-level docs for the paper's characterization each profile
    /// encodes).
    pub fn profile(self) -> WorkloadProfile {
        match self {
            Workload::Backprop => WorkloadProfile {
                workload: Some(self),
                read_fraction: 0.32,
                intensity_per_ns: 0.30,
                sequential_prob: 0.70,
                hot_fraction: 0.10,
                hot_prob: 0.30,
                footprint_fraction: 1.0,
                burst_mean: 16.0,
            },
            Workload::Bit => WorkloadProfile {
                workload: Some(self),
                read_fraction: 0.50,
                intensity_per_ns: 0.30,
                sequential_prob: 0.50,
                hot_fraction: 0.15,
                hot_prob: 0.25,
                footprint_fraction: 1.0,
                burst_mean: 8.0,
            },
            Workload::Buff => WorkloadProfile {
                workload: Some(self),
                read_fraction: 0.50,
                intensity_per_ns: 0.28,
                sequential_prob: 0.60,
                hot_fraction: 0.20,
                hot_prob: 0.20,
                footprint_fraction: 1.0,
                burst_mean: 16.0,
            },
            Workload::Dct => WorkloadProfile {
                workload: Some(self),
                read_fraction: 0.55,
                intensity_per_ns: 0.30,
                sequential_prob: 0.75,
                hot_fraction: 0.10,
                hot_prob: 0.25,
                footprint_fraction: 1.0,
                burst_mean: 16.0,
            },
            Workload::Hotspot => WorkloadProfile {
                workload: Some(self),
                read_fraction: 0.50,
                intensity_per_ns: 0.22,
                sequential_prob: 0.60,
                hot_fraction: 0.05,
                hot_prob: 0.50,
                footprint_fraction: 1.0,
                burst_mean: 8.0,
            },
            Workload::Kmeans => WorkloadProfile {
                workload: Some(self),
                read_fraction: 0.80,
                intensity_per_ns: 0.30,
                sequential_prob: 0.65,
                hot_fraction: 0.10,
                hot_prob: 0.35,
                footprint_fraction: 1.0,
                burst_mean: 16.0,
            },
            Workload::Matrixmul => WorkloadProfile {
                workload: Some(self),
                read_fraction: 0.70,
                intensity_per_ns: 0.18,
                sequential_prob: 0.80,
                hot_fraction: 0.10,
                hot_prob: 0.40,
                footprint_fraction: 1.0,
                burst_mean: 8.0,
            },
            Workload::Nw => WorkloadProfile {
                workload: Some(self),
                read_fraction: 0.67,
                intensity_per_ns: 0.04,
                sequential_prob: 0.55,
                hot_fraction: 0.15,
                hot_prob: 0.30,
                footprint_fraction: 1.0,
                burst_mean: 4.0,
            },
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Parameters of a synthetic memory request stream.
///
/// Construct via [`Workload::profile`] for the paper's workloads, or build
/// a custom profile directly (all fields are public data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Which paper workload this models, if any.
    pub workload: Option<Workload>,
    /// Fraction of requests that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Mean offered load per host port, requests per nanosecond.
    pub intensity_per_ns: f64,
    /// Probability that the next reference continues the current
    /// sequential run (64 B stride).
    pub sequential_prob: f64,
    /// Fraction of the footprint that is "hot" (Zipf-visited).
    pub hot_fraction: f64,
    /// Probability a non-sequential jump lands in the hot region.
    pub hot_prob: f64,
    /// Fraction of the address space the workload touches. The §6.2
    /// capacity study assumes footprints "just under the total memory
    /// capacity", i.e. 1.0.
    pub footprint_fraction: f64,
    /// Mean references per issue burst. GPU wavefronts issue coalesced
    /// groups of misses back to back (up to 64 lanes), so traffic is far
    /// burstier than Poisson — the source of the deep queuing the paper
    /// measures. Low-divergence kernels have long bursts.
    pub burst_mean: f64,
}

impl WorkloadProfile {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any probability/fraction is outside `[0, 1]` or the
    /// intensity is not positive and finite.
    pub fn validate(&self) {
        for (name, v) in [
            ("read_fraction", self.read_fraction),
            ("sequential_prob", self.sequential_prob),
            ("hot_fraction", self.hot_fraction),
            ("hot_prob", self.hot_prob),
            ("footprint_fraction", self.footprint_fraction),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        }
        assert!(
            self.intensity_per_ns.is_finite() && self.intensity_per_ns > 0.0,
            "intensity must be positive, got {}",
            self.intensity_per_ns
        );
        assert!(self.footprint_fraction > 0.0, "footprint must be non-empty");
        assert!(
            self.burst_mean.is_finite() && self.burst_mean >= 1.0,
            "burst_mean must be >= 1, got {}",
            self.burst_mean
        );
    }

    /// Mean inter-arrival gap in picoseconds.
    pub fn mean_gap_ps(&self) -> f64 {
        1000.0 / self.intensity_per_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_valid() {
        for w in Workload::ALL {
            w.profile().validate();
        }
    }

    #[test]
    fn paper_characterizations_hold() {
        // BACKPROP is the most write intensive.
        let backprop = Workload::Backprop.profile();
        for w in Workload::ALL {
            if w != Workload::Backprop {
                assert!(w.profile().read_fraction > backprop.read_fraction, "{w}");
            }
        }
        // KMEANS is the most read intensive.
        let kmeans = Workload::Kmeans.profile();
        for w in Workload::ALL {
            if w != Workload::Kmeans {
                assert!(w.profile().read_fraction < kmeans.read_fraction, "{w}");
            }
        }
        // KMEANS/MATRIXMUL/NW: at least 2 reads per write.
        for w in [Workload::Kmeans, Workload::Matrixmul, Workload::Nw] {
            assert!(w.profile().read_fraction >= 2.0 / 3.0, "{w}");
        }
        // NW has the lowest network load.
        let nw = Workload::Nw.profile();
        for w in Workload::ALL {
            if w != Workload::Nw {
                assert!(w.profile().intensity_per_ns > nw.intensity_per_ns, "{w}");
            }
        }
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(Workload::Backprop.label(), "BACKPROP");
        assert_eq!(Workload::Nw.to_string(), "NW");
        assert_eq!(Workload::ALL.len(), 8);
    }

    #[test]
    fn mean_gap_inverts_intensity() {
        let p = Workload::Nw.profile();
        assert!((p.mean_gap_ps() - 25_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "read_fraction must be in [0,1]")]
    fn invalid_read_fraction_rejected() {
        let mut p = Workload::Bit.profile();
        p.read_fraction = 1.5;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "intensity must be positive")]
    fn invalid_intensity_rejected() {
        let mut p = Workload::Bit.profile();
        p.intensity_per_ns = 0.0;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "burst_mean must be >= 1")]
    fn invalid_burst_rejected() {
        let mut p = Workload::Bit.profile();
        p.burst_mean = 0.5;
        p.validate();
    }

    #[test]
    fn burstiness_tracks_kernel_style() {
        // Dense streaming kernels issue longer coalesced bursts than the
        // low-load NW proxy.
        assert!(Workload::Dct.profile().burst_mean > Workload::Nw.profile().burst_mean);
        assert!(Workload::Buff.profile().burst_mean >= 8.0);
    }
}
