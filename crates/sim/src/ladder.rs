//! A two-level ladder (calendar) queue: the allocation-free priority queue
//! behind [`crate::EventQueue`].
//!
//! Discrete-event simulations exhibit strong *temporal locality*: nearly
//! every scheduled event fires within a short horizon of the current
//! simulated time. A binary heap ignores that structure and pays a
//! pointer-chasing sift on every operation; a ladder queue exploits it.
//! Events land in one of [`N_BUCKETS`] fixed-width time buckets covering a
//! sliding window anchored near the earliest pending event. Push appends
//! to the bucket covering the event's instant; pop drains the *active*
//! bucket front to back. Only when a bucket becomes active is it sorted —
//! a tiny, cache-resident, stable sort — so the per-event cost is O(1)
//! amortized, and after warm-up no operation allocates: buckets and the
//! overflow rung retain their capacity across rewindows.
//!
//! ## The FIFO tie-break invariant
//!
//! The pop order is **exactly** `(time, insertion sequence)` — the order a
//! binary heap with an explicit sequence tie-break produces — which is
//! what pins the workspace's bit-reproducible results. Three mechanisms
//! guarantee it (see `DESIGN.md` §5.3):
//!
//! 1. Appends into a pending bucket happen in push order, and activation
//!    sorts **stably by time only**, so same-instant events keep their
//!    insertion order.
//! 2. Pushes into the already-sorted active bucket insert after every
//!    entry with time ≤ theirs (their sequence number is by construction
//!    the largest yet issued).
//! 3. The overflow rung preserves push order, and a rewindow distributes
//!    it in that order into empty buckets — entries pushed later are
//!    appended later, so stability composes.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Buckets per window. 256 keeps the occupancy bitmap at four words while
/// spanning a window comfortably larger than the event horizon of a
/// router-network simulation.
pub const N_BUCKETS: usize = 256;

/// Default bucket width in picoseconds. Sized so that one window
/// (`N_BUCKETS * BUCKET_PS` ≈ 131 ns) covers the typical scheduling
/// horizon of link serialization (~0.5 ns), SerDes latency (2 ns), and
/// link-occupancy wakeups (tens of ns); farther events take the overflow
/// rung and cost one extra move at the next rewindow.
///
/// Since kernel v4 the width is a per-instance field — callers that know
/// their event horizon (e.g. `mn-noc`, which derives it from the
/// topology's minimum link traversal time) pass a tuned width through
/// [`LadderQueue::with_capacity_and_bucket`]. The pop order is
/// `(time, seq)` regardless of bucket geometry (see the module docs —
/// the ordering argument never references the width), so two queues with
/// different widths pop identical sequences; only the spill/rewindow
/// counters and constant factors differ.
pub const BUCKET_PS: u64 = 512;

const OCC_WORDS: usize = N_BUCKETS / 64;

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// A time-ordered queue with `(time, insertion-seq)` pop order, O(1)
/// amortized operations, and a zero-allocation steady state.
///
/// Pops are monotonically non-decreasing in time; pushing earlier than the
/// last popped instant is a caller logic error caught by a debug
/// assertion. See the module docs for the ordering guarantee.
///
/// # Example
///
/// ```
/// use mn_sim::{LadderQueue, SimTime};
///
/// let mut q = LadderQueue::new();
/// q.push(SimTime::from_ns(3), 'b');
/// q.push(SimTime::from_ns(1), 'a');
/// q.push(SimTime::from_ns(3), 'c'); // same instant as 'b': FIFO order
///
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct LadderQueue<E> {
    /// The window rung: `buckets[b]` covers
    /// `[base_ps + b*bucket_ps, base_ps + (b+1)*bucket_ps)`.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// Width of each bucket in picoseconds ([`BUCKET_PS`] unless tuned at
    /// construction). Affects only constant factors and the spill
    /// counters, never the pop order.
    bucket_ps: u64,
    /// Non-empty-bucket bitmap; bit `b` set ⟺ `buckets[b]` is non-empty.
    occ: [u64; OCC_WORDS],
    /// Picosecond start of bucket 0; re-anchored when the queue empties,
    /// when a push lands before the window, and at every rewindow.
    base_ps: u64,
    /// The active bucket: sorted by `(time, seq)`, drained from the front.
    /// Invariant: whenever `len > 0`, `buckets[cur]` is non-empty and its
    /// front entry is the global minimum.
    cur: usize,
    /// The far rung: events beyond the window, in push order.
    overflow: Vec<Entry<E>>,
    /// Reused by `rewindow` to partition `overflow` without allocating.
    scratch: Vec<Entry<E>>,
    len: usize,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    pushed: u64,
    peak: usize,
    spills: u64,
    rewindows: u64,
}

impl<E> LadderQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        LadderQueue {
            buckets: (0..N_BUCKETS).map(|_| VecDeque::new()).collect(),
            bucket_ps: BUCKET_PS,
            occ: [0; OCC_WORDS],
            base_ps: 0,
            cur: 0,
            overflow: Vec::new(),
            scratch: Vec::new(),
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            pushed: 0,
            peak: 0,
            spills: 0,
            rewindows: 0,
        }
    }

    /// Creates an empty queue sized for roughly `capacity` simultaneously
    /// pending events: the overflow rung, the scratch buffer, and every
    /// bucket each hold that many before reallocating. Buckets get the
    /// full hint — not `capacity / N_BUCKETS` — because the pending set
    /// can momentarily cluster in one bucket, and a zero-allocation steady
    /// state requires that no bucket ever grows mid-run (buckets retain
    /// whatever capacity they reach, so even an undersized queue allocates
    /// only during warm-up).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = LadderQueue::new();
        q.overflow.reserve(capacity);
        q.scratch.reserve(capacity);
        let per_bucket = capacity.max(4);
        for bucket in &mut q.buckets {
            bucket.reserve(per_bucket);
        }
        q
    }

    /// Like [`LadderQueue::with_capacity`], but with a caller-tuned bucket
    /// width (clamped to at least 1 ps) instead of the [`BUCKET_PS`]
    /// default. Use when the event horizon is known at construction — the
    /// NoC derives it from the minimum link traversal time so one window
    /// always spans a few hundred link hops, keeping spills near zero
    /// across SerDes sweeps. Bit-reproducibility note: the pop order is
    /// `(time, seq)` for *any* width, so tuning this never changes
    /// results.
    pub fn with_capacity_and_bucket(capacity: usize, bucket_ps: u64) -> Self {
        let mut q = LadderQueue::with_capacity(capacity);
        q.bucket_ps = bucket_ps.max(1);
        q
    }

    /// The bucket width in picoseconds this queue was built with.
    pub fn bucket_width_ps(&self) -> u64 {
        self.bucket_ps
    }

    #[inline]
    fn set_occ(&mut self, b: usize) {
        self.occ[b / 64] |= 1u64 << (b % 64);
    }

    #[inline]
    fn clear_occ(&mut self, b: usize) {
        self.occ[b / 64] &= !(1u64 << (b % 64));
    }

    /// The lowest occupied bucket index at or above `from`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= N_BUCKETS {
            return None;
        }
        let mut w = from / 64;
        let mut word = self.occ[w] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= OCC_WORDS {
                return None;
            }
            word = self.occ[w];
        }
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `time` is earlier than the most recently
    /// popped instant (scheduling into the past).
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "scheduled event at {time} into the past (now = {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        let entry = Entry { time, seq, event };
        let t = time.as_ps();
        if self.len == 0 {
            // Empty queue: re-anchor the window at this event.
            self.base_ps = t;
            self.cur = 0;
            self.buckets[0].push_back(entry);
            self.set_occ(0);
            self.len = 1;
            self.peak = self.peak.max(1);
            return;
        }
        self.len += 1;
        self.peak = self.peak.max(self.len);
        let Some(off) = t.checked_sub(self.base_ps) else {
            // Earlier than the window start: the window was anchored at a
            // later event while this push is still ≥ now. Re-anchor at t;
            // the new entry fronts bucket 0 — it is the new global minimum
            // (every windowed and overflowed entry has time ≥ old base
            // > t) and bucket 0 stays sorted (rebase leaves it so).
            self.rebase(t);
            self.buckets[0].push_front(entry);
            self.set_occ(0);
            return;
        };
        let idx = (off / self.bucket_ps) as usize;
        if idx >= N_BUCKETS {
            self.spills += 1;
            self.overflow.push(entry);
            return;
        }
        if idx == self.cur {
            // The active bucket is sorted; this entry's seq is the largest
            // yet issued, so it slots in after every entry with time ≤ its
            // own — exactly the (time, seq) position.
            let pos = self.buckets[idx].partition_point(|e| e.time <= time);
            self.buckets[idx].insert(pos, entry);
        } else if idx > self.cur {
            // Pending bucket: append; activation sorts stably by time, so
            // push order — and hence seq order — survives for ties.
            self.buckets[idx].push_back(entry);
            self.set_occ(idx);
        } else {
            // Behind the active bucket. Every bucket below `cur` has been
            // drained and cleared, so this one is empty: it becomes the
            // new active bucket (trivially sorted with one entry).
            debug_assert!(self.buckets[idx].is_empty());
            self.buckets[idx].push_back(entry);
            self.set_occ(idx);
            self.cur = idx;
        }
    }

    /// Re-anchors the window at picosecond `t < base_ps` and redistributes
    /// every windowed entry against the new bucket boundaries (entries
    /// pushed past the window demote to the overflow rung). Rare — it only
    /// fires when the window was anchored at a later event than a
    /// subsequent push — and allocation-free via the reusable scratch.
    ///
    /// Ordering safety: entries are stashed bucket-ascending in push
    /// order. Same-instant entries always share a source bucket, so their
    /// relative order survives the stash and the re-append, and entries
    /// landing in bucket 0 all come from old bucket 0 — the active bucket,
    /// already sorted — so bucket 0 remains sorted for the caller.
    fn rebase(&mut self, t: u64) {
        debug_assert!(t < self.base_ps);
        let mut stash = std::mem::take(&mut self.scratch);
        debug_assert!(stash.is_empty());
        let mut from = 0;
        while let Some(i) = self.next_occupied(from) {
            from = i + 1;
            let mut moved = std::mem::take(&mut self.buckets[i]);
            stash.extend(moved.drain(..));
            self.buckets[i] = moved; // retain the drained deque's capacity
            self.clear_occ(i);
        }
        self.base_ps = t;
        for entry in stash.drain(..) {
            let idx = ((entry.time.as_ps() - t) / self.bucket_ps) as usize;
            if idx >= N_BUCKETS {
                // Strictly below every pre-existing overflow time (the
                // window/overflow boundary invariant), so per-instant seq
                // order across the rung holds.
                self.spills += 1;
                self.overflow.push(entry);
            } else {
                self.buckets[idx].push_back(entry);
                self.set_occ(idx);
            }
        }
        self.scratch = stash;
        self.cur = 0;
    }

    /// Sorts `buckets[b]` stably by time (preserving push order — and
    /// therefore seq order — among same-instant entries) and makes it the
    /// active bucket.
    fn activate(&mut self, b: usize) {
        self.cur = b;
        let bucket = &mut self.buckets[b];
        if bucket.len() > 1 {
            bucket.make_contiguous().sort_by_key(|e| e.time);
        }
        debug_assert!(self.buckets[b]
            .iter()
            .zip(self.buckets[b].iter().skip(1))
            .all(|(a, b)| (a.time, a.seq) <= (b.time, b.seq)));
    }

    /// Re-anchors the window at the earliest overflow event and moves the
    /// now-windowed part of the overflow rung into buckets, preserving
    /// push order for both the moved and the retained entries.
    fn rewindow(&mut self) {
        debug_assert!(!self.overflow.is_empty());
        self.rewindows += 1;
        let min_t = self
            .overflow
            .iter()
            .map(|e| e.time.as_ps())
            .min()
            .expect("overflow non-empty");
        self.base_ps = min_t;
        let mut pending = std::mem::take(&mut self.overflow);
        let mut kept = std::mem::take(&mut self.scratch);
        debug_assert!(kept.is_empty());
        for entry in pending.drain(..) {
            let idx = ((entry.time.as_ps() - min_t) / self.bucket_ps) as usize;
            if idx < N_BUCKETS {
                self.buckets[idx].push_back(entry);
                self.set_occ(idx);
            } else {
                kept.push(entry);
            }
        }
        // Both vectors keep their capacity for the next rewindow.
        self.overflow = kept;
        self.scratch = pending;
    }

    /// Restores the active-bucket invariant after `buckets[cur]` drained:
    /// activate the next occupied bucket, rewindowing from the overflow
    /// rung as needed. Caller guarantees `len > 0`.
    fn advance_cur(&mut self) {
        loop {
            if let Some(b) = self.next_occupied(self.cur) {
                self.activate(b);
                return;
            }
            self.rewindow();
            self.cur = 0;
        }
    }

    /// Removes and returns the earliest event, advancing the queue clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let entry = self.buckets[self.cur].pop_front().expect("invariant");
        self.len -= 1;
        self.now = entry.time;
        self.popped += 1;
        if self.buckets[self.cur].is_empty() {
            self.clear_occ(self.cur);
            if self.len > 0 {
                self.advance_cur();
            }
        }
        Some((entry.time, entry.event))
    }

    /// The firing time of the earliest pending event, if any. O(1): the
    /// active-bucket invariant keeps the minimum at the front.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        Some(self.buckets[self.cur].front().expect("invariant").time)
    }

    /// The time of the most recently popped event ([`SimTime::ZERO`]
    /// before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events popped since construction.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Total events pushed since construction.
    pub fn events_scheduled(&self) -> u64 {
        self.pushed
    }

    /// High-water mark of pending events.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Pushes that missed the window and took the overflow rung (plus
    /// rebase demotions) — the "how well does the window fit the horizon"
    /// diagnostic.
    pub fn bucket_spills(&self) -> u64 {
        self.spills
    }

    /// Times the window was re-anchored from the overflow rung.
    pub fn rewindow_count(&self) -> u64 {
        self.rewindows
    }
}

impl<E> Default for LadderQueue<E> {
    fn default() -> Self {
        LadderQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = LadderQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo_across_paths() {
        // Same instant reached via pending-append and a rebase shift.
        let mut q = LadderQueue::new();
        let t = SimTime::from_ns(1);
        for i in 0..10 {
            q.push(t, i);
        }
        q.push(SimTime::ZERO, -1);
        assert_eq!(q.pop(), Some((SimTime::ZERO, -1)));
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t, i)), "entry {i}");
        }
    }

    #[test]
    fn far_future_takes_overflow_and_comes_back() {
        let mut q = LadderQueue::new();
        let far = SimTime::from_ps(N_BUCKETS as u64 * BUCKET_PS * 10);
        q.push(SimTime::from_ps(1), 'a');
        q.push(far, 'c');
        q.push(far, 'd');
        q.push(SimTime::from_ps(2), 'b');
        assert!(q.bucket_spills() >= 2);
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ['a', 'b', 'c', 'd']);
        assert!(q.rewindow_count() >= 1);
    }

    #[test]
    fn multi_window_overflow_drains_in_order() {
        // Overflow spanning several windows forces chained rewindows.
        let window = N_BUCKETS as u64 * BUCKET_PS;
        let mut q = LadderQueue::new();
        let mut expect = Vec::new();
        for k in 0..40u64 {
            // Spread across ~13 windows, pushed out of order.
            let t = SimTime::from_ps((k * 37 % 40) * window / 3 + 1);
            q.push(t, (t, k));
            expect.push((t, k));
        }
        // `k` equals push seq order, so sorting by (time, k) gives the
        // required pop order.
        expect.sort_by_key(|&(t, k)| (t, k));
        let got: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn push_below_window_after_anchor() {
        // Anchor at a late event, then push earlier (but ≥ now).
        let mut q = LadderQueue::new();
        q.push(SimTime::from_ns(100), 'z');
        q.push(SimTime::from_ns(1), 'a');
        q.push(SimTime::from_ns(1), 'b');
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ['a', 'b', 'z']);
    }

    #[test]
    fn rebase_demotes_top_buckets_to_overflow() {
        // Fill a bucket near the top of the window, then rebase far enough
        // back that it falls off the end.
        let window = N_BUCKETS as u64 * BUCKET_PS;
        let mut q = LadderQueue::new();
        let hi = SimTime::from_ps(window - 1);
        q.push(SimTime::from_ps(window / 2), 'm');
        q.push(hi, 'y');
        q.push(hi, 'z');
        q.push(SimTime::from_ps(0), 'a');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ['a', 'm', 'y', 'z']);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = LadderQueue::new();
        q.push(SimTime::from_ns(1), 'a');
        q.push(SimTime::from_ns(5), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_ns(3), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.now(), SimTime::from_ns(5));
    }

    #[test]
    fn counters_track() {
        let mut q = LadderQueue::with_capacity(16);
        assert!(q.is_empty());
        for i in 0..5u64 {
            q.push(SimTime::from_ns(i), i);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.peak_len(), 5);
        assert_eq!(q.events_scheduled(), 5);
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 5);
        assert!(q.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = LadderQueue::new();
        q.push(SimTime::from_ns(10), ());
        q.pop();
        q.push(SimTime::from_ns(5), ());
    }

    /// The pop order is `(time, seq)` regardless of bucket geometry: the
    /// same interleaved push/pop schedule — chosen to exercise pending
    /// appends, active-bucket inserts, rebases, spills, and rewindows at
    /// the narrow widths — pops identically at widths spanning three
    /// orders of magnitude.
    #[test]
    fn pop_order_is_independent_of_bucket_width() {
        // Chunk bases advance past the previous chunk's maximum so the
        // interleaved drains below never make a later push "into the
        // past", while within-chunk times are scrambled.
        let schedule: Vec<SimTime> = (0..600u64)
            .map(|k| {
                let chunk = k / 100;
                SimTime::from_ps(chunk * 300_000 + (k * 131_071 % 257) * 997 + (k % 7) * 512)
            })
            .collect();
        let mut reference: Option<Vec<(SimTime, usize)>> = None;
        for width in [1, 97, BUCKET_PS, 65_536] {
            let mut q = LadderQueue::with_capacity_and_bucket(64, width);
            assert_eq!(q.bucket_width_ps(), width);
            let mut got = Vec::new();
            for (i, chunk) in schedule.chunks(100).enumerate() {
                for (j, &t) in chunk.iter().enumerate() {
                    q.push(t, i * 100 + j);
                }
                // Interleave partial drains so `now` advances and later
                // pushes land both before and after the moving window.
                for _ in 0..40 {
                    got.push(q.pop().unwrap());
                }
            }
            while let Some(e) = q.pop() {
                got.push(e);
            }
            assert_eq!(got.len(), schedule.len());
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "width {width} diverged"),
            }
        }
    }

    #[test]
    fn zero_width_clamps_to_one() {
        let mut q = LadderQueue::with_capacity_and_bucket(4, 0);
        assert_eq!(q.bucket_width_ps(), 1);
        q.push(SimTime::from_ns(1), 'a');
        assert_eq!(q.pop(), Some((SimTime::from_ns(1), 'a')));
    }
}
