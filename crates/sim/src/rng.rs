//! Deterministic random number generation for workload synthesis.
//!
//! All randomness in the workspace flows through [`SimRng`] so that every
//! experiment is reproducible from a single `u64` seed. The generator is a
//! self-contained xoshiro256++ (seeded through SplitMix64, so any `u64`
//! seed — including zero — yields a well-mixed state) with the
//! distributions the workload generators need (Bernoulli draws, bounded
//! uniforms, geometric burst lengths, and a Zipf sampler for spatial
//! locality). No external crates are involved, which keeps the workspace
//! buildable offline and the bit-streams stable across toolchains.

/// A seeded, deterministic random source.
///
/// # Example
///
/// ```
/// use mn_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: std::array::from_fn(|_| splitmix64(&mut sm)),
        }
    }

    /// Derives an independent child generator; used to give each host port
    /// its own stream without correlating the streams.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        // Mix the salt through SplitMix64 so fork(0) and fork(1) diverge.
        let mut z = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from(z ^ (z >> 31))
    }

    /// The next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)` via the multiply-shift reduction; the
    /// bias is `bound / 2^64`, far below anything the simulations resolve.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// A Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit() < p
    }

    /// Uniform `f64` in `[0, 1)`: the top 53 bits of one draw.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A geometric draw: the number of successes (each with probability
    /// `1 - p_stop`) before the first stop. Used for burst-length modelling.
    /// Capped at `max` to bound simulation work.
    pub fn geometric(&mut self, p_stop: f64, max: u64) -> u64 {
        let p_stop = p_stop.clamp(1e-9, 1.0);
        let mut n = 0;
        while n < max && !self.chance(p_stop) {
            n += 1;
        }
        n
    }

    /// A Zipf-like draw over `[0, n)` with exponent `s`: rank 0 is the most
    /// popular. Implemented by inverse-transform over the harmonic CDF;
    /// `O(log n)` per draw via binary search over precomputed weights is
    /// avoided by using the standard approximation for s != 1 which is exact
    /// enough for locality modelling.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "zipf over empty domain");
        if n == 1 {
            return 0;
        }
        // Inverse CDF of the continuous Zipf approximation:
        // F(x) ∝ x^(1-s) for s != 1, log(x) for s == 1, over [1, n+1).
        let u = self.unit();
        let nf = n as f64;
        let x = if (s - 1.0).abs() < 1e-9 {
            ((nf + 1.0).ln() * u).exp()
        } else {
            let a = 1.0 - s;
            (u * ((nf + 1.0).powf(a) - 1.0) + 1.0).powf(1.0 / a)
        };
        ((x.floor() as u64).saturating_sub(1)).min(n - 1)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_diverge() {
        let mut root = SimRng::seed_from(1);
        let mut c0 = root.fork(0);
        let mut root2 = SimRng::seed_from(1);
        let mut c1 = root2.fork(1);
        let s0: Vec<u64> = (0..8).map(|_| c0.next_u64()).collect();
        let s1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        assert_ne!(s0, s1);
    }

    #[test]
    fn below_in_bounds() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }

    #[test]
    fn range_in_bounds() {
        let mut r = SimRng::seed_from(4);
        for _ in 0..1000 {
            let v = r.range(5, 15);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(5);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::seed_from(6);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn geometric_respects_cap() {
        let mut r = SimRng::seed_from(8);
        for _ in 0..100 {
            assert!(r.geometric(0.01, 16) <= 16);
        }
    }

    #[test]
    fn zipf_in_domain_and_skewed() {
        let mut r = SimRng::seed_from(9);
        let n = 64;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..20_000 {
            counts[r.zipf(n, 1.0) as usize] += 1;
        }
        // Rank 0 must dominate the tail under a Zipf law.
        assert!(counts[0] > counts[32] * 3, "{:?}", &counts[..4]);
        assert_eq!(counts.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn zipf_singleton() {
        assert_eq!(SimRng::seed_from(0).zipf(1, 1.0), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(10);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
