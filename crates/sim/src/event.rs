//! The event queue at the heart of the discrete-event kernel.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled for a particular instant.
///
/// Ordering is by time, then by insertion sequence number, so two events
/// scheduled for the same instant are delivered in FIFO order. Deterministic
/// tie-breaking is essential for reproducible simulations.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// Events popped from the queue are monotonically non-decreasing in time.
/// Scheduling an event earlier than the last popped event is a logic error
/// in the caller and is caught by a debug assertion in [`EventQueue::push`].
///
/// # Example
///
/// ```
/// use mn_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(3), 'b');
/// q.push(SimTime::from_ns(1), 'a');
/// q.push(SimTime::from_ns(3), 'c'); // same instant as 'b': FIFO order
///
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    peak: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            peak: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            peak: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `time` is earlier than the time of the most
    /// recently popped event (scheduling into the past).
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "scheduled event at {time} into the past (now = {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
        self.peak = self.peak.max(self.heap.len());
    }

    /// Removes and returns the earliest event, advancing the queue's clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Scheduled { time, event, .. } = self.heap.pop()?;
        self.now = time;
        self.popped += 1;
        Some((time, event))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The time of the most recently popped event ([`SimTime::ZERO`] before
    /// the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped since construction.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// The largest number of events simultaneously pending since
    /// construction — the working-set size the underlying heap had to
    /// sustain. Event-coalescing optimizations drive this down.
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (time, event) in iter {
            self.push(time, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut queue = EventQueue::new();
        queue.extend(iter);
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_ns(4), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(4));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), ());
        q.pop();
        q.push(SimTime::from_ns(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counters_and_emptiness() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.extend((0..5).map(|i| (SimTime::from_ns(i), i)));
        assert_eq!(q.len(), 5);
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 5);
        assert!(q.is_empty());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.push(SimTime::from_ns(1), ());
        q.push(SimTime::from_ns(2), ());
        q.pop();
        q.push(SimTime::from_ns(3), ());
        // Never more than 2 pending at once.
        assert_eq!(q.peak_len(), 2);
        while q.pop().is_some() {}
        assert_eq!(q.peak_len(), 2);
    }

    #[test]
    fn from_iterator_collects() {
        let q: EventQueue<u32> = (0..3).map(|i| (SimTime::from_ns(i), i as u32)).collect();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(1), 'a');
        q.push(SimTime::from_ns(5), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_ns(3), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }
}
