//! The event queue at the heart of the discrete-event kernel.
//!
//! Since kernel v3 the queue is a thin façade over [`LadderQueue`], a
//! two-level calendar queue with the exact `(time, insertion-seq)` pop
//! order the previous `BinaryHeap` implementation had — see
//! [`crate::ladder`] for the structure and the ordering proof. The
//! [`Scheduled`] wrapper (with the heap's inverted ordering) remains
//! available for reference implementations and differential tests.

use std::cmp::Ordering;

use crate::ladder::LadderQueue;
use crate::time::SimTime;

/// An event scheduled for a particular instant.
///
/// Ordering is by time, then by insertion sequence number, so two events
/// scheduled for the same instant are delivered in FIFO order. Deterministic
/// tie-breaking is essential for reproducible simulations.
///
/// Kernel v3 replaced the `BinaryHeap<Scheduled<E>>` inside [`EventQueue`]
/// with a ladder queue; `Scheduled` is retained as the reference ordering
/// (a max-heap of these pops the same sequence) for differential tests.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> Scheduled<E> {
    /// Wraps `event` with an explicit firing time and tie-break sequence
    /// number (lower sequence pops first among same-instant events).
    pub fn new(time: SimTime, seq: u64, event: E) -> Self {
        Scheduled { time, seq, event }
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// Events popped from the queue are monotonically non-decreasing in time.
/// Scheduling an event earlier than the last popped event is a logic error
/// in the caller and is caught by a debug assertion in [`EventQueue::push`].
///
/// # Example
///
/// ```
/// use mn_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(3), 'b');
/// q.push(SimTime::from_ns(1), 'a');
/// q.push(SimTime::from_ns(3), 'c'); // same instant as 'b': FIFO order
///
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    ladder: LadderQueue<E>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            ladder: LadderQueue::new(),
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            ladder: LadderQueue::with_capacity(capacity),
        }
    }

    /// Creates an empty queue with pre-allocated capacity and a tuned
    /// ladder bucket width in picoseconds (clamped to ≥ 1). Callers that
    /// know their scheduling horizon — e.g. the NoC, which derives it
    /// from the minimum link traversal time — use this to keep
    /// [`EventQueue::bucket_spills`] near zero across timing sweeps.
    /// Pop order is width-independent, so results are unchanged.
    pub fn with_capacity_and_bucket(capacity: usize, bucket_ps: u64) -> Self {
        EventQueue {
            ladder: LadderQueue::with_capacity_and_bucket(capacity, bucket_ps),
        }
    }

    /// The ladder bucket width in picoseconds this queue was built with.
    pub fn bucket_width_ps(&self) -> u64 {
        self.ladder.bucket_width_ps()
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `time` is earlier than the time of the most
    /// recently popped event (scheduling into the past).
    pub fn push(&mut self, time: SimTime, event: E) {
        self.ladder.push(time, event);
    }

    /// Removes and returns the earliest event, advancing the queue's clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.ladder.pop()
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.ladder.peek_time()
    }

    /// The time of the most recently popped event ([`SimTime::ZERO`] before
    /// the first pop).
    pub fn now(&self) -> SimTime {
        self.ladder.now()
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.ladder.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.ladder.is_empty()
    }

    /// Total number of events popped since construction.
    pub fn events_processed(&self) -> u64 {
        self.ladder.events_processed()
    }

    /// Total number of events pushed since construction.
    pub fn events_scheduled(&self) -> u64 {
        self.ladder.events_scheduled()
    }

    /// The largest number of events simultaneously pending since
    /// construction — the working-set size the underlying queue had to
    /// sustain. Event-coalescing optimizations drive this down.
    pub fn peak_len(&self) -> usize {
        self.ladder.peak_len()
    }

    /// Pushes that landed beyond the ladder window and took the overflow
    /// rung. A high ratio of spills to pushes means the bucket window is a
    /// poor fit for the workload's scheduling horizon.
    pub fn bucket_spills(&self) -> u64 {
        self.ladder.bucket_spills()
    }

    /// Times the ladder window was re-anchored from the overflow rung.
    pub fn rewindow_count(&self) -> u64 {
        self.ladder.rewindow_count()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (time, event) in iter {
            self.push(time, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut queue = EventQueue::new();
        queue.extend(iter);
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_ns(4), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(4));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), ());
        q.pop();
        q.push(SimTime::from_ns(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counters_and_emptiness() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.extend((0..5).map(|i| (SimTime::from_ns(i), i)));
        assert_eq!(q.len(), 5);
        assert_eq!(q.events_scheduled(), 5);
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 5);
        assert!(q.is_empty());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.push(SimTime::from_ns(1), ());
        q.push(SimTime::from_ns(2), ());
        q.pop();
        q.push(SimTime::from_ns(3), ());
        // Never more than 2 pending at once.
        assert_eq!(q.peak_len(), 2);
        while q.pop().is_some() {}
        assert_eq!(q.peak_len(), 2);
    }

    #[test]
    fn from_iterator_collects() {
        let q: EventQueue<u32> = (0..3).map(|i| (SimTime::from_ns(i), i as u32)).collect();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(1), 'a');
        q.push(SimTime::from_ns(5), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_ns(3), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }
}
