//! Kernel perf counters: cheap, always-on instrumentation so performance
//! regressions show up as numbers in `BENCH_kernel.json`, not as vibes.
//!
//! Two layers:
//!
//! - A process-global heap-allocation tally. The libraries in this
//!   workspace are `#![forbid(unsafe_code)]` and cannot install a
//!   `#[global_allocator]`; binaries that do (e.g. `kernel_bench`) feed
//!   every allocation through [`record_heap_alloc`], and the sim core
//!   snapshots [`heap_allocs`] around its steady-state loop to report
//!   allocations attributable to simulation alone (construction and
//!   teardown excluded). In binaries without a counting allocator the
//!   tally simply stays at zero.
//! - [`KernelCounters`], a per-run snapshot of queue traffic, ladder
//!   spills, and arena high-water marks that the network and port layers
//!   fill in and the bench binary serializes.

use std::sync::atomic::{AtomicU64, Ordering};

static HEAP_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Records one heap allocation. Called from a counting
/// `#[global_allocator]` in bench binaries; relaxed ordering keeps the
/// hot-path cost to a single uncontended atomic add.
#[inline]
pub fn record_heap_alloc() {
    HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Total heap allocations recorded so far in this process (zero unless a
/// counting allocator is installed). Snapshot before and after a region to
/// attribute allocations to it.
#[inline]
pub fn heap_allocs() -> u64 {
    HEAP_ALLOCS.load(Ordering::Relaxed)
}

/// A per-simulation snapshot of kernel-internal traffic, filled in by the
/// network/port layers at the end of a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Events pushed into the event queue.
    pub events_scheduled: u64,
    /// Events popped from the event queue.
    pub events_processed: u64,
    /// High-water mark of simultaneously pending events.
    pub queue_peak: u64,
    /// Ladder pushes that missed the bucket window (overflow-rung traffic).
    pub bucket_spills: u64,
    /// Ladder window re-anchors from the overflow rung.
    pub rewindows: u64,
    /// High-water mark of live packets in the packet arena.
    pub arena_high_water: u64,
    /// Heap allocations during the steady-state loop (requires a counting
    /// allocator in the binary; zero otherwise).
    pub steady_heap_allocs: u64,
}
