//! Statistics primitives: counters, accumulators, running moments, and
//! log-scale latency histograms.
//!
//! These types are the measurement substrate for the paper's figures: the
//! latency breakdowns of Fig. 5 are three [`Accumulator`]s per configuration
//! (to-memory, in-memory, from-memory), the energy breakdown of Fig. 15 is a
//! set of [`Counter`]s, and queue-depth distributions use [`Histogram`].

use std::fmt;

use crate::time::SimDuration;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use mn_sim::Counter;
///
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Accumulates a stream of durations and reports sum / count / mean / min / max.
///
/// # Example
///
/// ```
/// use mn_sim::{Accumulator, SimDuration};
///
/// let mut acc = Accumulator::new();
/// acc.record(SimDuration::from_ns(10));
/// acc.record(SimDuration::from_ns(30));
/// assert_eq!(acc.mean(), SimDuration::from_ns(20));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Accumulator {
    sum_ps: u128,
    count: u64,
    min_ps: u64,
    max_ps: u64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            sum_ps: 0,
            count: 0,
            min_ps: u64::MAX,
            max_ps: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let ps = d.as_ps();
        self.sum_ps += ps as u128;
        self.count += 1;
        self.min_ps = self.min_ps.min(ps);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        self.sum_ps += other.sum_ps;
        self.count += other.count;
        self.min_ps = self.min_ps.min(other.min_ps);
        self.max_ps = self.max_ps.max(other.max_ps);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> SimDuration {
        SimDuration::from_ps(u64::try_from(self.sum_ps).unwrap_or(u64::MAX))
    }

    /// Arithmetic mean, or [`SimDuration::ZERO`] when empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps((self.sum_ps / self.count as u128) as u64)
        }
    }

    /// Mean in fractional nanoseconds (convenient for reporting).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ps as f64 / self.count as f64 / 1_000.0
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_ps(self.min_ps))
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_ps(self.max_ps))
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact internal state `(sum_ps, count, min_ps, max_ps)`, for
    /// lossless serialization (e.g. the campaign result cache).
    pub fn raw_parts(&self) -> (u128, u64, u64, u64) {
        (self.sum_ps, self.count, self.min_ps, self.max_ps)
    }

    /// Rebuilds an accumulator from [`Accumulator::raw_parts`] output.
    pub fn from_raw_parts(sum_ps: u128, count: u64, min_ps: u64, max_ps: u64) -> Accumulator {
        Accumulator {
            sum_ps,
            count,
            min_ps,
            max_ps,
        }
    }
}

/// Welford online mean/variance over `f64` samples.
///
/// Used for confidence checks on workload generators and for queue-depth
/// statistics where the sample is not a duration.
///
/// # Example
///
/// ```
/// use mn_sim::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty instance.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn population_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }
}

/// A power-of-two bucketed histogram of durations.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` picoseconds (bucket 0 additionally
/// includes zero). Coarse but allocation-free and adequate for spotting
/// queuing-latency tail shifts.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram able to hold any `u64` picosecond value (64 buckets).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            total: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ps = d.as_ps();
        let idx = if ps == 0 {
            0
        } else {
            63 - ps.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Merges another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Iterator over `(bucket_floor, count)` for non-empty buckets, where
    /// `bucket_floor` is the inclusive lower bound of the bucket.
    pub fn iter(&self) -> impl Iterator<Item = (SimDuration, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let floor = if i == 0 { 0 } else { 1u64 << i };
                (SimDuration::from_ps(floor), c)
            })
    }

    /// The raw bucket counts (64 entries), for lossless serialization.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuilds a histogram from [`Histogram::bucket_counts`] output;
    /// shorter slices are zero-padded to 64 buckets.
    pub fn from_bucket_counts(counts: &[u64]) -> Histogram {
        let mut buckets = vec![0; 64];
        buckets[..counts.len().min(64)].copy_from_slice(&counts[..counts.len().min(64)]);
        let total = buckets.iter().sum();
        Histogram { buckets, total }
    }

    /// An approximate quantile: the lower bound of the bucket containing the
    /// `q`-th sample. Returns `None` if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let target = ((self.total as f64 * q).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let floor = if i == 0 { 0 } else { 1u64 << i };
                return Some(SimDuration::from_ps(floor));
            }
        }
        None
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(format!("{c}"), "10");
    }

    #[test]
    fn accumulator_basics() {
        let mut a = Accumulator::new();
        assert!(a.is_empty());
        assert_eq!(a.mean(), SimDuration::ZERO);
        a.record(SimDuration::from_ns(10));
        a.record(SimDuration::from_ns(20));
        a.record(SimDuration::from_ns(60));
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), SimDuration::from_ns(30));
        assert_eq!(a.min(), Some(SimDuration::from_ns(10)));
        assert_eq!(a.max(), Some(SimDuration::from_ns(60)));
        assert_eq!(a.sum(), SimDuration::from_ns(90));
        assert!((a.mean_ns() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_merge() {
        let mut a = Accumulator::new();
        a.record(SimDuration::from_ns(1));
        let mut b = Accumulator::new();
        b.record(SimDuration::from_ns(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimDuration::from_ns(2));
    }

    #[test]
    fn running_stats_welford() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.population_variance() - 1.25).abs() < 1e-12);
        assert!((s.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        assert!(h.quantile(0.5).is_none());
        h.record(SimDuration::from_ps(0));
        h.record(SimDuration::from_ps(1));
        h.record(SimDuration::from_ps(1024));
        h.record(SimDuration::from_ps(1500));
        assert_eq!(h.total(), 4);
        // Two samples in bucket 0/1 territory, two in the 1024 bucket.
        let q50 = h.quantile(0.5).unwrap();
        assert!(q50 <= SimDuration::from_ps(1));
        let q100 = h.quantile(1.0).unwrap();
        assert_eq!(q100, SimDuration::from_ps(1024));
        assert!(h.iter().count() >= 2);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn histogram_rejects_bad_quantile() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn histogram_merge_sums_buckets() {
        let mut a = Histogram::new();
        a.record(SimDuration::from_ps(100));
        let mut b = Histogram::new();
        b.record(SimDuration::from_ps(100));
        b.record(SimDuration::from_ps(5000));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.quantile(1.0), Some(SimDuration::from_ps(4096)));
    }
}
