//! A generation-indexed arena: pool-allocated slots addressed by copyable
//! handles, with stale-handle detection.
//!
//! The network layer stores every in-flight packet here and threads
//! 8-byte [`ArenaRef`] handles through buffers and events instead of
//! moving near-cache-line packet structs around. Slots are recycled through
//! a free list, so after the arena reaches its high-water mark the
//! steady-state simulation path performs no heap allocation; each slot
//! carries a generation counter bumped on removal, so a handle kept past
//! its packet's lifetime is caught (`get` returns `None`, `remove`
//! panics) instead of silently aliasing a recycled slot.

/// A copyable handle into a [`GenArena`]. Valid until the entry it points
/// at is removed; stale handles are detected via the generation counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaRef {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational slot arena with free-list recycling and a high-water
/// mark.
///
/// # Example
///
/// ```
/// use mn_sim::GenArena;
///
/// let mut arena: GenArena<&'static str> = GenArena::new();
/// let a = arena.insert("alpha");
/// let b = arena.insert("beta");
/// assert_eq!(arena.get(a), Some(&"alpha"));
/// assert_eq!(arena.remove(b), "beta");
/// assert_eq!(arena.get(b), None); // stale handle detected
/// let c = arena.insert("gamma"); // recycles b's slot, no allocation
/// assert_eq!(arena.get(c), Some(&"gamma"));
/// assert_eq!(arena.high_water(), 2);
/// ```
#[derive(Debug, Default)]
pub struct GenArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    high_water: usize,
}

impl<T> GenArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        GenArena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            high_water: 0,
        }
    }

    /// Creates an empty arena with room for `capacity` entries before any
    /// slot allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        GenArena {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            len: 0,
            high_water: 0,
        }
    }

    /// Stores `value`, returning a handle to it. Recycles a freed slot if
    /// one exists; otherwise grows the slot vector.
    pub fn insert(&mut self, value: T) -> ArenaRef {
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            ArenaRef {
                index,
                generation: slot.generation,
            }
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena overflow");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            ArenaRef {
                index,
                generation: 0,
            }
        }
    }

    /// The entry behind `handle`, or `None` if it was removed (stale
    /// generation).
    pub fn get(&self, handle: ArenaRef) -> Option<&T> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable access to the entry behind `handle`, or `None` if stale.
    pub fn get_mut(&mut self, handle: ArenaRef) -> Option<&mut T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Removes and returns the entry behind `handle`, bumping the slot's
    /// generation so outstanding copies of the handle turn stale.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale or the slot is already empty — a
    /// double-free in the caller's lifetime logic.
    pub fn remove(&mut self, handle: ArenaRef) -> T {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale arena handle (slot recycled)"
        );
        let value = slot.value.take().expect("arena slot already empty");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.len -= 1;
        value
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The most entries ever live at once — the slot count the arena had
    /// to materialize. Post-warm-up inserts below this mark never
    /// allocate.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of materialized slots (live + recyclable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = GenArena::new();
        let a = arena.insert(10);
        let b = arena.insert(20);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), Some(&10));
        *arena.get_mut(b).unwrap() += 1;
        assert_eq!(arena.remove(b), 21);
        assert_eq!(arena.remove(a), 10);
        assert!(arena.is_empty());
    }

    #[test]
    fn stale_handles_are_detected() {
        let mut arena = GenArena::new();
        let a = arena.insert('x');
        arena.remove(a);
        assert_eq!(arena.get(a), None);
        let b = arena.insert('y'); // recycles the slot
        assert_eq!(b.index, a.index);
        assert_ne!(b.generation, a.generation);
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.get(b), Some(&'y'));
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn double_remove_panics() {
        let mut arena = GenArena::new();
        let a = arena.insert(1);
        arena.remove(a);
        arena.insert(2); // recycle
        arena.remove(a);
    }

    #[test]
    fn recycling_holds_slot_count_at_high_water() {
        let mut arena = GenArena::with_capacity(4);
        let mut live = Vec::new();
        for i in 0..4 {
            live.push(arena.insert(i));
        }
        assert_eq!(arena.high_water(), 4);
        for _ in 0..100 {
            let h = live.pop().unwrap();
            arena.remove(h);
            live.push(arena.insert(0));
        }
        assert_eq!(arena.capacity(), 4);
        assert_eq!(arena.high_water(), 4);
    }
}
