//! A livelock watchdog for simulation driver loops.
//!
//! Discrete-event drivers are supposed to terminate because some progress
//! metric (completed requests, delivered packets) reaches a target. A bug
//! anywhere in the stack — a lost wakeup, a credit leak, a routing cycle —
//! turns that loop into an infinite one. [`Watchdog`] bounds the damage:
//! the driver reports its progress metric once per iteration, and when the
//! metric fails to advance for a configured number of consecutive
//! observations the watchdog trips, letting the driver abort with a
//! structured error (and a state snapshot) instead of hanging the worker.

/// Trips after a progress metric stays flat for `limit` observations.
///
/// # Example
///
/// ```
/// use mn_sim::Watchdog;
///
/// let mut dog = Watchdog::new(3);
/// assert!(!dog.observe(0)); // first observation arms the watchdog
/// assert!(!dog.observe(1)); // progress: counter resets
/// assert!(!dog.observe(1));
/// assert!(!dog.observe(1));
/// assert!(dog.observe(1)); // three flat observations after the last advance
/// ```
#[derive(Debug, Clone)]
pub struct Watchdog {
    limit: u64,
    idle: u64,
    last: Option<u64>,
}

impl Watchdog {
    /// A watchdog that trips after `limit` consecutive observations with
    /// no progress.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero — a watchdog that trips on the first
    /// observation would report every simulation as stalled.
    pub fn new(limit: u64) -> Watchdog {
        assert!(limit > 0, "watchdog limit must be positive");
        Watchdog {
            limit,
            idle: 0,
            last: None,
        }
    }

    /// Records the current progress metric. Returns `true` when the metric
    /// has not advanced for `limit` consecutive observations — the caller
    /// should abort with a diagnostic rather than keep looping.
    ///
    /// The metric may be any monotonically non-decreasing counter; the
    /// watchdog only compares consecutive values, so a metric that *moves*
    /// (in either direction) counts as progress.
    pub fn observe(&mut self, progress: u64) -> bool {
        match self.last {
            Some(last) if last == progress => {
                self.idle += 1;
                self.idle >= self.limit
            }
            _ => {
                self.last = Some(progress);
                self.idle = 0;
                false
            }
        }
    }

    /// Consecutive no-progress observations so far.
    pub fn idle_observations(&self) -> u64 {
        self.idle
    }

    /// The configured trip threshold.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_limit_flat_observations() {
        let mut dog = Watchdog::new(5);
        assert!(!dog.observe(10));
        for _ in 0..4 {
            assert!(!dog.observe(10));
        }
        assert!(dog.observe(10));
        // Once tripped it stays tripped while the metric is flat.
        assert!(dog.observe(10));
    }

    #[test]
    fn progress_resets_the_counter() {
        let mut dog = Watchdog::new(2);
        assert!(!dog.observe(0));
        assert!(!dog.observe(0));
        assert!(!dog.observe(1)); // advanced just in time
        assert!(!dog.observe(1));
        assert_eq!(dog.idle_observations(), 1);
        assert!(dog.observe(1));
    }

    #[test]
    fn any_movement_counts_as_progress() {
        // The metric is *supposed* to be monotone, but the watchdog only
        // requires movement — a driver that recounts a shrinking queue
        // still demonstrates liveness.
        let mut dog = Watchdog::new(2);
        assert!(!dog.observe(5));
        assert!(!dog.observe(3));
        assert!(!dog.observe(3));
        assert!(dog.observe(3));
    }

    #[test]
    #[should_panic(expected = "watchdog limit must be positive")]
    fn zero_limit_rejected() {
        let _ = Watchdog::new(0);
    }
}
