//! # mn-sim — discrete-event simulation kernel
//!
//! This crate provides the time base, event queue, deterministic random
//! number generation, and statistics primitives shared by every other crate
//! in the `mncube` workspace (the reproduction of *"There and Back Again:
//! Optimizing the Interconnect in Networks of Memory Cubes"*, ISCA 2017).
//!
//! The kernel is deliberately generic: it knows nothing about memory cubes,
//! routers, or packets. Higher layers define their own event payload types
//! and drive an [`EventQueue`] to completion.
//!
//! ## Time base
//!
//! Simulated time is measured in **picoseconds** stored in a `u64`. At
//! picosecond resolution a `u64` covers ~213 days of simulated time, far
//! beyond any experiment in this workspace, while still resolving the
//! sub-nanosecond serialization delays of 15 Gbps SerDes lanes
//! (one byte at 30 GB/s ≈ 33 ps).
//!
//! ## Example
//!
//! ```
//! use mn_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::from_ns(5), "second");
//! queue.push(SimTime::ZERO + SimDuration::from_ns(2), "first");
//!
//! let (t, ev) = queue.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, SimTime::from_ns(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
pub mod counters;
mod event;
pub mod ladder;
mod rng;
mod slab;
mod stats;
mod time;
mod watchdog;

pub use arena::{ArenaRef, GenArena};
pub use counters::KernelCounters;
pub use event::{EventQueue, Scheduled};
pub use ladder::LadderQueue;
pub use rng::SimRng;
pub use slab::SeqSlab;
pub use stats::{Accumulator, Counter, Histogram, RunningStats};
pub use time::{SimDuration, SimTime};
pub use watchdog::Watchdog;
