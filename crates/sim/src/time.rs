//! Simulated time: instants ([`SimTime`]) and spans ([`SimDuration`]).
//!
//! Both types are newtypes over `u64` picoseconds. Keeping instants and
//! durations distinct catches a whole class of unit bugs statically: an
//! instant plus an instant does not compile, an instant minus an instant is
//! a duration, and so on.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in picoseconds since simulation start.
///
/// # Example
///
/// ```
/// use mn_sim::{SimTime, SimDuration};
///
/// let t = SimTime::from_ns(10) + SimDuration::from_ps(500);
/// assert_eq!(t.as_ps(), 10_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
///
/// # Example
///
/// ```
/// use mn_sim::SimDuration;
///
/// let serialization = SimDuration::from_ps(33) * 80; // 80-byte packet
/// assert_eq!(serialization.as_ps(), 2640);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates an instant from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// This instant as picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant as (truncated) nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant as fractional nanoseconds since simulation start.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future (saturating).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a span from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a span from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a span from fractional nanoseconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "duration must be finite and non-negative, got {ns}"
        );
        SimDuration((ns * 1_000.0).round() as u64)
    }

    /// This span in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This span in (truncated) nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// This span in fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is larger.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than self"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime minus SimDuration underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ns(7).as_ps(), 7_000);
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimDuration::from_ns(2).as_ps(), 2_000);
        assert_eq!(SimDuration::from_us(1).as_ns(), 1_000);
    }

    #[test]
    fn instant_plus_span() {
        let t = SimTime::from_ns(10) + SimDuration::from_ns(5);
        assert_eq!(t, SimTime::from_ns(15));
    }

    #[test]
    fn instant_minus_instant_is_span() {
        let d = SimTime::from_ns(15) - SimTime::from_ns(10);
        assert_eq!(d, SimDuration::from_ns(5));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn instant_subtraction_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_ns(1);
        let late = SimTime::from_ns(9);
        assert_eq!(late.saturating_since(early), SimDuration::from_ns(8));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn span_arithmetic() {
        let d = SimDuration::from_ps(33) * 80;
        assert_eq!(d.as_ps(), 2_640);
        assert_eq!((d / 2).as_ps(), 1_320);
        assert_eq!(
            SimDuration::from_ns(3) + SimDuration::from_ns(4),
            SimDuration::from_ns(7)
        );
    }

    #[test]
    fn from_ns_f64_rounds() {
        assert_eq!(SimDuration::from_ns_f64(2.6667).as_ps(), 2_667);
        assert_eq!(SimDuration::from_ns_f64(0.0).as_ps(), 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_ns_f64_rejects_negative() {
        let _ = SimDuration::from_ns_f64(-1.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }

    #[test]
    fn display_formats_as_ns() {
        assert_eq!(format!("{}", SimTime::from_ps(1_500)), "1.500ns");
        assert_eq!(format!("{}", SimDuration::from_ns(2)), "2.000ns");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_ns(1);
        let y = SimDuration::from_ns(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
        assert_eq!(y.saturating_sub(x), x);
        assert_eq!(x.saturating_sub(y), SimDuration::ZERO);
    }
}
