//! A slab for values keyed by sequentially issued `u64` identifiers.
//!
//! Discrete-event simulators hand out monotonically increasing tokens
//! (packet ids, burst ids, transaction tags) and look the associated state
//! up on every completion. A `HashMap<u64, T>` pays hashing and probing on
//! the hottest path of the simulation for keys that are, by construction,
//! dense and ascending. [`SeqSlab`] exploits that structure: storage is a
//! ring of slots offset by the lowest live key, so insert/get/remove are
//! array indexing, and memory stays proportional to the *live* key window
//! (the in-flight requests), not the total ever issued.

use std::collections::VecDeque;

/// A map from sequentially issued `u64` keys to values, backed by a ring
/// buffer over the live key window.
///
/// Keys must be inserted in strictly increasing order (gaps are fine); any
/// key may be removed at any time. The ring's base advances as the oldest
/// keys are removed, so steady-state operation allocates nothing.
///
/// # Example
///
/// ```
/// use mn_sim::SeqSlab;
///
/// let mut slab = SeqSlab::new();
/// slab.insert(10, "a");
/// slab.insert(11, "b");
/// assert_eq!(slab.get(10), Some(&"a"));
/// assert_eq!(slab.remove(10), Some("a"));
/// assert_eq!(slab.get(10), None);
/// assert_eq!(slab.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SeqSlab<T> {
    /// Key of `slots[0]`.
    base: u64,
    slots: VecDeque<Option<T>>,
    live: usize,
}

impl<T> SeqSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> SeqSlab<T> {
        SeqSlab {
            base: 0,
            slots: VecDeque::new(),
            live: 0,
        }
    }

    /// Creates an empty slab with room for `capacity` concurrently live
    /// keys before reallocating.
    pub fn with_capacity(capacity: usize) -> SeqSlab<T> {
        SeqSlab {
            base: 0,
            slots: VecDeque::with_capacity(capacity),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts `value` under `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not larger than every previously inserted key —
    /// sequential issue is the contract that makes the slab an array.
    pub fn insert(&mut self, key: u64, value: T) {
        if self.slots.is_empty() {
            self.base = key;
        }
        let idx = key
            .checked_sub(self.base)
            .unwrap_or_else(|| panic!("key {key} issued out of order (base {})", self.base));
        let idx = usize::try_from(idx).expect("key window exceeds addressable memory");
        assert!(
            idx >= self.slots.len(),
            "key {key} issued out of order (next free {})",
            self.base + self.slots.len() as u64
        );
        while self.slots.len() < idx {
            self.slots.push_back(None);
        }
        self.slots.push_back(Some(value));
        self.live += 1;
    }

    /// The value under `key`, if live.
    pub fn get(&self, key: u64) -> Option<&T> {
        let idx = usize::try_from(key.checked_sub(self.base)?).ok()?;
        self.slots.get(idx)?.as_ref()
    }

    /// Mutable access to the value under `key`, if live.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        let idx = usize::try_from(key.checked_sub(self.base)?).ok()?;
        self.slots.get_mut(idx)?.as_mut()
    }

    /// Removes and returns the value under `key`, advancing the ring past
    /// any leading dead slots.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let idx = usize::try_from(key.checked_sub(self.base)?).ok()?;
        let value = self.slots.get_mut(idx)?.take()?;
        self.live -= 1;
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        if self.slots.is_empty() {
            self.base = 0;
        }
        Some(value)
    }

    /// The number of slots currently held (live window size), for
    /// diagnostics and capacity tests.
    pub fn window(&self) -> usize {
        self.slots.len()
    }
}

impl<T> Default for SeqSlab<T> {
    fn default() -> Self {
        SeqSlab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = SeqSlab::new();
        assert!(s.is_empty());
        for k in 0..10u64 {
            s.insert(k, k * 2);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.get(7), Some(&14));
        assert_eq!(s.get_mut(7).map(|v| std::mem::replace(v, 0)), Some(14));
        assert_eq!(s.get(7), Some(&0));
        assert_eq!(s.remove(7), Some(0));
        assert_eq!(s.get(7), None);
        assert_eq!(s.remove(7), None);
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn out_of_order_removal_advances_base_lazily() {
        let mut s = SeqSlab::new();
        for k in 0..4u64 {
            s.insert(k, k);
        }
        // Remove from the middle first: the window cannot shrink yet.
        s.remove(1);
        s.remove(2);
        assert_eq!(s.window(), 4);
        // Removing the head releases the whole dead prefix.
        s.remove(0);
        assert_eq!(s.window(), 1);
        assert_eq!(s.get(3), Some(&3));
        s.remove(3);
        assert!(s.is_empty());
        assert_eq!(s.window(), 0);
    }

    #[test]
    fn survives_emptying_and_reuse() {
        let mut s = SeqSlab::new();
        s.insert(5, 'a');
        assert_eq!(s.remove(5), Some('a'));
        // Fully drained: any larger starting key is accepted again.
        s.insert(100, 'b');
        assert_eq!(s.get(100), Some(&'b'));
        assert_eq!(s.get(5), None);
        assert_eq!(s.get(99), None);
    }

    #[test]
    fn gaps_between_keys_are_dead_slots() {
        let mut s = SeqSlab::new();
        s.insert(0, 0);
        s.insert(5, 5);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(3), None);
        assert_eq!(s.remove(3), None);
        assert_eq!(s.remove(0), Some(0));
        assert_eq!(s.window(), 1);
    }

    #[test]
    fn steady_state_window_stays_small() {
        let mut s = SeqSlab::with_capacity(8);
        for k in 0..10_000u64 {
            s.insert(k, k);
            if k >= 4 {
                assert_eq!(s.remove(k - 4), Some(k - 4));
            }
        }
        assert_eq!(s.len(), 4);
        assert!(s.window() <= 5, "window {}", s.window());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_non_monotonic_keys() {
        let mut s = SeqSlab::new();
        s.insert(4, ());
        s.insert(3, ());
    }

    #[test]
    fn keys_far_beyond_capacity_grow_the_window() {
        // Issuing a key much larger than the pre-sized capacity must not
        // corrupt addressing: the window grows to span the gap and every
        // live key stays reachable.
        let mut s = SeqSlab::with_capacity(4);
        s.insert(0, 'a');
        s.insert(100, 'b'); // 25x the hinted capacity
        assert_eq!(s.len(), 2);
        assert_eq!(s.window(), 101);
        assert_eq!(s.get(0), Some(&'a'));
        assert_eq!(s.get(100), Some(&'b'));
        // Every key inside the gap is dead, not aliased.
        for k in 1..100 {
            assert_eq!(s.get(k), None, "gap key {k}");
        }
        assert_eq!(s.remove(0), Some('a'));
        assert_eq!(s.window(), 1, "dead prefix released");
        assert_eq!(s.get(100), Some(&'b'));
    }

    #[test]
    fn take_after_wrap_hits_the_right_slot() {
        // Drive the ring through many base advances (the VecDeque wraps its
        // backing buffer repeatedly), then check lookups still address the
        // logical keys, not stale physical slots.
        let mut s = SeqSlab::with_capacity(4);
        for k in 0..1_000u64 {
            s.insert(k, k * 3);
            if k >= 3 {
                assert_eq!(s.remove(k - 3), Some((k - 3) * 3));
            }
        }
        // Live window is now {997, 998, 999}.
        assert_eq!(s.len(), 3);
        for k in 997..1_000 {
            assert_eq!(s.get(k), Some(&(k * 3)), "post-wrap key {k}");
        }
        // Keys below the advanced base are out of the window entirely.
        assert_eq!(s.get(0), None);
        assert_eq!(s.get(996), None);
        assert_eq!(s.get_mut(500), None);
        assert_eq!(s.remove(123), None);
        // Keys above the window are out of range, not a panic.
        assert_eq!(s.get(1_000), None);
        assert_eq!(s.remove(u64::MAX), None);
    }

    #[test]
    fn double_take_is_none_and_keeps_neighbors() {
        let mut s = SeqSlab::new();
        for k in 10..14u64 {
            s.insert(k, k);
        }
        assert_eq!(s.remove(12), Some(12));
        // Taking the same key again is a clean miss…
        assert_eq!(s.remove(12), None);
        assert_eq!(s.get(12), None);
        // …and the surrounding keys are untouched by either take.
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(11), Some(&11));
        assert_eq!(s.get(13), Some(&13));
        // Double-take of the head slot must not advance the base twice.
        assert_eq!(s.remove(10), Some(10));
        assert_eq!(s.remove(10), None);
        assert_eq!(s.get(11), Some(&11));
        assert_eq!(s.get(13), Some(&13));
    }
}
