//! Differential property test: the ladder queue against a binary-heap
//! reference, driven with identical randomized push/pop schedules.
//!
//! The reference is the exact structure `EventQueue` used before kernel
//! v3 — a max-heap of [`Scheduled`] entries whose inverted `(time, seq)`
//! ordering delivers same-instant events in FIFO order. The goldens pin
//! that pop order bit-for-bit, so the ladder must reproduce it exactly on
//! every schedule, including same-instant bursts, bucket-boundary times,
//! window-overflowing far-future pushes, and pushes behind the window
//! anchor.

use std::collections::BinaryHeap;

use mn_sim::ladder::{BUCKET_PS, N_BUCKETS};
use mn_sim::{LadderQueue, Scheduled, SimRng, SimTime};

/// The pre-v3 `EventQueue` core: a `BinaryHeap` with an insertion-seq
/// tie-break.
struct HeapQueue {
    heap: BinaryHeap<Scheduled<u32>>,
    next_seq: u64,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    fn push(&mut self, time: SimTime, event: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled::new(time, seq, event));
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }
}

const WINDOW_PS: u64 = N_BUCKETS as u64 * BUCKET_PS;

/// Draws a schedule-relative firing offset, biased toward the adversarial
/// cases: same-instant reuse, exact bucket/window boundaries, and
/// far-future spills.
fn draw_offset(rng: &mut SimRng, recent: &[u64]) -> u64 {
    match rng.below(10) {
        // Same instant as a recent push: exercises every FIFO tie path.
        0..=2 if !recent.is_empty() => recent[rng.below(recent.len() as u64) as usize],
        // Exact bucket boundaries around the window anchor.
        3 => rng.below(4) * BUCKET_PS,
        4 => (rng.below(N_BUCKETS as u64) + 1) * BUCKET_PS - 1,
        // Beyond the window: overflow rung + rewindow.
        5 => WINDOW_PS + rng.below(3 * WINDOW_PS),
        6 => WINDOW_PS * rng.below(8),
        // Short horizon, the common case.
        _ => rng.below(2 * WINDOW_PS),
    }
}

fn run_schedule(seed: u64, ops: usize) {
    let mut rng = SimRng::seed_from(seed);
    let mut ladder: LadderQueue<u32> = LadderQueue::new();
    let mut heap = HeapQueue::new();
    let mut recent: Vec<u64> = Vec::new();
    let mut now = 0u64;
    let mut tag = 0u32;

    for op in 0..ops {
        // Bias toward pushes so the queues stay populated, with occasional
        // pop bursts that drain across bucket and window boundaries.
        let do_push = ladder.is_empty() || rng.below(100) < 55;
        if do_push {
            let burst = 1 + rng.geometric(0.4, 8);
            for _ in 0..burst {
                let t = now + draw_offset(&mut rng, &recent);
                recent.push(t);
                if recent.len() > 8 {
                    recent.remove(0);
                }
                ladder.push(SimTime::from_ps(t), tag);
                heap.push(SimTime::from_ps(t), tag);
                tag += 1;
            }
        } else {
            let burst = 1 + rng.geometric(0.5, 16) as usize;
            for _ in 0..burst {
                assert_eq!(
                    ladder.peek_time(),
                    heap.peek_time(),
                    "peek diverged (seed {seed}, op {op})"
                );
                let l = ladder.pop();
                let h = heap.pop();
                assert_eq!(l, h, "pop diverged (seed {seed}, op {op})");
                match l {
                    Some((t, _)) => now = t.as_ps(),
                    None => break,
                }
            }
        }
    }

    // Drain both queues to the end.
    loop {
        assert_eq!(
            ladder.peek_time(),
            heap.peek_time(),
            "drain peek (seed {seed})"
        );
        let l = ladder.pop();
        let h = heap.pop();
        assert_eq!(l, h, "drain pop diverged (seed {seed})");
        if l.is_none() {
            break;
        }
    }
    assert!(ladder.is_empty());
}

#[test]
fn ladder_matches_binary_heap_reference() {
    for seed in 0..64 {
        run_schedule(0xD1FF_0000 + seed, 2_000);
    }
}

#[test]
fn ladder_matches_reference_on_long_schedules() {
    for seed in 0..4 {
        run_schedule(0x4C0A_D500_u64.wrapping_add(seed), 40_000);
    }
}

#[test]
fn ladder_matches_reference_on_pure_same_instant_bursts() {
    // Everything at a handful of instants: the pop order is decided purely
    // by the FIFO tie-break.
    let mut ladder: LadderQueue<u32> = LadderQueue::new();
    let mut heap = HeapQueue::new();
    let mut rng = SimRng::seed_from(77);
    let instants = [0u64, 1, BUCKET_PS - 1, BUCKET_PS, WINDOW_PS, WINDOW_PS + 1];
    for tag in 0..3_000u32 {
        let t = SimTime::from_ps(instants[rng.below(instants.len() as u64) as usize]);
        ladder.push(t, tag);
        heap.push(t, tag);
    }
    loop {
        let l = ladder.pop();
        assert_eq!(l, heap.pop());
        if l.is_none() {
            break;
        }
    }
}
