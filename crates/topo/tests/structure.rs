//! Structural integration tests across topology builders, routing, and
//! metrics — including the properties the paper's figures rely on.

use mn_topo::{
    render_ascii, CubeTech, NodeKind, NvmPlacement, PathClass, Placement, Topology, TopologyKind,
    TopologyMetrics,
};

#[test]
fn metacube_interfaces_form_a_star_for_four_packages() {
    let topo = Topology::build(
        TopologyKind::MetaCube,
        &Placement::homogeneous(16, CubeTech::Dram),
    )
    .unwrap();
    let interfaces: Vec<_> = topo
        .node_ids()
        .filter(|&n| topo.node(n).kind == NodeKind::Interface)
        .collect();
    assert_eq!(interfaces.len(), 4);
    // The first interface chip fans out to the other three (high radix).
    let hub = interfaces[0];
    assert_eq!(topo.degree(hub), 1 + 3 + 4); // host + 3 peers + 4 cubes
    for &leaf in &interfaces[1..] {
        assert_eq!(topo.degree(leaf), 1 + 4);
    }
}

#[test]
fn metacube_scales_past_one_tree_level() {
    // 32 cubes (the four-port study) need 8 packages: a two-level tree of
    // interface chips.
    let topo = Topology::build(
        TopologyKind::MetaCube,
        &Placement::homogeneous(32, CubeTech::Dram),
    )
    .unwrap();
    let routes = topo.routing();
    let max = (1..=32)
        .map(|p| routes.read_hops(topo.host(), topo.cube_at_position(p).unwrap()))
        .max()
        .unwrap();
    assert!(max <= 4, "8 packages stay within two IF levels, got {max}");
}

#[test]
fn all_topologies_have_single_host_link_except_none() {
    // The §4.2 bandwidth argument: MN throughput is bounded by the single
    // link back to the host port — true for every topology here.
    for kind in TopologyKind::ALL {
        let topo = Topology::build(kind, &Placement::homogeneous(16, CubeTech::Dram)).unwrap();
        assert_eq!(topo.degree(topo.host()), 1, "{kind}");
    }
}

#[test]
fn skip_list_scales_logarithmically() {
    for n in [8usize, 16, 24] {
        let topo = Topology::build(
            TopologyKind::SkipList,
            &Placement::homogeneous(n, CubeTech::Dram),
        )
        .unwrap();
        let m = TopologyMetrics::compute(&topo);
        let bound = 2.0 * (n as f64).log2().ceil() + 2.0;
        assert!(
            f64::from(m.max_read_hops) <= bound,
            "{n} cubes: {} hops exceeds ~2log2(n)={bound}",
            m.max_read_hops
        );
        assert_eq!(m.max_write_hops as usize, n, "writes ride the chain");
    }
}

#[test]
fn nvm_mixes_shrink_every_topology() {
    for kind in TopologyKind::ALL {
        let all_dram = Topology::build(
            kind,
            &Placement::mixed_by_capacity(1.0, NvmPlacement::Last).unwrap(),
        )
        .unwrap();
        let half = Topology::build(
            kind,
            &Placement::mixed_by_capacity(0.5, NvmPlacement::Last).unwrap(),
        )
        .unwrap();
        let m_all = TopologyMetrics::compute(&all_dram);
        let m_half = TopologyMetrics::compute(&half);
        assert!(
            m_half.max_read_hops <= m_all.max_read_hops,
            "{kind}: smaller networks cannot be deeper"
        );
        assert!(half.cube_count() < all_dram.cube_count());
    }
}

#[test]
fn write_paths_avoid_skip_links_entirely() {
    let topo = Topology::build(
        TopologyKind::SkipList,
        &Placement::homogeneous(16, CubeTech::Dram),
    )
    .unwrap();
    let routes = topo.routing();
    for (cube, _) in topo.cubes() {
        for link in routes.path_links(PathClass::Write, topo.host(), cube) {
            assert!(!topo.link(link).skip);
        }
    }
}

#[test]
fn renders_every_topology() {
    for kind in TopologyKind::ALL {
        let topo = Topology::build(kind, &Placement::homogeneous(10, CubeTech::Dram)).unwrap();
        let ascii = render_ascii(&topo);
        assert!(ascii.contains("HOST"), "{kind}");
        assert!(ascii.lines().count() >= topo.node_count(), "{kind}");
    }
}

#[test]
fn capacity_weighted_hops_follow_placement_on_every_topology() {
    for kind in [
        TopologyKind::Chain,
        TopologyKind::Ring,
        TopologyKind::SkipList,
    ] {
        let last = Topology::build(
            kind,
            &Placement::mixed_by_capacity(0.5, NvmPlacement::Last).unwrap(),
        )
        .unwrap();
        let first = Topology::build(
            kind,
            &Placement::mixed_by_capacity(0.5, NvmPlacement::First).unwrap(),
        )
        .unwrap();
        let m_last = TopologyMetrics::compute(&last);
        let m_first = TopologyMetrics::compute(&first);
        assert!(
            m_last.capacity_weighted_read_hops >= m_first.capacity_weighted_read_hops,
            "{kind}: NVM-L pushes capacity (and thus traffic) farther out"
        );
    }
}
