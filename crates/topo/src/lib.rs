//! # mn-topo — memory-network topologies and routing
//!
//! This crate models the *structure* of a Memory Network (MN): which memory
//! cubes exist, what technology each is built from, how the point-to-point
//! links connect them to each other and to the host memory port, and which
//! path each class of traffic takes.
//!
//! It implements every topology evaluated in the ISCA 2017 paper
//! *"There and Back Again: Optimizing the Interconnect in Networks of Memory
//! Cubes"*:
//!
//! - [`TopologyKind::Chain`] — the baseline: cubes daisy-chained off the port
//!   (§3, Fig. 3b).
//! - [`TopologyKind::Ring`] — the host closes the chain into a cycle, halving
//!   the average hop count (Fig. 3c).
//! - [`TopologyKind::Tree`] — a ternary tree making full use of the four
//!   links per cube (Fig. 3d).
//! - [`TopologyKind::SkipList`] — the paper's proposed topology (§4.2,
//!   Fig. 8): a central sequential chain augmented with cascading skip links.
//!   Reads route over shortest paths using the skips; writes are shunted onto
//!   the chain.
//! - [`TopologyKind::MetaCube`] — "cube of cubes" (§4.3, Fig. 9): four cubes
//!   plus an interface chip on a silicon interposer per package, packages
//!   chained to the host.
//!
//! The crate is purely structural: link *latencies* and *bandwidths* are
//! assigned by the network layer (`mn-noc`), and memory timings by `mn-mem`.
//!
//! ## Example
//!
//! ```
//! use mn_topo::{Topology, TopologyKind, CubeTech, Placement, NvmPlacement};
//!
//! // 16 all-DRAM cubes as a skip list, like Fig. 8 of the paper.
//! let placement = Placement::homogeneous(16, CubeTech::Dram);
//! let topo = Topology::build(TopologyKind::SkipList, &placement).unwrap();
//! let routes = topo.routing();
//!
//! // The farthest cube is reachable in 5 hops (logarithmic, like a tree)...
//! let farthest = topo.cube_at_position(16).unwrap();
//! assert_eq!(routes.read_hops(topo.host(), farthest), 5);
//!
//! // ...while writes ride the full-length chain.
//! assert_eq!(routes.write_hops(topo.host(), farthest), 16);
//!
//! // Heterogeneous mixes place NVM cubes first or last (§3.3):
//! let half = Placement::mixed_by_capacity(0.5, NvmPlacement::Last).unwrap();
//! assert_eq!(half.cube_count(), 10); // 8 DRAM + 2 NVM (4x capacity)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builders;
mod error;
mod graph;
mod metrics;
mod placement;
mod routing;

pub use error::TopologyError;
pub use graph::{LinkClass, LinkId, LinkInfo, NodeId, NodeInfo, NodeKind, Topology, TopologyKind};
pub use metrics::{render_ascii, TopologyMetrics};
pub use placement::{CubeTech, NvmPlacement, Placement};
pub use routing::{PathClass, RoutingTable, NO_PORT};
