//! The topology graph: nodes (host, cubes, interface chips) and links.

use std::fmt;

use crate::builders;
use crate::error::TopologyError;
use crate::placement::{CubeTech, Placement};
use crate::routing::RoutingTable;

/// Identifies a node within one memory network. Node 0 is always the host
/// memory port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The host memory port.
    pub const HOST: NodeId = NodeId(0);

    /// The raw index, usable for dense per-node arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies an undirected link within one memory network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The raw index, usable for dense per-link arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The host processor's memory port (the root of every MN).
    Host,
    /// A memory cube of the given technology.
    Cube(CubeTech),
    /// A MetaCube interface chip: a router on the silicon interposer with no
    /// memory of its own (§4.3).
    Interface,
}

impl NodeKind {
    /// True for memory cubes.
    pub const fn is_cube(self) -> bool {
        matches!(self, NodeKind::Cube(_))
    }
}

/// The physical class of a link, which determines its latency/width model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// A package-to-package high-speed SerDes link (16 lanes at 15 Gbps,
    /// 2 ns SerDes latency per traversal — §5).
    External,
    /// A short, wide link across a silicon interposer inside a MetaCube
    /// package; no SerDes (de)serialization penalty.
    Interposer,
}

/// Full description of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInfo {
    /// What the node is.
    pub kind: NodeKind,
    /// 1-based placement position for cubes (0 for host and interface
    /// chips). Position 1 is the cube closest to the host in placement
    /// order; this is the ordering [`Placement`] uses.
    pub position: u32,
}

/// Full description of an undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkInfo {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Physical class.
    pub class: LinkClass,
    /// True for skip-list bypass links. Write traffic never uses these
    /// (§4.2); on other topologies every link has `skip == false`.
    pub skip: bool,
}

impl LinkInfo {
    /// The endpoint opposite `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn other_end(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("{from} is not an endpoint of this link");
        }
    }
}

/// The topology families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Daisy chain (Fig. 3b) — the normalization baseline.
    Chain,
    /// Ring through the host (Fig. 3c).
    Ring,
    /// Ternary tree (Fig. 3d).
    Tree,
    /// Skip-list chain with cascading bypass links (Fig. 8).
    SkipList,
    /// Chain of MetaCube packages, four cubes per package (Fig. 9c).
    MetaCube,
    /// A 2-D mesh (extension). The paper *excludes* meshes because their
    /// average hop count exceeds a tree's no matter which cube hosts the
    /// port (§3); this builder exists to let the claim be checked.
    Mesh,
}

impl TopologyKind {
    /// The paper's five topologies, in its presentation order.
    pub const ALL: [TopologyKind; 5] = [
        TopologyKind::Chain,
        TopologyKind::Ring,
        TopologyKind::Tree,
        TopologyKind::SkipList,
        TopologyKind::MetaCube,
    ];

    /// The paper's five plus this crate's extensions.
    pub const ALL_EXTENDED: [TopologyKind; 6] = [
        TopologyKind::Chain,
        TopologyKind::Ring,
        TopologyKind::Tree,
        TopologyKind::SkipList,
        TopologyKind::MetaCube,
        TopologyKind::Mesh,
    ];

    /// The short label used in the paper's figures (`C`, `R`, `T`, `SL`,
    /// `MC`).
    pub const fn label(self) -> &'static str {
        match self {
            TopologyKind::Chain => "C",
            TopologyKind::Ring => "R",
            TopologyKind::Tree => "T",
            TopologyKind::SkipList => "SL",
            TopologyKind::MetaCube => "MC",
            TopologyKind::Mesh => "M",
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TopologyKind::Chain => "Chain",
            TopologyKind::Ring => "Ring",
            TopologyKind::Tree => "Tree",
            TopologyKind::SkipList => "SkipList",
            TopologyKind::MetaCube => "MetaCube",
            TopologyKind::Mesh => "Mesh",
        };
        f.write_str(name)
    }
}

/// The memory network behind one host memory port.
///
/// Construct with [`Topology::build`]; inspect with the accessors; compute
/// paths with [`Topology::routing`].
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    nodes: Vec<NodeInfo>,
    links: Vec<LinkInfo>,
    /// adjacency: for each node, its (neighbor, link) pairs.
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

/// External-link budget per memory-cube package (§3: "HMC-like memory
/// packages with 4 ports per package").
pub(crate) const CUBE_PORT_BUDGET: u32 = 4;

impl Topology {
    /// Builds the given topology kind over the given cube placement.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyPlacement`] if `placement` has no cubes,
    /// or [`TopologyError::PortBudgetExceeded`] if the construction cannot
    /// respect the 4-links-per-cube budget (cannot happen for the built-in
    /// builders, but the invariant is always checked).
    pub fn build(kind: TopologyKind, placement: &Placement) -> Result<Topology, TopologyError> {
        if placement.is_empty() {
            return Err(TopologyError::EmptyPlacement);
        }
        let topo = match kind {
            TopologyKind::Chain => builders::chain(placement),
            TopologyKind::Ring => builders::ring(placement),
            TopologyKind::Tree => builders::ternary_tree(placement),
            TopologyKind::SkipList => builders::skip_list(placement),
            TopologyKind::MetaCube => builders::metacube(placement),
            TopologyKind::Mesh => builders::mesh(placement),
        };
        topo.check_port_budget()?;
        Ok(topo)
    }

    /// Internal constructor used by the builders.
    pub(crate) fn from_parts(
        kind: TopologyKind,
        nodes: Vec<NodeInfo>,
        links: Vec<LinkInfo>,
    ) -> Topology {
        let mut adj = vec![Vec::new(); nodes.len()];
        for (i, l) in links.iter().enumerate() {
            let id = LinkId(i as u32);
            adj[l.a.index()].push((l.b, id));
            adj[l.b.index()].push((l.a, id));
        }
        Topology {
            kind,
            nodes,
            links,
            adj,
        }
    }

    fn check_port_budget(&self) -> Result<(), TopologyError> {
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind.is_cube() {
                let used = self.adj[i].len() as u32;
                if used > CUBE_PORT_BUDGET {
                    return Err(TopologyError::PortBudgetExceeded {
                        position: node.position,
                        needed: used,
                        budget: CUBE_PORT_BUDGET,
                    });
                }
            }
        }
        Ok(())
    }

    /// Which topology family this is.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// The host memory port node.
    pub fn host(&self) -> NodeId {
        NodeId::HOST
    }

    /// Number of nodes, including the host and any interface chips.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Information about a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> NodeInfo {
        self.nodes[id.index()]
    }

    /// Information about a link.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> LinkInfo {
        self.links[id.index()]
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Iterator over memory-cube nodes with their technologies.
    pub fn cubes(&self) -> impl Iterator<Item = (NodeId, CubeTech)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n.kind {
                NodeKind::Cube(t) => Some((NodeId(i as u32), t)),
                _ => None,
            })
    }

    /// Number of memory cubes.
    pub fn cube_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_cube()).count()
    }

    /// The cube at 1-based placement position `pos`, if it exists.
    pub fn cube_at_position(&self, pos: u32) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.kind.is_cube() && n.position == pos)
            .map(|i| NodeId(i as u32))
    }

    /// Neighbors of a node as (neighbor, link) pairs.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[id.index()]
    }

    /// Number of links attached to a node.
    pub fn degree(&self, id: NodeId) -> usize {
        self.adj[id.index()].len()
    }

    /// Computes the routing tables (read and write path classes) for this
    /// topology.
    pub fn routing(&self) -> RoutingTable {
        RoutingTable::compute(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::NvmPlacement;

    fn dram(n: usize) -> Placement {
        Placement::homogeneous(n, CubeTech::Dram)
    }

    #[test]
    fn empty_placement_is_rejected() {
        let p = Placement::from_techs(vec![]);
        assert!(matches!(
            Topology::build(TopologyKind::Chain, &p),
            Err(TopologyError::EmptyPlacement)
        ));
    }

    #[test]
    fn chain_structure() {
        let t = Topology::build(TopologyKind::Chain, &dram(16)).unwrap();
        assert_eq!(t.cube_count(), 16);
        assert_eq!(t.node_count(), 17);
        assert_eq!(t.link_count(), 16);
        assert_eq!(t.degree(t.host()), 1);
        // Interior cubes have exactly 2 links; the tail has 1.
        let tail = t.cube_at_position(16).unwrap();
        assert_eq!(t.degree(tail), 1);
        let mid = t.cube_at_position(8).unwrap();
        assert_eq!(t.degree(mid), 2);
    }

    #[test]
    fn ring_cycles_through_first_cube() {
        let t = Topology::build(TopologyKind::Ring, &dram(16)).unwrap();
        assert_eq!(t.link_count(), 17);
        // The host keeps its single MN link; cube 1 closes the cycle.
        assert_eq!(t.degree(t.host()), 1);
        assert_eq!(t.degree(t.cube_at_position(1).unwrap()), 3);
        let tail = t.cube_at_position(16).unwrap();
        assert_eq!(t.degree(tail), 2);
    }

    #[test]
    fn tree_respects_port_budget() {
        let t = Topology::build(TopologyKind::Tree, &dram(16)).unwrap();
        for (id, _) in t.cubes() {
            assert!(t.degree(id) <= 4, "cube {id} has degree {}", t.degree(id));
        }
        assert_eq!(t.degree(t.host()), 1);
        assert_eq!(t.link_count(), 16); // a tree over 17 nodes
    }

    #[test]
    fn skiplist_has_skip_links() {
        let t = Topology::build(TopologyKind::SkipList, &dram(16)).unwrap();
        let skips = t.link_ids().filter(|&l| t.link(l).skip).count();
        assert!(skips >= 3, "expected cascading skip links, got {skips}");
        for (id, _) in t.cubes() {
            assert!(t.degree(id) <= 4);
        }
    }

    #[test]
    fn metacube_has_interface_chips() {
        let t = Topology::build(TopologyKind::MetaCube, &dram(16)).unwrap();
        let interfaces = t
            .node_ids()
            .filter(|&n| t.node(n).kind == NodeKind::Interface)
            .count();
        assert_eq!(interfaces, 4);
        assert_eq!(t.cube_count(), 16);
        // Interposer links connect cubes to their interface chip.
        let interposer = t
            .link_ids()
            .filter(|&l| t.link(l).class == LinkClass::Interposer)
            .count();
        assert_eq!(interposer, 16);
    }

    #[test]
    fn positions_map_to_techs() {
        let p = Placement::mixed_by_capacity(0.5, NvmPlacement::Last).unwrap();
        let t = Topology::build(TopologyKind::Chain, &p).unwrap();
        let last = t.cube_at_position(10).unwrap();
        assert_eq!(t.node(last).kind, NodeKind::Cube(CubeTech::Nvm));
        let first = t.cube_at_position(1).unwrap();
        assert_eq!(t.node(first).kind, NodeKind::Cube(CubeTech::Dram));
    }

    #[test]
    fn other_end_works() {
        let t = Topology::build(TopologyKind::Chain, &dram(2)).unwrap();
        let l = t.link(LinkId(0));
        assert_eq!(l.other_end(l.a), l.b);
        assert_eq!(l.other_end(l.b), l.a);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_end_panics_for_non_endpoint() {
        let t = Topology::build(TopologyKind::Chain, &dram(3)).unwrap();
        let l = t.link(LinkId(0)); // host—cube1
        l.other_end(NodeId(3));
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(TopologyKind::SkipList.label(), "SL");
        assert_eq!(TopologyKind::MetaCube.to_string(), "MetaCube");
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(2).to_string(), "l2");
    }

    #[test]
    fn single_cube_all_topologies() {
        for kind in TopologyKind::ALL {
            let t = Topology::build(kind, &dram(1)).unwrap();
            assert_eq!(t.cube_count(), 1, "{kind}");
        }
    }
}
