//! Structural metrics and ASCII rendering of topologies.
//!
//! These feed the analysis in §3 of the paper (hop counts explain the
//! speedup ordering) and the `topology_tour` example.

use crate::graph::{NodeKind, Topology};
use crate::placement::CubeTech;
use crate::routing::{PathClass, RoutingTable};

/// Summary statistics about a topology's read-path structure.
///
/// # Example
///
/// ```
/// use mn_topo::{Topology, TopologyKind, Placement, CubeTech, TopologyMetrics};
///
/// let topo = Topology::build(
///     TopologyKind::Tree,
///     &Placement::homogeneous(16, CubeTech::Dram),
/// ).unwrap();
/// let m = TopologyMetrics::compute(&topo);
/// assert!(m.max_read_hops <= 4);
/// assert!(m.avg_read_hops < 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyMetrics {
    /// Mean host→cube hop count over cubes (read paths).
    pub avg_read_hops: f64,
    /// Mean host→cube hop count weighted by cube capacity, i.e. the
    /// expected hop count of a uniformly interleaved request (§3's
    /// assumption that requests are uniform in the address space).
    pub capacity_weighted_read_hops: f64,
    /// Worst-case host→cube read hop count (the network "diameter" as seen
    /// by the host).
    pub max_read_hops: u32,
    /// Worst-case host→cube hop count for write traffic.
    pub max_write_hops: u32,
    /// Number of links that no host↔cube read shortest path uses — the
    /// paper's "dashed" write-only links (zero except for skip lists).
    pub read_unused_links: usize,
    /// Total number of links.
    pub total_links: usize,
}

impl TopologyMetrics {
    /// Computes metrics for `topo` (internally builds a routing table;
    /// reuse [`TopologyMetrics::with_routing`] if you already have one).
    pub fn compute(topo: &Topology) -> TopologyMetrics {
        Self::with_routing(topo, &topo.routing())
    }

    /// Computes metrics given an existing routing table.
    pub fn with_routing(topo: &Topology, routes: &RoutingTable) -> TopologyMetrics {
        let host = topo.host();
        let mut sum = 0u64;
        let mut weighted_sum = 0u64;
        let mut weight = 0u64;
        let mut max_read = 0u32;
        let mut max_write = 0u32;
        let mut count = 0u64;
        for (cube, tech) in topo.cubes() {
            let rh = routes.read_hops(host, cube);
            let wh = routes.write_hops(host, cube);
            sum += u64::from(rh);
            let w = u64::from(tech.capacity_units());
            weighted_sum += u64::from(rh) * w;
            weight += w;
            max_read = max_read.max(rh);
            max_write = max_write.max(wh);
            count += 1;
        }
        let read_unused_links = topo
            .link_ids()
            .filter(|&l| !routes.link_carries_class(topo, PathClass::Read, l))
            .count();
        TopologyMetrics {
            avg_read_hops: sum as f64 / count.max(1) as f64,
            capacity_weighted_read_hops: weighted_sum as f64 / weight.max(1) as f64,
            max_read_hops: max_read,
            max_write_hops: max_write,
            read_unused_links,
            total_links: topo.link_count(),
        }
    }
}

/// Renders a topology as a human-readable adjacency listing, one node per
/// line, marking cube technologies and skip links. Used by the
/// `topology_tour` example to stand in for the paper's schematic figures.
pub fn render_ascii(topo: &Topology) -> String {
    use std::fmt::Write as _;
    let routes = topo.routing();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ({} cubes, {} links)",
        topo.kind(),
        topo.cube_count(),
        topo.link_count()
    );
    for id in topo.node_ids() {
        let info = topo.node(id);
        let label = match info.kind {
            NodeKind::Host => "HOST".to_string(),
            NodeKind::Cube(CubeTech::Dram) => format!("c{:<2} DRAM", info.position),
            NodeKind::Cube(CubeTech::Nvm) => format!("c{:<2} NVM ", info.position),
            NodeKind::Interface => "IF      ".to_string(),
        };
        let mut nbrs: Vec<String> = topo
            .neighbors(id)
            .iter()
            .map(|&(nb, link)| {
                let mark = if topo.link(link).skip { "~" } else { "-" };
                format!("{mark}{nb}")
            })
            .collect();
        nbrs.sort();
        let hops = if info.kind.is_cube() {
            format!("  [{} read hops]", routes.read_hops(topo.host(), id))
        } else {
            String::new()
        };
        let _ = writeln!(out, "  {id:>4} {label}: {}{hops}", nbrs.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopologyKind;
    use crate::placement::{NvmPlacement, Placement};

    fn metrics(kind: TopologyKind, n: usize) -> TopologyMetrics {
        let t = Topology::build(kind, &Placement::homogeneous(n, CubeTech::Dram)).unwrap();
        TopologyMetrics::compute(&t)
    }

    #[test]
    fn hop_ordering_matches_paper_intuition() {
        let chain = metrics(TopologyKind::Chain, 16);
        let ring = metrics(TopologyKind::Ring, 16);
        let tree = metrics(TopologyKind::Tree, 16);
        let skip = metrics(TopologyKind::SkipList, 16);
        let meta = metrics(TopologyKind::MetaCube, 16);

        // §3: ring halves the chain's average hop count; tree is lowest.
        assert!((chain.avg_read_hops - 8.5).abs() < 1e-9);
        assert!(ring.avg_read_hops < chain.avg_read_hops * 0.6);
        assert!(tree.avg_read_hops < ring.avg_read_hops);
        // §5.2: skip-list average hop count is similar to the tree's.
        assert!((skip.avg_read_hops - tree.avg_read_hops).abs() < 1.5);
        // MetaCube has the smallest worst case apart from tree-level.
        assert!(meta.max_read_hops <= 5);
    }

    #[test]
    fn chain_metrics_exact() {
        let m = metrics(TopologyKind::Chain, 16);
        assert_eq!(m.max_read_hops, 16);
        assert_eq!(m.max_write_hops, 16);
        assert_eq!(m.read_unused_links, 0);
        assert_eq!(m.total_links, 16);
    }

    #[test]
    fn skiplist_has_unused_read_links() {
        let m = metrics(TopologyKind::SkipList, 16);
        assert!(m.read_unused_links > 0);
        assert_eq!(m.max_write_hops, 16);
        assert_eq!(m.max_read_hops, 5);
    }

    #[test]
    fn capacity_weighting_reflects_nvm_placement() {
        let last = Placement::mixed_by_capacity(0.5, NvmPlacement::Last).unwrap();
        let first = Placement::mixed_by_capacity(0.5, NvmPlacement::First).unwrap();
        let t_last = Topology::build(TopologyKind::Chain, &last).unwrap();
        let t_first = Topology::build(TopologyKind::Chain, &first).unwrap();
        let m_last = TopologyMetrics::compute(&t_last);
        let m_first = TopologyMetrics::compute(&t_first);
        // NVM-L pushes half the capacity (and thus half the requests) to the
        // far end: its weighted hop count must exceed NVM-F's.
        assert!(m_last.capacity_weighted_read_hops > m_first.capacity_weighted_read_hops);
        // Unweighted averages are identical (same structure).
        assert!((m_last.avg_read_hops - m_first.avg_read_hops).abs() < 1e-12);
    }

    #[test]
    fn render_lists_every_node() {
        let t = Topology::build(
            TopologyKind::SkipList,
            &Placement::mixed_by_capacity(0.5, NvmPlacement::Last).unwrap(),
        )
        .unwrap();
        let s = render_ascii(&t);
        assert!(s.contains("HOST"));
        assert!(s.contains("NVM"));
        assert!(s.contains('~'), "skip links are marked with ~");
        assert_eq!(s.lines().count(), t.node_count() + 1);
    }
}
