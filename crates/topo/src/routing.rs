//! All-pairs shortest-path routing over a topology.
//!
//! Two path classes exist, mirroring the paper's read/write differentiated
//! routing (§4.2):
//!
//! - [`PathClass::Read`] — shortest paths over **all** links, including
//!   skip-list bypass links.
//! - [`PathClass::Write`] — shortest paths excluding skip links, i.e. write
//!   requests ride the central sequential chain of a skip-list MN. On every
//!   other topology the two classes coincide.
//!
//! The host is never used as a transit node: paths between two cubes cannot
//! route through the processor (traffic in this system is host↔cube only,
//! but the invariant is enforced for safety).

use std::collections::VecDeque;

use crate::graph::{LinkId, NodeId, Topology};

/// Which routing plane a packet uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathClass {
    /// Shortest path over every link (reads and read responses).
    Read,
    /// Chain-only path on skip lists (writes and write acknowledgments).
    Write,
}

impl PathClass {
    /// Both classes.
    pub const ALL: [PathClass; 2] = [PathClass::Read, PathClass::Write];
}

const UNREACHABLE: u32 = u32::MAX;

/// Sentinel in the flattened routing table: no next hop exists (the
/// packet is at its destination, or the pair is unreachable).
pub const NO_PORT: u16 = u16::MAX;

/// Per-class next-hop and distance tables.
#[derive(Debug, Clone)]
struct ClassTable {
    /// `next_hop[src][dst]` — the neighbor and link to take from `src`
    /// toward `dst`; `None` when `src == dst` or unreachable.
    next_hop: Vec<Vec<Option<(NodeId, LinkId)>>>,
    /// `dist[src][dst]` in hops; `UNREACHABLE` when disconnected.
    dist: Vec<Vec<u32>>,
}

/// Precomputed routing tables for one topology.
///
/// # Example
///
/// ```
/// use mn_topo::{Topology, TopologyKind, Placement, CubeTech, PathClass};
///
/// let topo = Topology::build(
///     TopologyKind::Ring,
///     &Placement::homogeneous(16, CubeTech::Dram),
/// ).unwrap();
/// let routes = topo.routing();
///
/// // On a ring the "last" cube is reached the short way around: through
/// // cube 1 and backwards along the cycle, not 16 hops down the chain.
/// let c16 = topo.cube_at_position(16).unwrap();
/// assert_eq!(routes.hops(PathClass::Read, topo.host(), c16), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    read: ClassTable,
    write: ClassTable,
    /// Node count, the row stride of the flattened tables.
    n: usize,
    /// Dense `src * n + dst -> (out_port, dist)` tables (`out_port` is
    /// `src`'s adjacency index toward the next hop), so a router's
    /// candidate scan costs one indexed load instead of two nested
    /// `Vec` derefs plus a link comparison. [`NO_PORT`] fills entries
    /// with no next hop.
    flat_read: Vec<(u16, u16)>,
    flat_write: Vec<(u16, u16)>,
}

impl RoutingTable {
    /// Computes routing tables for `topo` with breadth-first search from
    /// every node (link hops are uniform cost). Neighbor exploration order
    /// is the topology's deterministic adjacency order, so routes are
    /// reproducible.
    pub fn compute(topo: &Topology) -> RoutingTable {
        Self::assemble(
            topo,
            Self::compute_class(topo, true, &[]),
            Self::compute_class(topo, false, &[]),
        )
    }

    /// Computes routing tables for `topo` treating every link in `dead` as
    /// nonexistent — the fault-recovery path. Where the topology has path
    /// diversity (ring, skip-list, MetaCube) routes bend around the dead
    /// links; where it does not, destinations become unreachable (query
    /// with [`RoutingTable::reachable`] before forwarding).
    ///
    /// Graceful degradation for the write class: skip-list writes normally
    /// ride the chain only, but when a dead chain link severs the
    /// chain-only plane for some pair while the read plane (skip links
    /// included) still connects it, the write entries for that pair fall
    /// back to the read route. A degraded MN keeps serving writes over the
    /// skip links rather than reporting a partition the hardware could
    /// route around.
    pub fn compute_avoiding(topo: &Topology, dead: &[LinkId]) -> RoutingTable {
        let read = Self::compute_class(topo, true, dead);
        let mut write = Self::compute_class(topo, false, dead);
        for src in topo.node_ids() {
            for dst in topo.node_ids() {
                let (s, d) = (src.index(), dst.index());
                if write.dist[s][d] == UNREACHABLE && read.dist[s][d] != UNREACHABLE {
                    write.dist[s][d] = read.dist[s][d];
                    write.next_hop[s][d] = read.next_hop[s][d];
                }
            }
        }
        Self::assemble(topo, read, write)
    }

    /// Builds the dense flattened tables from the per-class next-hop
    /// tables. Must run after any fault patching of `next_hop`/`dist`.
    fn assemble(topo: &Topology, read: ClassTable, write: ClassTable) -> RoutingTable {
        let flat_read = Self::flatten(topo, &read);
        let flat_write = Self::flatten(topo, &write);
        RoutingTable {
            read,
            write,
            n: topo.node_count(),
            flat_read,
            flat_write,
        }
    }

    fn flatten(topo: &Topology, table: &ClassTable) -> Vec<(u16, u16)> {
        let n = topo.node_count();
        let mut flat = vec![(NO_PORT, NO_PORT); n * n];
        for src in topo.node_ids() {
            for dst in topo.node_ids() {
                let (s, d) = (src.index(), dst.index());
                let Some((_, link)) = table.next_hop[s][d] else {
                    continue;
                };
                let port = topo
                    .neighbors(src)
                    .iter()
                    .position(|&(_, l)| l == link)
                    .expect("next-hop link is adjacent to src");
                let dist = table.dist[s][d];
                debug_assert!(port < usize::from(NO_PORT) && dist < u32::from(NO_PORT));
                flat[s * n + d] = (port as u16, dist as u16);
            }
        }
        flat
    }

    fn compute_class(topo: &Topology, allow_skip: bool, dead: &[LinkId]) -> ClassTable {
        let n = topo.node_count();
        let mut next_hop = vec![vec![None; n]; n];
        let mut dist = vec![vec![UNREACHABLE; n]; n];

        for src in topo.node_ids() {
            // BFS that records each node's *parent*; next hops are then
            // derived by walking parents backward.
            let mut parent: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
            let mut d = vec![UNREACHABLE; n];
            d[src.index()] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                // The host may originate/terminate but never forward.
                if u != src && u == topo.host() {
                    continue;
                }
                for &(v, link) in topo.neighbors(u) {
                    if !allow_skip && topo.link(link).skip {
                        continue;
                    }
                    if dead.contains(&link) {
                        continue;
                    }
                    if d[v.index()] == UNREACHABLE {
                        d[v.index()] = d[u.index()] + 1;
                        parent[v.index()] = Some((u, link));
                        queue.push_back(v);
                    }
                }
            }
            for dst in topo.node_ids() {
                dist[src.index()][dst.index()] = d[dst.index()];
                if dst == src || d[dst.index()] == UNREACHABLE {
                    continue;
                }
                // Walk back from dst to the node adjacent to src.
                let mut cur = dst;
                let mut via = parent[cur.index()].expect("reachable node has a parent");
                while via.0 != src {
                    cur = via.0;
                    via = parent[cur.index()].expect("path to src is complete");
                }
                next_hop[src.index()][dst.index()] = Some((cur, via.1));
            }
        }
        ClassTable { next_hop, dist }
    }

    fn class(&self, class: PathClass) -> &ClassTable {
        match class {
            PathClass::Read => &self.read,
            PathClass::Write => &self.write,
        }
    }

    /// Hop count from `src` to `dst` on the given class.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is unreachable from `src` on that class (cannot
    /// happen for the built-in topologies, whose chain keeps every class
    /// connected).
    pub fn hops(&self, class: PathClass, src: NodeId, dst: NodeId) -> u32 {
        let d = self.class(class).dist[src.index()][dst.index()];
        assert!(d != UNREACHABLE, "{dst} unreachable from {src}");
        d
    }

    /// Hop count from `src` to `dst` on the given class, or `None` when
    /// the pair is disconnected — the fault-tolerant twin of
    /// [`RoutingTable::hops`] for tables built with dead links.
    pub fn try_hops(&self, class: PathClass, src: NodeId, dst: NodeId) -> Option<u32> {
        let d = self.class(class).dist[src.index()][dst.index()];
        (d != UNREACHABLE).then_some(d)
    }

    /// True when `dst` is reachable from `src` on `class`.
    pub fn reachable(&self, class: PathClass, src: NodeId, dst: NodeId) -> bool {
        self.class(class).dist[src.index()][dst.index()] != UNREACHABLE
    }

    /// Convenience for [`RoutingTable::hops`] with [`PathClass::Read`].
    pub fn read_hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.hops(PathClass::Read, src, dst)
    }

    /// Convenience for [`RoutingTable::hops`] with [`PathClass::Write`].
    pub fn write_hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.hops(PathClass::Write, src, dst)
    }

    /// The neighbor and link a packet at `at` should take toward `dst`,
    /// or `None` if `at == dst`.
    pub fn next_hop(&self, class: PathClass, at: NodeId, dst: NodeId) -> Option<(NodeId, LinkId)> {
        self.class(class).next_hop[at.index()][dst.index()]
    }

    /// The flattened routing entry for `at → dst` on `class`: the output
    /// port to take (`at`'s adjacency index, i.e. the position of the
    /// next-hop link in `topo.neighbors(at)`) and the remaining distance
    /// in hops, fetched with a single indexed load. Both components are
    /// [`NO_PORT`] when `at == dst` or the pair is unreachable.
    #[inline]
    pub fn port_and_dist(&self, class: PathClass, at: NodeId, dst: NodeId) -> (u16, u16) {
        let flat = match class {
            PathClass::Read => &self.flat_read,
            PathClass::Write => &self.flat_write,
        };
        flat[at.index() * self.n + dst.index()]
    }

    /// The output-port component of [`RoutingTable::port_and_dist`].
    #[inline]
    pub fn next_port(&self, class: PathClass, at: NodeId, dst: NodeId) -> u16 {
        self.port_and_dist(class, at, dst).0
    }

    /// The full node sequence from `src` to `dst` (inclusive of both).
    pub fn path(&self, class: PathClass, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let (next, _) = self
                .next_hop(class, cur, dst)
                .expect("next_hop exists while cur != dst");
            path.push(next);
            cur = next;
        }
        path
    }

    /// The links traversed from `src` to `dst`.
    pub fn path_links(&self, class: PathClass, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        let mut links = Vec::new();
        let mut cur = src;
        while cur != dst {
            let (next, link) = self
                .next_hop(class, cur, dst)
                .expect("next_hop exists while cur != dst");
            links.push(link);
            cur = next;
        }
        links
    }

    /// True if `link` lies on some host→cube shortest path of `class`.
    /// Links for which this is false under [`PathClass::Read`] are the
    /// paper's "dashed" links, used only by writes (Fig. 8).
    pub fn link_carries_class(&self, topo: &Topology, class: PathClass, link: LinkId) -> bool {
        topo.cubes().any(|(cube, _)| {
            self.path_links(class, topo.host(), cube).contains(&link)
                || self.path_links(class, cube, topo.host()).contains(&link)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopologyKind;
    use crate::placement::{CubeTech, Placement};

    fn build(kind: TopologyKind, n: usize) -> (Topology, RoutingTable) {
        let t = Topology::build(kind, &Placement::homogeneous(n, CubeTech::Dram)).unwrap();
        let r = t.routing();
        (t, r)
    }

    #[test]
    fn chain_distances_are_positions() {
        let (t, r) = build(TopologyKind::Chain, 16);
        for p in 1..=16 {
            let c = t.cube_at_position(p).unwrap();
            assert_eq!(r.read_hops(t.host(), c), p);
            assert_eq!(r.write_hops(t.host(), c), p);
        }
    }

    #[test]
    fn ring_takes_shorter_branch() {
        let (t, r) = build(TopologyKind::Ring, 16);
        // The host enters at cube 1; the diametrically opposite cube of
        // the 16-cycle is 8 further hops away.
        let max = (1..=16)
            .map(|p| r.read_hops(t.host(), t.cube_at_position(p).unwrap()))
            .max()
            .unwrap();
        assert_eq!(max, 9);
        // The "last" cube is adjacent to cube 1 around the back.
        assert_eq!(r.read_hops(t.host(), t.cube_at_position(16).unwrap()), 2);
        // Average hops roughly halve versus the chain (§3).
        let avg: f64 = (1..=16)
            .map(|p| f64::from(r.read_hops(t.host(), t.cube_at_position(p).unwrap())))
            .sum::<f64>()
            / 16.0;
        assert!((avg - 5.0).abs() < 1e-9, "got {avg}");
    }

    #[test]
    fn skiplist_reads_logarithmic_writes_linear() {
        let (t, r) = build(TopologyKind::SkipList, 16);
        let far = t.cube_at_position(16).unwrap();
        assert_eq!(r.read_hops(t.host(), far), 5);
        assert_eq!(r.write_hops(t.host(), far), 16);
        // Every cube within 5 read hops.
        for p in 1..=16 {
            let c = t.cube_at_position(p).unwrap();
            assert!(r.read_hops(t.host(), c) <= 5, "position {p}");
        }
    }

    #[test]
    fn skiplist_has_write_only_links() {
        let (t, r) = build(TopologyKind::SkipList, 16);
        let write_only = t
            .link_ids()
            .filter(|&l| {
                !r.link_carries_class(&t, PathClass::Read, l)
                    && r.link_carries_class(&t, PathClass::Write, l)
            })
            .count();
        assert!(write_only > 0, "expected dashed write-only links (Fig. 8)");
    }

    #[test]
    fn metacube_worst_case_is_small() {
        let (t, r) = build(TopologyKind::MetaCube, 16);
        let max = (1..=16)
            .map(|p| r.read_hops(t.host(), t.cube_at_position(p).unwrap()))
            .max()
            .unwrap();
        // Star of interface chips: host → IF₁ → IF_k → cube.
        assert_eq!(max, 3);
        let min = (1..=16)
            .map(|p| r.read_hops(t.host(), t.cube_at_position(p).unwrap()))
            .min()
            .unwrap();
        assert_eq!(min, 2);
    }

    #[test]
    fn paths_are_consistent_with_hops() {
        for kind in TopologyKind::ALL {
            let (t, r) = build(kind, 16);
            for p in 1..=16 {
                let c = t.cube_at_position(p).unwrap();
                for class in PathClass::ALL {
                    let path = r.path(class, t.host(), c);
                    assert_eq!(path.len() as u32 - 1, r.hops(class, t.host(), c));
                    assert_eq!(*path.first().unwrap(), t.host());
                    assert_eq!(*path.last().unwrap(), c);
                    let links = r.path_links(class, t.host(), c);
                    assert_eq!(links.len() + 1, path.len());
                }
            }
        }
    }

    #[test]
    fn paths_are_symmetric_in_length() {
        for kind in TopologyKind::ALL {
            let (t, r) = build(kind, 10);
            for p in 1..=10 {
                let c = t.cube_at_position(p).unwrap();
                assert_eq!(
                    r.read_hops(t.host(), c),
                    r.read_hops(c, t.host()),
                    "{kind} position {p}"
                );
            }
        }
    }

    #[test]
    fn host_is_not_transit() {
        // Cube-to-cube paths never cut through the host's router.
        let (t, r) = build(TopologyKind::Ring, 16);
        for p in 3..=16 {
            let src = t.cube_at_position(2).unwrap();
            let dst = t.cube_at_position(p).unwrap();
            let path = r.path(PathClass::Read, src, dst);
            assert!(!path[1..path.len() - 1].contains(&t.host()));
        }
        // Around the back: cube 2 to cube 16 is three hops (2→1→16).
        let c2 = t.cube_at_position(2).unwrap();
        let c16 = t.cube_at_position(16).unwrap();
        assert_eq!(r.read_hops(c2, c16), 2);
    }

    #[test]
    fn next_hop_none_for_self() {
        let (t, r) = build(TopologyKind::Chain, 4);
        assert_eq!(r.next_hop(PathClass::Read, t.host(), t.host()), None);
    }

    /// The link joining `a` and `b`, which must exist.
    fn link_between(t: &Topology, a: NodeId, b: NodeId) -> LinkId {
        t.neighbors(a)
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, l)| l)
            .expect("nodes are adjacent")
    }

    #[test]
    fn dead_link_partitions_a_chain() {
        let (t, _) = build(TopologyKind::Chain, 8);
        let c4 = t.cube_at_position(4).unwrap();
        let c5 = t.cube_at_position(5).unwrap();
        let dead = link_between(&t, c4, c5);
        let r = RoutingTable::compute_avoiding(&t, &[dead]);
        // Positions 1..=4 stay reachable, 5..=8 are cut off.
        for p in 1..=4 {
            let c = t.cube_at_position(p).unwrap();
            assert!(r.reachable(PathClass::Read, t.host(), c), "position {p}");
            assert_eq!(r.try_hops(PathClass::Read, t.host(), c), Some(p));
        }
        for p in 5..=8 {
            let c = t.cube_at_position(p).unwrap();
            assert!(!r.reachable(PathClass::Read, t.host(), c), "position {p}");
            assert_eq!(r.try_hops(PathClass::Read, t.host(), c), None);
        }
    }

    #[test]
    fn ring_routes_around_a_dead_link() {
        let (t, healthy) = build(TopologyKind::Ring, 16);
        // Cut close to the host, where shortest paths actually cross: the
        // cube just behind the cut must detour the long way around.
        let c1 = t.cube_at_position(1).unwrap();
        let c2 = t.cube_at_position(2).unwrap();
        let dead = link_between(&t, c1, c2);
        let r = RoutingTable::compute_avoiding(&t, &[dead]);
        // Every cube stays reachable; paths avoid the dead link; no cube
        // gets closer than it was on the healthy ring.
        for p in 1..=16 {
            let c = t.cube_at_position(p).unwrap();
            assert!(r.reachable(PathClass::Read, t.host(), c), "position {p}");
            assert!(!r.path_links(PathClass::Read, t.host(), c).contains(&dead));
            assert!(
                r.hops(PathClass::Read, t.host(), c) >= healthy.read_hops(t.host(), c),
                "position {p}"
            );
        }
        assert!(
            r.read_hops(t.host(), c2) > healthy.read_hops(t.host(), c2),
            "the cube behind the cut detours the long way around"
        );
    }

    #[test]
    fn skiplist_writes_fall_back_to_skip_links_past_a_dead_chain_link() {
        let (t, _) = build(TopologyKind::SkipList, 16);
        let c8 = t.cube_at_position(8).unwrap();
        let c9 = t.cube_at_position(9).unwrap();
        let dead = link_between(&t, c8, c9);
        assert!(!t.link(dead).skip, "the chain link, not a bypass");
        let r = RoutingTable::compute_avoiding(&t, &[dead]);
        let far = t.cube_at_position(16).unwrap();
        // Reads detour over skips as usual; writes — normally chain-only —
        // degrade onto the read plane instead of partitioning.
        assert!(r.reachable(PathClass::Read, t.host(), far));
        assert!(r.reachable(PathClass::Write, t.host(), far));
        assert!(r
            .path_links(PathClass::Write, t.host(), far)
            .iter()
            .any(|&l| t.link(l).skip));
        // Pairs the chain still serves keep their chain-only write routes.
        let near = t.cube_at_position(2).unwrap();
        assert!(r
            .path_links(PathClass::Write, t.host(), near)
            .iter()
            .all(|&l| !t.link(l).skip));
    }

    /// The flattened table must agree with the pointer-chasing one on
    /// every (class, src, dst) triple — it is a pure acceleration.
    fn assert_flat_matches(t: &Topology, r: &RoutingTable) {
        for src in t.node_ids() {
            for dst in t.node_ids() {
                for class in PathClass::ALL {
                    let (port, dist) = r.port_and_dist(class, src, dst);
                    match r.next_hop(class, src, dst) {
                        None => {
                            assert_eq!(port, NO_PORT, "{src}->{dst}");
                            assert_eq!(dist, NO_PORT, "{src}->{dst}");
                        }
                        Some((_, link)) => {
                            let (_, expected_link) = t.neighbors(src)[usize::from(port)];
                            assert_eq!(expected_link, link, "{src}->{dst}");
                            assert_eq!(u32::from(dist), r.hops(class, src, dst), "{src}->{dst}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn flat_table_matches_next_hop_on_all_topologies() {
        for kind in TopologyKind::ALL {
            let (t, r) = build(kind, 16);
            assert_flat_matches(&t, &r);
        }
    }

    #[test]
    fn flat_table_matches_next_hop_after_fault_rerouting() {
        // compute_avoiding patches write routes from the read plane after
        // the per-class BFS; the flat tables must reflect the patched
        // routes, not the raw ones.
        let (t, _) = build(TopologyKind::SkipList, 16);
        let c8 = t.cube_at_position(8).unwrap();
        let c9 = t.cube_at_position(9).unwrap();
        let dead = link_between(&t, c8, c9);
        let r = RoutingTable::compute_avoiding(&t, &[dead]);
        assert_flat_matches(&t, &r);
        // And an unreachable pair reports the sentinel.
        let (t2, _) = build(TopologyKind::Chain, 8);
        let c4 = t2.cube_at_position(4).unwrap();
        let c5 = t2.cube_at_position(5).unwrap();
        let cut = RoutingTable::compute_avoiding(&t2, &[link_between(&t2, c4, c5)]);
        let far = t2.cube_at_position(8).unwrap();
        assert_eq!(
            cut.port_and_dist(PathClass::Read, t2.host(), far),
            (NO_PORT, NO_PORT)
        );
    }

    #[test]
    fn compute_avoiding_with_no_dead_links_matches_compute() {
        for kind in TopologyKind::ALL {
            let (t, healthy) = build(kind, 16);
            let r = RoutingTable::compute_avoiding(&t, &[]);
            for p in 1..=16 {
                let c = t.cube_at_position(p).unwrap();
                for class in PathClass::ALL {
                    assert_eq!(
                        r.path(class, t.host(), c),
                        healthy.path(class, t.host(), c),
                        "{kind} position {p}"
                    );
                }
            }
        }
    }
}
