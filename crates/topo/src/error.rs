//! Error type for topology construction.

use std::error::Error;
use std::fmt;

/// Errors arising while building or validating a topology.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The placement contains no cubes.
    EmptyPlacement,
    /// A requested ratio or fraction is outside its valid range.
    InvalidRatio {
        /// The offending value.
        value: f64,
    },
    /// The requested DRAM capacity fraction cannot be realized with whole
    /// cubes (DRAM cubes hold 1 capacity unit, NVM cubes hold 4).
    UnrealizableMix {
        /// The requested DRAM fraction of total capacity.
        dram_fraction: f64,
    },
    /// A cube would need more external links than the per-package budget.
    PortBudgetExceeded {
        /// 1-based chain position of the violating cube.
        position: u32,
        /// Number of links the construction tried to attach.
        needed: u32,
        /// The per-cube port budget.
        budget: u32,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyPlacement => write!(f, "placement contains no cubes"),
            TopologyError::InvalidRatio { value } => {
                write!(f, "ratio {value} is outside [0, 1]")
            }
            TopologyError::UnrealizableMix { dram_fraction } => write!(
                f,
                "DRAM capacity fraction {dram_fraction} cannot be realized with whole cubes"
            ),
            TopologyError::PortBudgetExceeded {
                position,
                needed,
                budget,
            } => write!(
                f,
                "cube at position {position} needs {needed} links but the budget is {budget}"
            ),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TopologyError::PortBudgetExceeded {
            position: 3,
            needed: 5,
            budget: 4,
        };
        let s = e.to_string();
        assert!(s.contains("position 3"));
        assert!(s.contains("budget is 4"));
        assert!(!TopologyError::EmptyPlacement.to_string().is_empty());
    }
}
