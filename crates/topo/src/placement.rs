//! Cube technology mixes and their placement order within an MN.
//!
//! The paper labels heterogeneous networks by the *percentage of capacity*
//! provided by DRAM ("100%" = all DRAM, "0%" = all NVM) and by where the NVM
//! cubes sit relative to the host port: `NVM-L` (last, far from the
//! processor) or `NVM-F` (first, close to it) — see §3.3 and Fig. 6.
//!
//! A DRAM cube holds one capacity unit (16 GB in the paper's Table 2); an
//! NVM cube holds [`CubeTech::Nvm::CAPACITY_UNITS`] = 4 units (64 GB).
//! Replacing DRAM capacity with NVM therefore *shrinks* the network: the
//! 50% mix is 8 DRAM + 2 NVM = 10 cubes instead of 16.

use crate::error::TopologyError;

/// The memory technology inside one cube package.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CubeTech {
    /// A stack of DRAM dies (16 GB per cube in the paper's configuration).
    Dram,
    /// A stack of non-volatile memory (PCM-like; 4x the capacity of a DRAM
    /// cube, but slower — especially for writes).
    Nvm,
}

impl CubeTech {
    /// Relative capacity of a cube of this technology, in DRAM-cube units.
    pub const fn capacity_units(self) -> u32 {
        match self {
            CubeTech::Dram => 1,
            CubeTech::Nvm => 4,
        }
    }
}

/// Where NVM cubes are placed within the network (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NvmPlacement {
    /// `NVM-F`: NVM cubes closest to the host port.
    First,
    /// `NVM-L`: NVM cubes farthest from the host port.
    Last,
}

/// An ordered list of cube technologies, position 1 being closest to the
/// host port.
///
/// # Example
///
/// ```
/// use mn_topo::{Placement, CubeTech, NvmPlacement};
///
/// let p = Placement::mixed_by_capacity(0.5, NvmPlacement::First).unwrap();
/// assert_eq!(p.tech_at(1), CubeTech::Nvm);   // NVM-F: NVM is closest
/// assert_eq!(p.tech_at(10), CubeTech::Dram);
/// assert_eq!(p.total_capacity_units(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    techs: Vec<CubeTech>,
}

impl Placement {
    /// Total capacity of the baseline all-DRAM network, in DRAM-cube units.
    /// The paper's per-port MN is 16 cubes x 16 GB = 256 GB.
    pub const BASELINE_CAPACITY_UNITS: u32 = 16;

    /// A placement of `n` identical cubes.
    pub fn homogeneous(n: usize, tech: CubeTech) -> Placement {
        Placement {
            techs: vec![tech; n],
        }
    }

    /// A placement built from an explicit ordered technology list.
    pub fn from_techs(techs: Vec<CubeTech>) -> Placement {
        Placement { techs }
    }

    /// The paper's capacity-ratio construction: `dram_fraction` of the
    /// baseline capacity (16 units) comes from DRAM cubes, the rest from
    /// 4x-capacity NVM cubes. The placement keeps total capacity constant.
    ///
    /// `dram_fraction` of 1.0 yields 16 DRAM cubes, 0.5 yields 8 DRAM +
    /// 2 NVM, and 0.0 yields 4 NVM cubes — exactly the 100% / 50% / 0%
    /// configurations of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidRatio`] if `dram_fraction` is outside
    /// `[0, 1]`, or [`TopologyError::UnrealizableMix`] if the fraction does
    /// not divide into whole cubes.
    pub fn mixed_by_capacity(
        dram_fraction: f64,
        placement: NvmPlacement,
    ) -> Result<Placement, TopologyError> {
        Self::mixed_with_total(dram_fraction, placement, Self::BASELINE_CAPACITY_UNITS)
    }

    /// Like [`Placement::mixed_by_capacity`] but for an arbitrary total
    /// capacity (in DRAM-cube units). Used by the Fig. 13 sensitivity study
    /// where halving the port count doubles the capacity behind each port.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Placement::mixed_by_capacity`].
    pub fn mixed_with_total(
        dram_fraction: f64,
        placement: NvmPlacement,
        total_units: u32,
    ) -> Result<Placement, TopologyError> {
        if !(0.0..=1.0).contains(&dram_fraction) {
            return Err(TopologyError::InvalidRatio {
                value: dram_fraction,
            });
        }
        let dram_units = dram_fraction * total_units as f64;
        if (dram_units - dram_units.round()).abs() > 1e-9 {
            return Err(TopologyError::UnrealizableMix { dram_fraction });
        }
        let dram_cubes = dram_units.round() as u32;
        let nvm_units = total_units - dram_cubes;
        if !nvm_units.is_multiple_of(CubeTech::Nvm.capacity_units()) {
            return Err(TopologyError::UnrealizableMix { dram_fraction });
        }
        let nvm_cubes = nvm_units / CubeTech::Nvm.capacity_units();

        let mut techs = Vec::with_capacity((dram_cubes + nvm_cubes) as usize);
        match placement {
            NvmPlacement::First => {
                techs.extend(std::iter::repeat_n(CubeTech::Nvm, nvm_cubes as usize));
                techs.extend(std::iter::repeat_n(CubeTech::Dram, dram_cubes as usize));
            }
            NvmPlacement::Last => {
                techs.extend(std::iter::repeat_n(CubeTech::Dram, dram_cubes as usize));
                techs.extend(std::iter::repeat_n(CubeTech::Nvm, nvm_cubes as usize));
            }
        }
        Ok(Placement { techs })
    }

    /// Number of cubes in this placement.
    pub fn cube_count(&self) -> usize {
        self.techs.len()
    }

    /// True if there are no cubes.
    pub fn is_empty(&self) -> bool {
        self.techs.is_empty()
    }

    /// Technology at 1-based position `pos` (position 1 is closest to the
    /// host).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is zero or beyond the placement.
    pub fn tech_at(&self, pos: u32) -> CubeTech {
        self.techs[(pos - 1) as usize]
    }

    /// Iterator over technologies in position order.
    pub fn iter(&self) -> impl Iterator<Item = CubeTech> + '_ {
        self.techs.iter().copied()
    }

    /// Total capacity in DRAM-cube units.
    pub fn total_capacity_units(&self) -> u32 {
        self.techs.iter().map(|t| t.capacity_units()).sum()
    }

    /// Fraction of total capacity provided by DRAM.
    pub fn dram_capacity_fraction(&self) -> f64 {
        let total = self.total_capacity_units();
        if total == 0 {
            return 0.0;
        }
        let dram: u32 = self
            .techs
            .iter()
            .filter(|t| **t == CubeTech::Dram)
            .map(|t| t.capacity_units())
            .sum();
        dram as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_units() {
        assert_eq!(CubeTech::Dram.capacity_units(), 1);
        assert_eq!(CubeTech::Nvm.capacity_units(), 4);
    }

    #[test]
    fn all_dram_is_16_cubes() {
        let p = Placement::mixed_by_capacity(1.0, NvmPlacement::Last).unwrap();
        assert_eq!(p.cube_count(), 16);
        assert!(p.iter().all(|t| t == CubeTech::Dram));
        assert_eq!(p.total_capacity_units(), 16);
        assert!((p.dram_capacity_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_nvm_is_4_cubes() {
        let p = Placement::mixed_by_capacity(0.0, NvmPlacement::Last).unwrap();
        assert_eq!(p.cube_count(), 4);
        assert!(p.iter().all(|t| t == CubeTech::Nvm));
        assert_eq!(p.total_capacity_units(), 16);
    }

    #[test]
    fn half_mix_is_8_dram_2_nvm() {
        let p = Placement::mixed_by_capacity(0.5, NvmPlacement::Last).unwrap();
        assert_eq!(p.cube_count(), 10);
        assert_eq!(p.tech_at(1), CubeTech::Dram);
        assert_eq!(p.tech_at(8), CubeTech::Dram);
        assert_eq!(p.tech_at(9), CubeTech::Nvm);
        assert_eq!(p.tech_at(10), CubeTech::Nvm);
        assert!((p.dram_capacity_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nvm_first_reverses_order() {
        let p = Placement::mixed_by_capacity(0.5, NvmPlacement::First).unwrap();
        assert_eq!(p.tech_at(1), CubeTech::Nvm);
        assert_eq!(p.tech_at(2), CubeTech::Nvm);
        assert_eq!(p.tech_at(3), CubeTech::Dram);
    }

    #[test]
    fn rejects_out_of_range_ratio() {
        assert!(matches!(
            Placement::mixed_by_capacity(1.5, NvmPlacement::Last),
            Err(TopologyError::InvalidRatio { .. })
        ));
    }

    #[test]
    fn rejects_unrealizable_mix() {
        // 90% DRAM leaves 1.6 units of NVM: not a whole cube.
        assert!(matches!(
            Placement::mixed_by_capacity(0.9, NvmPlacement::Last),
            Err(TopologyError::UnrealizableMix { .. })
        ));
    }

    #[test]
    fn quarter_and_threequarter_mixes_work() {
        // 75% DRAM: 12 DRAM + 1 NVM.
        let p = Placement::mixed_by_capacity(0.75, NvmPlacement::Last).unwrap();
        assert_eq!(p.cube_count(), 13);
        // 25% DRAM: 4 DRAM + 3 NVM.
        let p = Placement::mixed_by_capacity(0.25, NvmPlacement::Last).unwrap();
        assert_eq!(p.cube_count(), 7);
    }

    #[test]
    fn doubled_total_for_four_port_study() {
        let p = Placement::mixed_with_total(0.5, NvmPlacement::Last, 32).unwrap();
        assert_eq!(p.cube_count(), 20); // 16 DRAM + 4 NVM
        assert_eq!(p.total_capacity_units(), 32);
    }

    #[test]
    fn explicit_tech_list() {
        let p = Placement::from_techs(vec![CubeTech::Nvm, CubeTech::Dram]);
        assert_eq!(p.cube_count(), 2);
        assert_eq!(p.tech_at(1), CubeTech::Nvm);
        assert_eq!(p.total_capacity_units(), 5);
    }
}
