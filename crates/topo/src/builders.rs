//! Constructions for the five topology families.
//!
//! Every builder receives a [`Placement`] (cube technologies in position
//! order, position 1 closest to the host) and produces a [`Topology`] whose
//! node 0 is the host memory port. Builders only create structure; latency
//! and bandwidth live in `mn-noc`.

use crate::graph::CUBE_PORT_BUDGET;
use crate::graph::{LinkClass, LinkInfo, NodeId, NodeInfo, NodeKind, Topology, TopologyKind};
use crate::placement::Placement;

fn host_node() -> NodeInfo {
    NodeInfo {
        kind: NodeKind::Host,
        position: 0,
    }
}

fn cube_node(placement: &Placement, pos: u32) -> NodeInfo {
    NodeInfo {
        kind: NodeKind::Cube(placement.tech_at(pos)),
        position: pos,
    }
}

fn external(a: NodeId, b: NodeId) -> LinkInfo {
    LinkInfo {
        a,
        b,
        class: LinkClass::External,
        skip: false,
    }
}

/// Fig. 3(b): host — c1 — c2 — ... — cn.
pub(crate) fn chain(placement: &Placement) -> Topology {
    let n = placement.cube_count() as u32;
    let mut nodes = vec![host_node()];
    nodes.extend((1..=n).map(|p| cube_node(placement, p)));
    let mut links = Vec::with_capacity(n as usize);
    for p in 1..=n {
        links.push(external(NodeId(p - 1), NodeId(p)));
    }
    Topology::from_parts(TopologyKind::Chain, nodes, links)
}

/// Fig. 3(c): the cubes form a cycle and the host attaches to one of them,
/// so requests take the shorter of the two branches around the ring. Like
/// every MN here, the host still has a single link into the network — the
/// §4.2 observation that MN throughput is ultimately bounded by that link.
pub(crate) fn ring(placement: &Placement) -> Topology {
    let n = placement.cube_count() as u32;
    let mut topo_nodes = vec![host_node()];
    topo_nodes.extend((1..=n).map(|p| cube_node(placement, p)));
    let mut links = Vec::with_capacity(n as usize + 1);
    for p in 1..=n {
        links.push(external(NodeId(p - 1), NodeId(p)));
    }
    if n > 2 {
        links.push(external(NodeId(n), NodeId(1)));
    }
    Topology::from_parts(TopologyKind::Ring, topo_nodes, links)
}

/// Fig. 3(d): a ternary tree. Cube positions follow ternary-heap numbering
/// (position 1 is the root, the children of position `k` are `3k-1`, `3k`,
/// `3k+1`), which is exactly breadth-first order — so position still means
/// "distance rank from the host", as the NVM-F/NVM-L placements require.
/// Each cube uses at most 1 up-link + 3 down-links = 4 ports.
pub(crate) fn ternary_tree(placement: &Placement) -> Topology {
    let n = placement.cube_count() as u32;
    let mut nodes = vec![host_node()];
    nodes.extend((1..=n).map(|p| cube_node(placement, p)));
    let mut links = Vec::with_capacity(n as usize);
    links.push(external(NodeId::HOST, NodeId(1)));
    for p in 2..=n {
        let parent = (p + 1) / 3;
        links.push(external(NodeId(parent), NodeId(p)));
    }
    Topology::from_parts(TopologyKind::Tree, nodes, links)
}

/// Fig. 8: a sequential chain augmented with cascading skip links.
///
/// Skip links are added level by level, longest first (lengths are the
/// powers of two below the cube count). Within a level, each node already
/// reachable by longer skips (the "frontier") tries to originate one skip of
/// the current length, subject to the 4-port budget at both endpoints. For
/// 16 cubes this yields skips (1,9), (1,5), (9,13), (5,7), (13,15): the
/// farthest cube is 5 hops from the host — logarithmic, like a tree — while
/// the full chain remains intact for write traffic.
pub(crate) fn skip_list(placement: &Placement) -> Topology {
    let n = placement.cube_count() as u32;
    let mut nodes = vec![host_node()];
    nodes.extend((1..=n).map(|p| cube_node(placement, p)));

    let mut links = Vec::new();
    // Ports used per node; index 0 is the host (unbounded here: the host
    // still only gets its single MN link from the chain construction).
    let mut ports = vec![0u32; n as usize + 1];
    for p in 1..=n {
        links.push(external(NodeId(p - 1), NodeId(p)));
        ports[(p - 1) as usize] += 1;
        ports[p as usize] += 1;
    }

    // Longest power-of-two skip strictly shorter than the chain.
    let mut len = 1u32;
    while len * 2 < n {
        len *= 2;
    }

    let mut frontier = vec![1u32];
    while len >= 2 {
        let mut next_frontier = frontier.clone();
        for &from in &frontier {
            let to = from + len;
            if to > n {
                continue;
            }
            if ports[from as usize] >= CUBE_PORT_BUDGET || ports[to as usize] >= CUBE_PORT_BUDGET {
                continue;
            }
            links.push(LinkInfo {
                a: NodeId(from),
                b: NodeId(to),
                class: LinkClass::External,
                skip: true,
            });
            ports[from as usize] += 1;
            ports[to as usize] += 1;
            next_frontier.push(to);
        }
        next_frontier.sort_unstable();
        next_frontier.dedup();
        frontier = next_frontier;
        len /= 2;
    }

    Topology::from_parts(TopologyKind::SkipList, nodes, links)
}

/// Fig. 9(c): cubes are grouped four to a package around an interface chip
/// on a silicon interposer. The interface chip is a high-radix router —
/// "this relieves the limitation of 4 ports per memory package" (§4.3) —
/// so the packages form a shallow ternary tree of interface chips (a star
/// for up to four packages): host → IF₁ → {IF₂, IF₃, IF₄}, each IF serving
/// its four cubes over interposer links.
pub(crate) fn metacube(placement: &Placement) -> Topology {
    let n = placement.cube_count() as u32;
    let packages = n.div_ceil(4);

    let mut nodes = vec![host_node()];
    let mut links = Vec::new();
    let mut interfaces = Vec::new();
    let mut next_pos = 1u32;

    for pkg in 0..packages {
        let interface = NodeId(nodes.len() as u32);
        nodes.push(NodeInfo {
            kind: NodeKind::Interface,
            position: 0,
        });
        // Ternary-heap numbering over interface chips, rooted at the host.
        let parent = if pkg == 0 {
            NodeId::HOST
        } else {
            interfaces[(pkg.div_ceil(3) - 1) as usize]
        };
        links.push(external(parent, interface));
        interfaces.push(interface);

        for _ in 0..4 {
            if next_pos > n {
                break;
            }
            let cube = NodeId(nodes.len() as u32);
            nodes.push(cube_node(placement, next_pos));
            links.push(LinkInfo {
                a: interface,
                b: cube,
                class: LinkClass::Interposer,
                skip: false,
            });
            next_pos += 1;
        }
    }

    Topology::from_parts(TopologyKind::MetaCube, nodes, links)
}

/// Extension: a 2-D mesh, the topology the paper *excludes* (§3) because
/// its average hop count beats neither the tree nor, usually, the ring.
/// Cubes are laid out row-major on a near-square grid with the host
/// attached to the corner cube; position order is row-major, so NVM-L
/// still places NVM in the (roughly) farthest rows. Every cube keeps to
/// the 4-port budget: the corner uses host + east + south = 3, interior
/// cubes use their four mesh neighbors.
pub(crate) fn mesh(placement: &Placement) -> Topology {
    let n = placement.cube_count() as u32;
    let width = (n as f64).sqrt().ceil() as u32;
    let mut nodes = vec![host_node()];
    nodes.extend((1..=n).map(|p| cube_node(placement, p)));

    let at = |row: u32, col: u32| -> Option<NodeId> {
        let p = row * width + col + 1;
        (col < width && p <= n).then_some(NodeId(p))
    };

    let mut links = vec![external(NodeId::HOST, NodeId(1))];
    for p in 1..=n {
        let row = (p - 1) / width;
        let col = (p - 1) % width;
        if let Some(east) = at(row, col + 1) {
            links.push(external(NodeId(p), east));
        }
        if let Some(south) = at(row + 1, col) {
            links.push(external(NodeId(p), south));
        }
    }
    Topology::from_parts(TopologyKind::Mesh, nodes, links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::CubeTech;

    fn dram(n: usize) -> Placement {
        Placement::homogeneous(n, CubeTech::Dram)
    }

    #[test]
    fn skiplist_16_matches_paper_structure() {
        let t = skip_list(&dram(16));
        let skips: Vec<(u32, u32)> = t
            .link_ids()
            .map(|l| t.link(l))
            .filter(|l| l.skip)
            .map(|l| (l.a.0, l.b.0))
            .collect();
        assert_eq!(skips, vec![(1, 9), (1, 5), (9, 13), (5, 7), (13, 15)]);
    }

    #[test]
    fn skiplist_small_networks() {
        // 4 cubes (the all-NVM case): one skip of length 2.
        let t = skip_list(&dram(4));
        let skips = t.link_ids().filter(|&l| t.link(l).skip).count();
        assert_eq!(skips, 1);
        // 1 or 2 cubes: no room for skips.
        assert_eq!(
            skip_list(&dram(2))
                .link_ids()
                .filter(|&l| skip_list(&dram(2)).link(l).skip)
                .count(),
            0
        );
    }

    #[test]
    fn skiplist_10_cubes_stays_in_budget() {
        let t = skip_list(&dram(10));
        for (id, _) in t.cubes() {
            assert!(t.degree(id) <= 4);
        }
        let skips = t.link_ids().filter(|&l| t.link(l).skip).count();
        assert!(skips >= 2, "expected skips for 10 cubes, got {skips}");
    }

    #[test]
    fn tree_parents_are_ternary_heap() {
        let t = ternary_tree(&dram(16));
        // Position 5's parent is position 2.
        let n5 = t.cube_at_position(5).unwrap();
        let parents: Vec<u32> = t
            .neighbors(n5)
            .iter()
            .map(|&(nb, _)| t.node(nb).position)
            .filter(|&p| p < 5)
            .collect();
        assert_eq!(parents, vec![2]);
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        let t = ternary_tree(&dram(16));
        let r = t.routing();
        let max = (1..=16)
            .map(|p| r.read_hops(t.host(), t.cube_at_position(p).unwrap()))
            .max()
            .unwrap();
        assert!(max <= 4, "tree of 16 should be <= 4 hops deep, got {max}");
    }

    #[test]
    fn metacube_packages_of_four() {
        let t = metacube(&dram(10)); // 3 packages: 4 + 4 + 2
        let interfaces = t
            .node_ids()
            .filter(|&id| t.node(id).kind == NodeKind::Interface)
            .count();
        assert_eq!(interfaces, 3);
        assert_eq!(t.cube_count(), 10);
    }

    #[test]
    fn mesh_structure_and_hops() {
        let t = mesh(&dram(16)); // 4x4
                                 // Interior cubes have 4 mesh links; the host corner has 3 + host.
        let corner = t.cube_at_position(1).unwrap();
        assert_eq!(t.degree(corner), 3);
        let interior = t.cube_at_position(6).unwrap(); // (1,1)
        assert_eq!(t.degree(interior), 4);
        let r = t.routing();
        // Opposite corner: 1 (host) + manhattan distance 6.
        let far = t.cube_at_position(16).unwrap();
        assert_eq!(r.read_hops(t.host(), far), 7);
        // The paper's exclusion argument: the mesh's average hop count
        // exceeds the ternary tree's.
        use crate::metrics::TopologyMetrics;
        let mesh_m = TopologyMetrics::compute(&t);
        let tree_m = TopologyMetrics::compute(&ternary_tree(&dram(16)));
        assert!(mesh_m.avg_read_hops > tree_m.avg_read_hops);
    }

    #[test]
    fn mesh_non_square_counts() {
        let t = mesh(&dram(10)); // 4-wide, 2.5 rows
        assert_eq!(t.cube_count(), 10);
        for (id, _) in t.cubes() {
            assert!(t.degree(id) <= 4);
        }
    }

    #[test]
    fn ring_of_one_has_no_duplicate_link() {
        let t = ring(&dram(1));
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    fn chain_positions_are_sequential() {
        let t = chain(&dram(5));
        for p in 1..=5 {
            assert_eq!(t.cube_at_position(p).unwrap(), NodeId(p));
        }
    }
}
