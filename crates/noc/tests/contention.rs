//! Behavioural tests of the interconnect under contention: response
//! priority, credit backpressure cascades, duplexing, and arbitration
//! service shares. These drive the `Network` directly (no memory model),
//! so every effect observed is purely a network property.

use mn_noc::{ArbiterKind, LinkDuplex, Network, NocConfig, Packet, PacketKind};
use mn_sim::{SimDuration, SimTime};
use mn_topo::{CubeTech, NodeId, Placement, Topology, TopologyKind};

fn chain(n: usize) -> Topology {
    Topology::build(
        TopologyKind::Chain,
        &Placement::homogeneous(n, CubeTech::Dram),
    )
    .unwrap()
}

/// Drives the network until quiescent, collecting deliveries with their
/// arrival times.
fn drain(net: &mut Network) -> Vec<(NodeId, u64, SimTime)> {
    let mut out = Vec::new();
    let mut ready = Vec::new();
    let mut now = SimTime::ZERO;
    loop {
        net.advance(now, &mut ready);
        for &node in &ready {
            while let Some(d) = net.take_delivery(node, now) {
                out.push((d.node, d.packet.token, d.arrived_at));
            }
        }
        match net.next_event_time() {
            Some(t) => now = t,
            None => break,
        }
    }
    out
}

#[test]
fn responses_preempt_requests_on_shared_links() {
    // A stream of responses from cube 2 and requests from the host fight
    // over the half-duplex host—c1—c2 links. With response priority, the
    // responses' total latency should not degrade relative to running
    // alone, while the requests absorb the queuing.
    let topo = chain(2);
    let c2 = topo.cube_at_position(2).unwrap();

    // Responses alone.
    let mut solo = Network::new(&topo, NocConfig::default());
    for t in 0..8 {
        let req = Packet::request(t, PacketKind::ReadRequest, topo.host(), c2);
        let resp = Packet::response_to(&req, false);
        solo.inject(c2, 0, resp, SimTime::ZERO).unwrap();
    }
    let solo_last = drain(&mut solo).iter().map(|&(_, _, at)| at).max().unwrap();

    // Responses with competing request traffic.
    let mut busy = Network::new(&topo, NocConfig::default());
    for t in 0..8 {
        let req = Packet::request(t, PacketKind::ReadRequest, topo.host(), c2);
        let resp = Packet::response_to(&req, false);
        busy.inject(c2, 0, resp, SimTime::ZERO).unwrap();
        let competing = Packet::request(100 + t, PacketKind::WriteRequest, topo.host(), c2);
        busy.inject(topo.host(), 0, competing, SimTime::ZERO)
            .unwrap();
    }
    let deliveries = drain(&mut busy);
    let busy_resp_last = deliveries
        .iter()
        .filter(|&&(node, _, _)| node == topo.host())
        .map(|&(_, _, at)| at)
        .max()
        .unwrap();

    // Allow one write-request serialization of slack: a response can find
    // the link just taken by a data packet (priority is non-preemptive).
    let slack = SimDuration::from_ps(80 * 33 + 2_000);
    assert!(
        busy_resp_last <= solo_last + slack,
        "responses degraded: solo {solo_last}, contended {busy_resp_last}"
    );
}

#[test]
fn backpressure_cascades_upstream_without_loss() {
    // Tiny buffers on a long chain: flooding the far cube must not lose or
    // duplicate packets, only slow them down.
    let topo = chain(8);
    let cfg = NocConfig {
        buffer_packets: 1,
        ejection_packets: 1,
        ..NocConfig::default()
    };
    let mut net = Network::new(&topo, cfg);
    let far = topo.cube_at_position(8).unwrap();

    let mut pending: Vec<Packet> = (0..32)
        .map(|t| Packet::request(t, PacketKind::ReadRequest, topo.host(), far))
        .collect();
    pending.reverse();

    let mut now = SimTime::ZERO;
    let mut got = Vec::new();
    let mut ready = Vec::new();
    loop {
        while let Some(pkt) = pending.last() {
            if net.can_inject(topo.host(), 0, pkt) {
                let pkt = pending.pop().unwrap();
                net.inject(topo.host(), 0, pkt, now).unwrap();
            } else {
                break;
            }
        }
        net.advance(now, &mut ready);
        for &node in &ready {
            while let Some(d) = net.take_delivery(node, now) {
                got.push(d.packet.token);
            }
        }
        match net.next_event_time() {
            Some(t) => now = t,
            None if pending.is_empty() => break,
            None => panic!("wedged with {} pending", pending.len()),
        }
    }
    got.sort_unstable();
    assert_eq!(got, (0..32).collect::<Vec<_>>());
    assert_eq!(net.in_flight(), 0);
}

#[test]
fn full_duplex_cuts_round_trip_under_bidirectional_load() {
    let run = |duplex: LinkDuplex| {
        let topo = chain(4);
        let cfg = NocConfig {
            duplex,
            ..NocConfig::default()
        };
        let mut net = Network::new(&topo, cfg);
        let far = topo.cube_at_position(4).unwrap();
        // Bidirectional flood: requests out, responses back (inject as
        // buffer space allows).
        let mut down: Vec<Packet> = (0..16)
            .map(|t| Packet::request(t, PacketKind::WriteRequest, topo.host(), far))
            .collect();
        let mut up: Vec<Packet> = (0..16)
            .map(|t| {
                let r = Packet::request(100 + t, PacketKind::ReadRequest, topo.host(), far);
                Packet::response_to(&r, false)
            })
            .collect();
        down.reverse();
        up.reverse();
        let mut now = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        let mut ready = Vec::new();
        loop {
            while down
                .last()
                .is_some_and(|p| net.can_inject(topo.host(), 0, p))
            {
                let p = down.pop().unwrap();
                net.inject(topo.host(), 0, p, now).unwrap();
            }
            while up.last().is_some_and(|p| net.can_inject(far, 0, p)) {
                let p = up.pop().unwrap();
                net.inject(far, 0, p, now).unwrap();
            }
            net.advance(now, &mut ready);
            for &node in &ready {
                while let Some(d) = net.take_delivery(node, now) {
                    last = last.max(d.arrived_at);
                }
            }
            match net.next_event_time() {
                Some(t) => now = t,
                None if down.is_empty() && up.is_empty() => break,
                None => panic!("wedged"),
            }
        }
        last
    };
    let half = run(LinkDuplex::Half);
    let full = run(LinkDuplex::Full);
    assert!(
        full < half,
        "independent channels must finish sooner: full {full} vs half {half}"
    );
}

#[test]
fn distance_arbitration_shifts_service_toward_through_traffic() {
    // At cube 1, four local quadrants and the through port contend for the
    // host link. Count how early the far cube's responses land under each
    // arbiter: distance weighting should deliver them sooner.
    let order_of_far = |arbiter: ArbiterKind| {
        let topo = chain(2);
        let cfg = NocConfig {
            arbiter,
            ..NocConfig::default()
        };
        let mut net = Network::new(&topo, cfg);
        let near = topo.cube_at_position(1).unwrap();
        let far = topo.cube_at_position(2).unwrap();
        // Preload: four local responses per quadrant at cube 1, and four
        // far responses queued behind them.
        for q in 0..4 {
            for i in 0..2 {
                let req = Packet::request(
                    (q * 2 + i) as u64,
                    PacketKind::ReadRequest,
                    topo.host(),
                    near,
                );
                let resp = Packet::response_to(&req, false);
                net.inject(near, q, resp, SimTime::ZERO).unwrap();
            }
        }
        for t in 0..4 {
            let req = Packet::request(100 + t, PacketKind::ReadRequest, topo.host(), far);
            let resp = Packet::response_to(&req, false);
            net.inject(far, 0, resp, SimTime::ZERO).unwrap();
        }
        let deliveries = drain(&mut net);
        // Mean arrival index of the far responses (tokens >= 100).
        let mut far_rank_sum = 0usize;
        for (rank, &(_, token, _)) in deliveries.iter().enumerate() {
            if token >= 100 {
                far_rank_sum += rank;
            }
        }
        far_rank_sum
    };
    let rr = order_of_far(ArbiterKind::RoundRobin);
    let dist = order_of_far(ArbiterKind::Distance);
    assert!(
        dist < rr,
        "distance arbitration must deliver traveled packets earlier (rr {rr}, dist {dist})"
    );
}

#[test]
fn link_utilization_reflects_traffic() {
    let topo = chain(2);
    let mut net = Network::new(&topo, NocConfig::default());
    let far = topo.cube_at_position(2).unwrap();
    for t in 0..4 {
        let pkt = Packet::request(t, PacketKind::WriteRequest, topo.host(), far);
        net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
    }
    let _ = drain(&mut net);
    // Both links carried four 80-byte packets in the a->b direction.
    let expect = SimDuration::from_ps(4 * 80 * 33);
    assert_eq!(net.stats().link_busy_time(0, 0), expect);
    assert_eq!(net.stats().link_busy_time(1, 0), expect);
    assert_eq!(net.stats().link_busy_time(0, 1), SimDuration::ZERO);
    assert!(net.stats().arbitration_rounds.value() > 0);
}

#[test]
fn ejection_buffer_backpressure_holds_packets_in_network() {
    let topo = chain(2);
    let cfg = NocConfig {
        ejection_packets: 1,
        ..NocConfig::default()
    };
    let mut net = Network::new(&topo, cfg);
    let c1 = topo.cube_at_position(1).unwrap();
    for t in 0..4 {
        let pkt = Packet::request(t, PacketKind::ReadRequest, topo.host(), c1);
        net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
    }
    // Run the network without taking deliveries: only one packet fits the
    // ejection buffer; the rest wait in input buffers.
    let mut now = SimTime::ZERO;
    let mut ready = Vec::new();
    while let Some(t) = net.next_event_time() {
        now = t;
        net.advance(now, &mut ready);
    }
    assert!(net.has_delivery(c1));
    assert_eq!(net.peek_delivery(c1).unwrap().token, 0);
    assert_eq!(net.in_flight(), 4, "nothing delivered yet");
    // Draining the ejection buffer lets the rest flow.
    let mut got = 0;
    loop {
        while net.take_delivery(c1, now).is_some() {
            got += 1;
        }
        match net.next_event_time() {
            Some(t) => {
                now = t;
                net.advance(now, &mut ready);
            }
            None => break,
        }
    }
    while net.take_delivery(c1, now).is_some() {
        got += 1;
    }
    assert_eq!(got, 4);
}
