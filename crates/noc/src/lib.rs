//! # mn-noc — the memory-network interconnect model
//!
//! A packet-level, event-driven model of the point-to-point network that
//! binds memory cubes together. This is the substrate the paper's analysis
//! (§3) identifies as the dominant source of end-to-end memory latency, and
//! the layer where two of its three proposals live:
//!
//! - **Virtual channels with response priority** — requests and responses
//!   travel in separate virtual networks; responses have strict priority at
//!   link egress "to prevent deadlocks from older responses being blocked by
//!   newer requests" (§3.2). This is also what makes the *to-memory* latency
//!   exceed the *from-memory* latency under load.
//! - **Arbitration schemes** (§4.1) — the baseline locally-fair
//!   [`ArbiterKind::RoundRobin`] (which causes the parking-lot problem: a
//!   chain cube serves its four local vault ports 80% of the time),
//!   [`ArbiterKind::Distance`] (weighted by hops traveled, a proxy for age),
//!   and [`ArbiterKind::AdaptiveDistance`] (§5.3: additionally aware of the
//!   source cube's memory technology and of request type, so NVM responses
//!   are not starved and writes can be deferred).
//! - **Read/write differentiated routing** — each packet carries a
//!   [`mn_topo::PathClass`]; on a skip-list topology writes ride the chain
//!   while reads use the skip links (§4.2). The [`WriteBurstDetector`]
//!   implements the §5.3 hysteresis that lets writes use the short paths
//!   during write bursts.
//!
//! The model is packet-granular (not flit-granular): a packet occupies a
//! link for its serialization time (16 lanes x 15 Gbps => 30 GB/s), pays a
//! 2 ns SerDes latency per traversal, and buffers are credit-backpressured
//! packet slots. All effects the paper measures — queuing unfairness, hop
//! count scaling, 5x data-vs-control packet sizes — exist at this
//! granularity.
//!
//! ## Example
//!
//! ```
//! use mn_noc::{Network, NocConfig, Packet, PacketKind};
//! use mn_topo::{Topology, TopologyKind, Placement, CubeTech, PathClass};
//! use mn_sim::SimTime;
//!
//! let topo = Topology::build(
//!     TopologyKind::Chain,
//!     &Placement::homogeneous(4, CubeTech::Dram),
//! ).unwrap();
//! let mut net = Network::new(&topo, NocConfig::default());
//!
//! // Host sends a read request to the last cube in the chain.
//! let dst = topo.cube_at_position(4).unwrap();
//! let pkt = Packet::request(0, PacketKind::ReadRequest, topo.host(), dst);
//! net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
//!
//! // Drive the network until the packet arrives. The `ready` buffer is
//! // caller-owned so the hot loop never reallocates it.
//! let mut deliveries = Vec::new();
//! let mut ready = Vec::new();
//! while let Some(t) = net.next_event_time() {
//!     net.advance(t, &mut ready);
//!     for &node in &ready {
//!         while let Some(d) = net.take_delivery(node, t) {
//!             deliveries.push(d);
//!         }
//!     }
//! }
//! assert_eq!(deliveries.len(), 1);
//! assert_eq!(deliveries[0].node, dst);
//! assert_eq!(deliveries[0].packet.hops(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arbiter;
mod config;
mod fault;
mod network;
mod packet;
mod policy;
mod stats;
mod telem;

pub use arbiter::{
    Arbiter, ArbiterImpl, ArbiterKind, Candidate, DistanceArbiter, OldestFirstArbiter,
    RoundRobinArbiter,
};
pub use config::{LinkDuplex, LinkTiming, NocConfig};
pub use fault::{FaultConfig, FaultModel, FaultStats};
pub use mn_telemetry::TraceConfig;
pub use network::{Delivery, IntoSharedTopology, Network, NetworkError, NetworkFull};
pub use packet::{Packet, PacketId, PacketKind, VirtualChannel};
pub use policy::WriteBurstDetector;
pub use stats::NetStats;
pub use telem::NetTelemetry;
