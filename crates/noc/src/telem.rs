//! Network-side telemetry: lifecycle tracing hooks, link/buffer metrics,
//! and the kernel-event flight recorder.
//!
//! Every hook is an `#[inline]` method that returns immediately unless
//! the configured [`TraceConfig`] asks for its data — one predictable
//! branch on an enum, never a virtual call — and all rings and series
//! are pre-sized at network construction, so even `Full` tracing stays
//! allocation-free in the steady state. With tracing `Off` the hooks
//! read no state and write no state: the kernel's event stream and
//! results are byte-identical to an uninstrumented build.

use mn_sim::{SimDuration, SimTime};
use mn_telemetry::{
    FlightRecorder, LifecycleTracer, QueueDepthStats, TimeSeries, TraceConfig, TraceEvent,
    TraceEventKind,
};
use mn_topo::{LinkId, NodeId, Topology};

use crate::packet::PacketId;

/// Lifecycle events retained per network (the tail of the run when the
/// ring wraps; ~10 MB at 40 bytes/event).
const TRACER_CAPACITY: usize = 1 << 18;

/// Kernel events retained for stall post-mortems.
const FLIGHT_CAPACITY: usize = 256;

/// Initial [`TimeSeries`] bucket width (4 ns; the window widens itself
/// for longer runs).
const UTIL_BUCKET_PS: u64 = 4_096;

/// One kernel event retained by the flight recorder. `Copy` — it is
/// formatted only when a watchdog dump actually happens.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FlightEntry {
    /// A packet landed in an input buffer.
    Arrive {
        at: SimTime,
        node: NodeId,
        port: usize,
        packet: PacketId,
    },
    /// A node ran (or skipped) arbitration.
    TryArb { at: SimTime, node: NodeId },
}

impl FlightEntry {
    fn render(&self) -> String {
        match self {
            FlightEntry::Arrive {
                at,
                node,
                port,
                packet,
            } => format!("{at} arrive {packet} at {node} port {port}"),
            FlightEntry::TryArb { at, node } => format!("{at} try-arb {node}"),
        }
    }
}

/// Telemetry collected by one [`crate::Network`], handed to the port
/// simulator when the run ends.
#[derive(Debug)]
pub struct NetTelemetry {
    /// Lifecycle tracer with one track per link and one per node
    /// (empty unless the mode was [`TraceConfig::Full`]).
    pub tracer: LifecycleTracer,
    /// Per-link `(label, busy-time series)` pairs.
    pub link_util: Vec<(String, TimeSeries)>,
    /// Occupancy distribution across every input buffer.
    pub queue_depth: QueueDepthStats,
}

impl NetTelemetry {
    /// Highest per-bucket utilization across all links (0..=1).
    pub fn peak_link_utilization(&self) -> f64 {
        self.link_util
            .iter()
            .map(|(_, ts)| ts.peak())
            .fold(0.0, f64::max)
    }
}

/// The network's internal telemetry state. All storage is sized at
/// construction according to the mode: `Off` allocates nothing beyond
/// three empty vectors.
#[derive(Debug)]
pub(crate) struct NetTelem {
    mode: TraceConfig,
    tracer: LifecycleTracer,
    flight: FlightRecorder<FlightEntry>,
    link_util: Vec<TimeSeries>,
    queue_depth: QueueDepthStats,
    /// Tracer track per link / per node (`Full` only; empty otherwise).
    link_tracks: Vec<u32>,
    node_tracks: Vec<u32>,
}

impl NetTelem {
    pub(crate) fn new(mode: TraceConfig, topo: &Topology) -> NetTelem {
        let mut tracer = LifecycleTracer::new(if mode.tracing() { TRACER_CAPACITY } else { 1 });
        let mut link_tracks = Vec::new();
        let mut node_tracks = Vec::new();
        if mode.tracing() {
            link_tracks = topo
                .link_ids()
                .map(|l| {
                    let info = topo.link(l);
                    tracer.add_track(format!("link {}-{}", info.a, info.b))
                })
                .collect();
            node_tracks = topo
                .node_ids()
                .map(|n| tracer.add_track(format!("node {n}")))
                .collect();
        }
        let link_util = if mode.enabled() {
            vec![TimeSeries::new(UTIL_BUCKET_PS); topo.link_count()]
        } else {
            Vec::new()
        };
        NetTelem {
            mode,
            tracer,
            flight: FlightRecorder::new(if mode.tracing() { FLIGHT_CAPACITY } else { 1 }),
            link_util,
            queue_depth: QueueDepthStats::new(),
            link_tracks,
            node_tracks,
        }
    }

    /// True when per-event rings are armed (mode `Full`).
    #[inline]
    pub(crate) fn tracing(&self) -> bool {
        self.mode.tracing()
    }

    /// A packet entered the network at a local injection port.
    #[inline]
    pub(crate) fn on_inject(&mut self, now: SimTime, node: NodeId, packet: PacketId, depth: usize) {
        if !self.mode.enabled() {
            return;
        }
        self.queue_depth.record(depth as u64);
        if self.mode.tracing() {
            self.tracer.record(TraceEvent {
                ts_ps: now.as_ps(),
                dur_ps: 0,
                track: self.node_tracks[node.index()],
                kind: TraceEventKind::Inject,
                packet: packet.0,
            });
        }
    }

    /// A packet landed in `node`'s input buffer (post-traversal).
    #[inline]
    pub(crate) fn on_enqueue(
        &mut self,
        now: SimTime,
        node: NodeId,
        packet: PacketId,
        depth: usize,
    ) {
        if !self.mode.enabled() {
            return;
        }
        self.queue_depth.record(depth as u64);
        if self.mode.tracing() {
            self.tracer.record(TraceEvent {
                ts_ps: now.as_ps(),
                dur_ps: 0,
                track: self.node_tracks[node.index()],
                kind: TraceEventKind::Enqueue,
                packet: packet.0,
            });
        }
    }

    /// A packet won link-output arbitration and occupies `link` for
    /// `ser`; `retried` marks fault-stretched occupancy (CRC retry or
    /// lane degradation).
    #[inline]
    pub(crate) fn on_link_send(
        &mut self,
        now: SimTime,
        link: LinkId,
        packet: PacketId,
        ser: SimDuration,
        retried: bool,
    ) {
        if !self.mode.enabled() {
            return;
        }
        self.link_util[link.index()].record(now.as_ps(), ser.as_ps());
        if self.mode.tracing() {
            let track = self.link_tracks[link.index()];
            self.tracer.record(TraceEvent {
                ts_ps: now.as_ps(),
                dur_ps: 0,
                track,
                kind: TraceEventKind::ArbWin,
                packet: packet.0,
            });
            self.tracer.record(TraceEvent {
                ts_ps: now.as_ps(),
                dur_ps: ser.as_ps(),
                track,
                kind: TraceEventKind::Traverse,
                packet: packet.0,
            });
            if retried {
                self.tracer.record(TraceEvent {
                    ts_ps: now.as_ps(),
                    dur_ps: 0,
                    track,
                    kind: TraceEventKind::Retry,
                    packet: packet.0,
                });
            }
        }
    }

    /// A packet moved into `node`'s ejection buffer. `Full` only (there
    /// is no counters-mode aggregate for ejection).
    #[inline]
    pub(crate) fn on_eject(&mut self, now: SimTime, node: NodeId, packet: PacketId) {
        if !self.mode.tracing() {
            return;
        }
        self.tracer.record(TraceEvent {
            ts_ps: now.as_ps(),
            dur_ps: 0,
            track: self.node_tracks[node.index()],
            kind: TraceEventKind::Eject,
            packet: packet.0,
        });
    }

    /// A kernel event was popped; retain it for stall post-mortems.
    /// `Full` only — the caller gates on [`NetTelem::tracing`] to avoid
    /// building the entry at all otherwise.
    #[inline]
    pub(crate) fn on_kernel_event(&mut self, entry: FlightEntry) {
        self.flight.push(entry);
    }

    /// Formats the flight recorder's contents, oldest first (empty
    /// unless the mode was `Full`).
    pub(crate) fn flight_dump(&self) -> Vec<String> {
        self.flight.iter().map(FlightEntry::render).collect()
    }

    /// Extracts the collected telemetry, labeling link series from the
    /// topology. `None` when the mode was `Off`.
    pub(crate) fn take(&mut self, topo: &Topology) -> Option<NetTelemetry> {
        if !self.mode.enabled() {
            return None;
        }
        let link_util = std::mem::take(&mut self.link_util)
            .into_iter()
            .zip(topo.link_ids())
            .map(|(ts, l)| {
                let info = topo.link(l);
                (format!("link {}-{}", info.a, info.b), ts)
            })
            .collect();
        Some(NetTelemetry {
            tracer: std::mem::replace(&mut self.tracer, LifecycleTracer::new(1)),
            link_util,
            queue_depth: std::mem::take(&mut self.queue_depth),
        })
    }
}
