//! Deterministic link-fault injection: transient CRC errors with
//! retry/replay, lane degradation, and hard link failure.
//!
//! Real SerDes links fail in ways the paper's idealized interconnect never
//! does: bit errors force CRC-detected retransmission, individual lanes die
//! and the link trains down to half or quarter width, and whole links go
//! dark. [`FaultModel`] injects all three, deterministically: a dedicated
//! xoshiro256++ stream, seeded only by [`FaultConfig::seed`], decides the
//! static fault schedule (which links are dead or degraded, drawn in
//! link-id order at construction) and the dynamic one (which traversals
//! take a CRC hit, drawn in event order as the simulation runs). Because
//! every port simulation owns its network — and therefore its fault stream
//! — the schedule is a pure function of `(seed, topology, event order)`
//! and is identical at any worker count.
//!
//! Faults cost **latency, never data**: a corrupted packet is NAK'd and
//! replayed from the sender's retry buffer, occupying the link again and
//! paying a backoff per round trip. Hard link failures are routed around
//! where the topology has path diversity; where it does not, the network
//! refuses to build (see `NetworkError::Partitioned`) instead of silently
//! dropping traffic.

use std::fmt;

use mn_sim::{SimDuration, SimRng};
use mn_topo::{LinkId, Topology};

/// Fault-injection tunables. All-zero rates (the default) disable the
/// subsystem entirely: the network then skips fault bookkeeping and its
/// behavior is bit-identical to a build without the fault model.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that one link traversal takes a transient CRC error and
    /// must be replayed. Applied per attempt, so a traversal can fault
    /// repeatedly (geometric replay count, capped by `retry_limit`).
    pub transient_rate: f64,
    /// Probability that a link permanently trains down to reduced width
    /// (half or quarter, an equal-odds draw), stretching serialization by
    /// 2x or 4x for every packet crossing it.
    pub degrade_rate: f64,
    /// Probability that a link is hard-failed from time zero. Routing
    /// avoids dead links where the topology allows; otherwise network
    /// construction reports a partition.
    pub link_kill_rate: f64,
    /// Maximum replays of one traversal before the link gives up error
    /// recovery and forwards the packet anyway (faults cost latency, never
    /// data). Bounds the retry buffer occupancy.
    pub retry_limit: u32,
    /// Extra latency per replay round: NAK propagation plus retry-buffer
    /// turnaround at the sender.
    pub retry_backoff: SimDuration,
    /// Seed of the fault stream. Independent of the workload seed so the
    /// same traffic can be replayed under different fault schedules.
    pub seed: u64,
}

impl FaultConfig {
    /// The no-fault configuration: all rates zero, HMC-like retry
    /// parameters left in place for when a rate is raised.
    pub fn none() -> FaultConfig {
        FaultConfig {
            transient_rate: 0.0,
            degrade_rate: 0.0,
            link_kill_rate: 0.0,
            retry_limit: 8,
            retry_backoff: SimDuration::from_ns(4),
            seed: 0,
        }
    }

    /// True when any fault class can actually fire. The network only
    /// instantiates a [`FaultModel`] (and only perturbs the fingerprint of
    /// cached results) when this holds.
    pub fn enabled(&self) -> bool {
        self.transient_rate > 0.0 || self.degrade_rate > 0.0 || self.link_kill_rate > 0.0
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` or not finite.
    pub fn validate(&self) {
        for (name, rate) in [
            ("transient_rate", self.transient_rate),
            ("degrade_rate", self.degrade_rate),
            ("link_kill_rate", self.link_kill_rate),
        ] {
            assert!(
                rate.is_finite() && (0.0..=1.0).contains(&rate),
                "{name} must be a probability in [0, 1], got {rate}"
            );
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Counters of fault activity, separate from [`crate::NetStats`] so the
/// healthy-path statistics stay untouched by the subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Traversals that took at least one CRC error.
    pub faulted_traversals: u64,
    /// Total replays across all traversals (≥ `faulted_traversals`).
    pub replays: u64,
    /// Traversals that hit `retry_limit` and forwarded anyway.
    pub exhausted_retries: u64,
    /// Links operating at reduced width.
    pub degraded_links: u32,
    /// Links hard-failed at construction.
    pub dead_links: u32,
}

/// The instantiated fault schedule for one network.
///
/// # Example
///
/// ```
/// use mn_noc::{FaultConfig, FaultModel};
/// use mn_topo::{Topology, TopologyKind, Placement, CubeTech};
///
/// let topo = Topology::build(
///     TopologyKind::Ring,
///     &Placement::homogeneous(16, CubeTech::Dram),
/// ).unwrap();
/// let cfg = FaultConfig { degrade_rate: 0.5, seed: 7, ..FaultConfig::none() };
/// let a = FaultModel::build(&topo, cfg.clone());
/// let b = FaultModel::build(&topo, cfg);
/// // Same seed, same topology: identical schedule.
/// assert_eq!(a.stats(), b.stats());
/// ```
#[derive(Debug, Clone)]
pub struct FaultModel {
    config: FaultConfig,
    rng: SimRng,
    /// Per-link serialization stretch as a shift: 0 → full width,
    /// 1 → half (2x), 2 → quarter (4x).
    width_shift: Vec<u8>,
    dead: Vec<LinkId>,
    stats: FaultStats,
}

impl FaultModel {
    /// Draws the static fault schedule for `topo`.
    ///
    /// Exactly three Bernoulli draws are consumed per link (kill, degrade,
    /// half-vs-quarter), unconditionally and in link-id order, so the
    /// stream position after construction — and hence the dynamic
    /// transient schedule — depends only on the seed and the link count,
    /// never on which static faults happened to land.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`FaultConfig::validate`].
    pub fn build(topo: &Topology, config: FaultConfig) -> FaultModel {
        config.validate();
        let mut rng = SimRng::seed_from(config.seed);
        let mut width_shift = vec![0u8; topo.link_count()];
        let mut dead = Vec::new();
        for link in topo.link_ids() {
            let kill = rng.chance(config.link_kill_rate);
            let degrade = rng.chance(config.degrade_rate);
            let quarter = rng.chance(0.5);
            if kill {
                dead.push(link);
            } else if degrade {
                width_shift[link.index()] = if quarter { 2 } else { 1 };
            }
        }
        let stats = FaultStats {
            degraded_links: width_shift.iter().filter(|&&s| s > 0).count() as u32,
            dead_links: dead.len() as u32,
            ..FaultStats::default()
        };
        FaultModel {
            config,
            rng,
            width_shift,
            dead,
            stats,
        }
    }

    /// Fault-adjusted link occupancy for one traversal whose healthy
    /// serialization time is `ser`: degradation widens every attempt, and
    /// each CRC error re-serializes the packet and pays the retry backoff.
    ///
    /// Consumes one Bernoulli draw per attempt (1 + replays draws total),
    /// in event order — the caller's deterministic arbitration order *is*
    /// the fault schedule's order.
    pub fn traverse(&mut self, link: LinkId, ser: SimDuration) -> SimDuration {
        let ser = ser * (1u64 << self.width_shift[link.index()]);
        let mut replays: u32 = 0;
        let mut delivered = false;
        while replays < self.config.retry_limit {
            if !self.rng.chance(self.config.transient_rate) {
                delivered = true;
                break;
            }
            replays += 1;
        }
        if !delivered {
            self.stats.exhausted_retries += 1;
        }
        if replays > 0 {
            self.stats.faulted_traversals += 1;
            self.stats.replays += u64::from(replays);
        }
        ser * u64::from(replays + 1) + self.config.retry_backoff * u64::from(replays)
    }

    /// Links hard-failed at construction, in ascending id order.
    pub fn dead_links(&self) -> &[LinkId] {
        &self.dead
    }

    /// True when `link` is hard-failed.
    pub fn is_dead(&self, link: LinkId) -> bool {
        self.dead.binary_search(&link).is_ok()
    }

    /// The width stretch shift for `link` (0 → healthy, 1 → half width,
    /// 2 → quarter width).
    pub fn width_shift(&self, link: LinkId) -> u8 {
        self.width_shift[link.index()]
    }

    /// Fault activity so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The configuration this schedule was drawn from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dead, {} degraded links; {} faulted traversals, {} replays ({} exhausted)",
            self.dead_links,
            self.degraded_links,
            self.faulted_traversals,
            self.replays,
            self.exhausted_retries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_topo::{CubeTech, Placement, TopologyKind};

    fn ring16() -> Topology {
        Topology::build(
            TopologyKind::Ring,
            &Placement::homogeneous(16, CubeTech::Dram),
        )
        .unwrap()
    }

    #[test]
    fn same_seed_same_schedule() {
        let topo = ring16();
        let cfg = FaultConfig {
            transient_rate: 0.1,
            degrade_rate: 0.3,
            link_kill_rate: 0.1,
            seed: 42,
            ..FaultConfig::none()
        };
        let mut a = FaultModel::build(&topo, cfg.clone());
        let mut b = FaultModel::build(&topo, cfg);
        assert_eq!(a.dead_links(), b.dead_links());
        for link in topo.link_ids() {
            assert_eq!(a.width_shift(link), b.width_shift(link));
        }
        // The dynamic streams agree too.
        let live = topo
            .link_ids()
            .find(|&l| !a.is_dead(l))
            .expect("some link survives");
        for _ in 0..200 {
            assert_eq!(
                a.traverse(live, SimDuration::from_ps(528)),
                b.traverse(live, SimDuration::from_ps(528))
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let topo = ring16();
        let mk = |seed| {
            FaultModel::build(
                &topo,
                FaultConfig {
                    degrade_rate: 0.5,
                    link_kill_rate: 0.2,
                    seed,
                    ..FaultConfig::none()
                },
            )
        };
        // At these rates, 64 static draws per seed: two identical
        // schedules across seeds would be astronomically unlikely.
        let schedules: Vec<Vec<u8>> = (0..4)
            .map(|s| topo.link_ids().map(|l| mk(s).width_shift(l)).collect())
            .collect();
        assert!(schedules.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn certain_transients_hit_the_retry_limit() {
        let topo = ring16();
        let cfg = FaultConfig {
            transient_rate: 1.0,
            retry_limit: 3,
            retry_backoff: SimDuration::from_ns(4),
            seed: 0,
            ..FaultConfig::none()
        };
        let mut fm = FaultModel::build(&topo, cfg);
        let link = topo.link_ids().next().unwrap();
        let ser = SimDuration::from_ps(1000);
        // Every attempt faults: 3 replays, then forward anyway.
        // Occupancy = 4 serializations + 3 backoffs.
        let got = fm.traverse(link, ser);
        assert_eq!(got, ser * 4 + SimDuration::from_ns(4) * 3);
        assert_eq!(fm.stats().replays, 3);
        assert_eq!(fm.stats().faulted_traversals, 1);
        assert_eq!(fm.stats().exhausted_retries, 1);
    }

    #[test]
    fn zero_rates_are_free() {
        let topo = ring16();
        let cfg = FaultConfig::none();
        assert!(!cfg.enabled());
        let mut fm = FaultModel::build(&topo, cfg);
        let link = topo.link_ids().next().unwrap();
        let ser = SimDuration::from_ps(528);
        assert_eq!(fm.traverse(link, ser), ser);
        assert_eq!(fm.stats().dead_links, 0);
        assert_eq!(fm.stats().degraded_links, 0);
    }

    #[test]
    fn degraded_links_stretch_serialization() {
        let topo = ring16();
        let cfg = FaultConfig {
            degrade_rate: 1.0,
            seed: 3,
            ..FaultConfig::none()
        };
        let mut fm = FaultModel::build(&topo, cfg);
        assert_eq!(fm.stats().degraded_links as usize, topo.link_count());
        let ser = SimDuration::from_ps(528);
        let mut seen = [false; 3];
        for link in topo.link_ids() {
            let shift = fm.width_shift(link);
            assert!(shift == 1 || shift == 2, "degraded links are 2x or 4x");
            seen[shift as usize] = true;
            assert_eq!(fm.traverse(link, ser), ser * (1 << shift));
        }
        // With 16 links at equal odds, both widths appear.
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn kill_draws_precede_degrade_draws() {
        // A killed link is dead, not degraded, even at degrade_rate 1.
        let topo = ring16();
        let cfg = FaultConfig {
            degrade_rate: 1.0,
            link_kill_rate: 0.5,
            seed: 9,
            ..FaultConfig::none()
        };
        let fm = FaultModel::build(&topo, cfg);
        assert!(!fm.dead_links().is_empty());
        for &link in fm.dead_links() {
            assert!(fm.is_dead(link));
            assert_eq!(fm.width_shift(link), 0);
        }
        assert_eq!(
            fm.stats().dead_links as usize + fm.stats().degraded_links as usize,
            topo.link_count()
        );
    }

    #[test]
    #[should_panic(expected = "transient_rate must be a probability")]
    fn rates_outside_unit_interval_rejected() {
        FaultConfig {
            transient_rate: 1.5,
            ..FaultConfig::none()
        }
        .validate();
    }
}
