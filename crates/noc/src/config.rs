//! Network configuration: the §5 link and buffer parameters.

use mn_sim::SimDuration;
use mn_topo::LinkClass;

use crate::arbiter::ArbiterKind;
use crate::fault::FaultConfig;
use crate::packet::PacketKind;

/// Whether a link's two directions share one physical channel.
///
/// The paper's network has a *single* link between connected packages, so
/// responses and requests contend for it and response priority directly
/// delays requests — the §3.2 explanation for why to-memory latency
/// exceeds from-memory latency. [`LinkDuplex::Half`] models that;
/// [`LinkDuplex::Full`] gives each direction its own channel (useful for
/// ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDuplex {
    /// One shared channel; a packet in either direction occupies the link.
    Half,
    /// Independent channels per direction.
    Full,
}

/// Timing for one link class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTiming {
    /// Serialization cost per byte. External links are 16 lanes at 15 Gbps
    /// = 30 GB/s, i.e. ~33 ps/byte (§5).
    pub ps_per_byte: u64,
    /// Fixed per-traversal latency for serialization/scrambling circuitry
    /// (2 ns for external SerDes links; ~0 for interposer wires).
    pub fixed_latency: SimDuration,
}

impl LinkTiming {
    /// Transmission occupancy for a packet of `bytes`.
    pub fn serialize(&self, bytes: u32) -> SimDuration {
        SimDuration::from_ps(self.ps_per_byte * u64::from(bytes))
    }
}

/// All tunables of the interconnect model, preset to the paper's §5 values.
#[derive(Debug, Clone, PartialEq)]
pub struct NocConfig {
    /// Size of control packets (read requests, write acks), bytes.
    pub control_bytes: u32,
    /// Size of data packets (write requests, read responses), bytes — 5x
    /// control per §3.2.
    pub data_bytes: u32,
    /// External (SerDes) link timing.
    pub external_link: LinkTiming,
    /// Interposer link timing (inside a MetaCube package: wide and short).
    pub interposer_link: LinkTiming,
    /// Input buffer capacity per (port, virtual channel), in packets.
    pub buffer_packets: usize,
    /// Ejection buffer capacity per (node, virtual channel), in packets.
    pub ejection_packets: usize,
    /// Which arbitration scheme routers use (§4.1, §5.3).
    pub arbiter: ArbiterKind,
    /// Link duplexing (the paper's links are shared/half-duplex).
    pub duplex: LinkDuplex,
    /// Transport energy per bit per hop, picojoules (§5: 5 pJ/bit/hop).
    pub transport_pj_per_bit_hop: f64,
    /// ECN marking threshold, in packets. When nonzero, a link that
    /// forwards a packet while its departure input buffer holds at least
    /// this many packets (the forwarded one included) sets the packet's
    /// congestion mark; the closed-loop host's `Ecn` window policy reacts
    /// to marks echoed on responses. `0` (the default, and the paper
    /// baseline) disables marking entirely — the branch never fires, so
    /// open-loop results are byte-identical.
    pub ecn_threshold: u32,
    /// Link-fault injection (disabled in the paper baseline; see
    /// [`FaultConfig`]).
    pub fault: FaultConfig,
    /// Telemetry mode (off by default; see [`mn_telemetry::TraceConfig`]).
    /// Purely observational: no setting changes the event stream or the
    /// simulated results.
    pub trace: mn_telemetry::TraceConfig,
}

impl NocConfig {
    /// The paper's configuration with round-robin arbitration.
    pub fn paper_baseline() -> NocConfig {
        NocConfig {
            control_bytes: 16,
            data_bytes: 80,
            external_link: LinkTiming {
                // 30 GB/s => 33.3 ps/byte; 33 ps keeps integer math.
                ps_per_byte: 33,
                fixed_latency: SimDuration::from_ns(2),
            },
            interposer_link: LinkTiming {
                // Interposer wires are many times wider; 4x here.
                ps_per_byte: 8,
                fixed_latency: SimDuration::from_ps(500),
            },
            buffer_packets: 8,
            ejection_packets: 8,
            arbiter: ArbiterKind::RoundRobin,
            duplex: LinkDuplex::Half,
            transport_pj_per_bit_hop: 5.0,
            ecn_threshold: 0,
            fault: FaultConfig::none(),
            trace: mn_telemetry::TraceConfig::Off,
        }
    }

    /// Replaces the arbitration scheme.
    pub fn with_arbiter(mut self, arbiter: ArbiterKind) -> NocConfig {
        self.arbiter = arbiter;
        self
    }

    /// Packet size in bytes for `kind`.
    pub fn packet_bytes(&self, kind: PacketKind) -> u32 {
        if kind.carries_data() {
            self.data_bytes
        } else {
            self.control_bytes
        }
    }

    /// Link timing for a link class.
    pub fn link_timing(&self, class: LinkClass) -> LinkTiming {
        match class {
            LinkClass::External => self.external_link,
            LinkClass::Interposer => self.interposer_link,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any size or capacity is zero.
    pub fn validate(&self) {
        assert!(self.control_bytes > 0, "control packets need a size");
        assert!(
            self.data_bytes >= self.control_bytes,
            "data packets cannot be smaller than control packets"
        );
        assert!(self.buffer_packets > 0, "buffers need capacity");
        assert!(self.ejection_packets > 0, "ejection buffers need capacity");
        assert!(
            self.ecn_threshold as usize <= self.buffer_packets,
            "ecn_threshold ({}) can never fire above buffer_packets ({})",
            self.ecn_threshold,
            self.buffer_packets
        );
        self.fault.validate();
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let c = NocConfig::paper_baseline();
        assert_eq!(c.packet_bytes(PacketKind::ReadRequest), 16);
        assert_eq!(c.packet_bytes(PacketKind::ReadResponse), 80);
        assert_eq!(c.packet_bytes(PacketKind::WriteRequest), 80);
        assert_eq!(c.packet_bytes(PacketKind::WriteAck), 16);
        assert_eq!(c.external_link.fixed_latency, SimDuration::from_ns(2));
        assert!((c.transport_pj_per_bit_hop - 5.0).abs() < f64::EPSILON);
        assert_eq!(c.ecn_threshold, 0, "ECN marking must default off");
    }

    #[test]
    #[should_panic(expected = "can never fire")]
    fn validate_rejects_unreachable_ecn_threshold() {
        let c = NocConfig {
            ecn_threshold: 99,
            ..NocConfig::default()
        };
        c.validate();
    }

    #[test]
    fn data_packets_are_5x_control() {
        let c = NocConfig::default();
        assert_eq!(c.data_bytes, 5 * c.control_bytes);
    }

    #[test]
    fn serialization_times() {
        let c = NocConfig::default();
        // An 80-byte data packet at 33 ps/byte = 2.64 ns on the wire.
        assert_eq!(c.external_link.serialize(80), SimDuration::from_ps(2640));
        // Interposer links are 4x faster.
        assert!(c.interposer_link.serialize(80) < c.external_link.serialize(80) / 3);
    }

    #[test]
    fn link_class_lookup() {
        let c = NocConfig::default();
        assert_eq!(c.link_timing(LinkClass::External), c.external_link);
        assert_eq!(c.link_timing(LinkClass::Interposer), c.interposer_link);
    }

    #[test]
    fn with_arbiter_builder() {
        let c = NocConfig::default().with_arbiter(ArbiterKind::Distance);
        assert_eq!(c.arbiter, ArbiterKind::Distance);
    }

    #[test]
    #[should_panic(expected = "cannot be smaller")]
    fn validate_rejects_tiny_data() {
        let c = NocConfig {
            data_bytes: 8,
            ..NocConfig::default()
        };
        c.validate();
    }
}
