//! Packets: the unit of transfer in the memory network.
//!
//! The abstracted memory interface (§2.2) exchanges four packet kinds.
//! Packets carrying data (write requests and read responses) are five times
//! the size of control packets (read requests and write acknowledgments) —
//! the §3.2 assumption that explains why read- and write-heavy workloads
//! have different latency breakdowns.

use std::fmt;

use mn_sim::SimTime;
use mn_topo::{NodeId, PathClass};

/// Globally unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The four message kinds of the abstracted memory protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Host → cube: please read (control-sized).
    ReadRequest,
    /// Host → cube: please write, data attached (data-sized).
    WriteRequest,
    /// Cube → host: read data (data-sized).
    ReadResponse,
    /// Cube → host: write acknowledgment (control-sized).
    WriteAck,
}

impl PacketKind {
    /// True for host→cube messages.
    pub const fn is_request(self) -> bool {
        matches!(self, PacketKind::ReadRequest | PacketKind::WriteRequest)
    }

    /// True for messages that carry a data payload (5x control size).
    pub const fn carries_data(self) -> bool {
        matches!(self, PacketKind::WriteRequest | PacketKind::ReadResponse)
    }

    /// True for write-class traffic (write requests and their acks) — the
    /// traffic a skip list shunts onto the chain and the adaptive arbiter
    /// may defer.
    pub const fn is_write_class(self) -> bool {
        matches!(self, PacketKind::WriteRequest | PacketKind::WriteAck)
    }

    /// The virtual channel this kind travels on.
    pub const fn virtual_channel(self) -> VirtualChannel {
        if self.is_request() {
            VirtualChannel::Request
        } else {
            VirtualChannel::Response
        }
    }

    /// The response kind that answers this request.
    ///
    /// # Panics
    ///
    /// Panics if `self` is already a response.
    pub fn response(self) -> PacketKind {
        match self {
            PacketKind::ReadRequest => PacketKind::ReadResponse,
            PacketKind::WriteRequest => PacketKind::WriteAck,
            other => panic!("{other:?} is not a request"),
        }
    }
}

/// The two virtual networks. Responses have strict priority at link egress
/// (§3.2), which both avoids protocol deadlock and skews queuing latency
/// onto the request path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VirtualChannel {
    /// Host→cube requests.
    Request,
    /// Cube→host responses.
    Response,
}

impl VirtualChannel {
    /// Both channels, response first (the service order).
    pub const PRIORITY_ORDER: [VirtualChannel; 2] =
        [VirtualChannel::Response, VirtualChannel::Request];

    /// Dense index for per-VC arrays.
    pub const fn index(self) -> usize {
        match self {
            VirtualChannel::Request => 0,
            VirtualChannel::Response => 1,
        }
    }

    /// Number of virtual channels.
    pub const COUNT: usize = 2;
}

/// A packet traversing the memory network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Message kind.
    pub kind: PacketKind,
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Which routing plane the packet uses (reads take skip links, writes
    /// ride the chain — unless the write-burst policy upgrades them).
    pub class: PathClass,
    /// Correlates responses with host-side request bookkeeping.
    pub token: u64,
    /// True when the packet's source cube is NVM — responses from slow
    /// arrays are older than their hop count suggests, which the adaptive
    /// arbiter compensates for (§5.1).
    pub src_is_nvm: bool,
    /// When the packet was injected (set by the network).
    pub injected_at: SimTime,
    /// ECN congestion mark: set by a link whose departure buffer is at or
    /// above `NocConfig::ecn_threshold` when the packet is forwarded, and
    /// echoed from a request onto its response so the host's `Ecn` window
    /// policy sees end-to-end congestion. Never set when the threshold is
    /// 0 (the default).
    pub marked: bool,
    hops: u32,
}

impl Packet {
    /// A host-originated request packet on the kind's natural path class
    /// (reads on [`PathClass::Read`], writes on [`PathClass::Write`]).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a request.
    pub fn request(token: u64, kind: PacketKind, src: NodeId, dst: NodeId) -> Packet {
        assert!(kind.is_request(), "{kind:?} is not a request kind");
        let class = if kind.is_write_class() {
            PathClass::Write
        } else {
            PathClass::Read
        };
        Packet {
            id: PacketId(0), // assigned by the network at injection
            kind,
            src,
            dst,
            class,
            token,
            src_is_nvm: false,
            injected_at: SimTime::ZERO,
            marked: false,
            hops: 0,
        }
    }

    /// The response to `request`, traveling back on the same path class,
    /// flagged with whether the answering cube is NVM. The request's ECN
    /// mark is echoed onto the response (marks can also be added en route
    /// back), so the host observes congestion in either direction.
    ///
    /// # Panics
    ///
    /// Panics if `request` is not a request packet.
    pub fn response_to(request: &Packet, src_is_nvm: bool) -> Packet {
        Packet {
            id: PacketId(0),
            kind: request.kind.response(),
            src: request.dst,
            dst: request.src,
            class: request.class,
            token: request.token,
            src_is_nvm,
            injected_at: SimTime::ZERO,
            marked: request.marked,
            hops: 0,
        }
    }

    /// Overrides the path class (the write-burst policy uses this to route
    /// writes over skip links).
    pub fn with_class(mut self, class: PathClass) -> Packet {
        self.class = class;
        self
    }

    /// Link traversals so far.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    pub(crate) fn record_hop(&mut self) {
        self.hops += 1;
    }

    pub(crate) fn assign_id(&mut self, id: PacketId, now: SimTime) {
        self.id = id;
        self.injected_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_classes() {
        assert!(PacketKind::ReadRequest.is_request());
        assert!(!PacketKind::ReadResponse.is_request());
        assert!(PacketKind::WriteRequest.carries_data());
        assert!(PacketKind::ReadResponse.carries_data());
        assert!(!PacketKind::ReadRequest.carries_data());
        assert!(!PacketKind::WriteAck.carries_data());
        assert!(PacketKind::WriteRequest.is_write_class());
        assert!(PacketKind::WriteAck.is_write_class());
        assert!(!PacketKind::ReadResponse.is_write_class());
    }

    #[test]
    fn vc_mapping() {
        assert_eq!(
            PacketKind::ReadRequest.virtual_channel(),
            VirtualChannel::Request
        );
        assert_eq!(
            PacketKind::WriteAck.virtual_channel(),
            VirtualChannel::Response
        );
        assert_eq!(VirtualChannel::PRIORITY_ORDER[0], VirtualChannel::Response);
    }

    #[test]
    fn response_pairing() {
        assert_eq!(PacketKind::ReadRequest.response(), PacketKind::ReadResponse);
        assert_eq!(PacketKind::WriteRequest.response(), PacketKind::WriteAck);
    }

    #[test]
    #[should_panic(expected = "is not a request")]
    fn response_of_response_panics() {
        let _ = PacketKind::ReadResponse.response();
    }

    #[test]
    fn request_constructor_sets_class() {
        let r = Packet::request(9, PacketKind::ReadRequest, NodeId(0), NodeId(3));
        assert_eq!(r.class, PathClass::Read);
        assert_eq!(r.token, 9);
        let w = Packet::request(9, PacketKind::WriteRequest, NodeId(0), NodeId(3));
        assert_eq!(w.class, PathClass::Write);
    }

    #[test]
    fn response_echoes_request_mark() {
        let mut r = Packet::request(5, PacketKind::ReadRequest, NodeId(0), NodeId(3));
        assert!(!r.marked);
        assert!(!Packet::response_to(&r, false).marked);
        r.marked = true;
        assert!(Packet::response_to(&r, false).marked);
    }

    #[test]
    fn response_mirrors_request() {
        let r = Packet::request(5, PacketKind::WriteRequest, NodeId(0), NodeId(3));
        let resp = Packet::response_to(&r, true);
        assert_eq!(resp.kind, PacketKind::WriteAck);
        assert_eq!(resp.src, NodeId(3));
        assert_eq!(resp.dst, NodeId(0));
        assert_eq!(resp.token, 5);
        assert_eq!(resp.class, PathClass::Write);
        assert!(resp.src_is_nvm);
    }

    #[test]
    fn with_class_overrides() {
        let w = Packet::request(0, PacketKind::WriteRequest, NodeId(0), NodeId(3))
            .with_class(PathClass::Read);
        assert_eq!(w.class, PathClass::Read);
    }

    #[test]
    #[should_panic(expected = "not a request kind")]
    fn request_rejects_response_kind() {
        let _ = Packet::request(0, PacketKind::ReadResponse, NodeId(0), NodeId(1));
    }
}
