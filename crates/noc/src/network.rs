//! The network state machine: input-buffered routers joined by
//! bandwidth-modeled links, driven by an internal event queue.
//!
//! ## Model
//!
//! Every node (host, cube, interface chip) is a router with:
//!
//! - one **input buffer per (port, virtual channel)** — ports are the
//!   node's links plus its *local* injection ports (1 for the host, 4 for a
//!   cube: its four quadrant controllers, reproducing the §3.2 arbitration
//!   imbalance where local vaults outnumber the through port);
//! - one **ejection buffer per virtual channel**, from which the owner
//!   (host core or cube logic) pulls packets — a full ejection buffer backs
//!   pressure up into the network;
//! - one **arbiter per output** (each link, plus ejection), implementing
//!   the configured [`crate::ArbiterKind`].
//!
//! Links are full-duplex; each direction carries one packet at a time and
//! is occupied for the packet's serialization time, with a fixed SerDes
//! latency added on top before the packet lands in the neighbor's input
//! buffer. Buffer space is reserved at send time (credit-based flow
//! control), so packets are never dropped.
//!
//! Responses have strict priority over requests at every output, but a
//! blocked response never blocks a request: candidates that lack downstream
//! space simply do not contend.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use mn_sim::{ArenaRef, EventQueue, GenArena, KernelCounters, SimTime};
use mn_topo::{NodeId, NodeKind, PathClass, RoutingTable, Topology};

use crate::arbiter::{ArbiterImpl, Candidate};
use crate::config::{LinkDuplex, NocConfig};
use crate::fault::{FaultModel, FaultStats};
use crate::packet::{Packet, PacketId, VirtualChannel};
use crate::stats::NetStats;
use crate::telem::{FlightEntry, NetTelem, NetTelemetry};

const VC: usize = VirtualChannel::COUNT;

/// Conversion into a shared topology handle for [`Network`] construction.
///
/// Campaigns fan thousands of short per-port jobs over the same topology;
/// passing an `Arc<Topology>` (or a reference to one) shares it, while a
/// plain `&Topology` clones once for callers that don't care.
pub trait IntoSharedTopology {
    /// Produces the shared handle.
    fn into_shared(self) -> Arc<Topology>;
}

impl IntoSharedTopology for Arc<Topology> {
    fn into_shared(self) -> Arc<Topology> {
        self
    }
}

impl IntoSharedTopology for &Arc<Topology> {
    fn into_shared(self) -> Arc<Topology> {
        Arc::clone(self)
    }
}

impl IntoSharedTopology for Topology {
    fn into_shared(self) -> Arc<Topology> {
        Arc::new(self)
    }
}

impl IntoSharedTopology for &Topology {
    fn into_shared(self) -> Arc<Topology> {
        Arc::new(self.clone())
    }
}

/// Error returned when a local injection buffer has no space; retry after
/// the network drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkFull;

impl fmt::Display for NetworkFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injection buffer is full")
    }
}

impl Error for NetworkFull {}

/// Error building a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// Hard link failures severed the network: the listed cubes cannot
    /// exchange traffic with the host on every path class even after
    /// routing around the dead links. Reported at construction — a
    /// partitioned network would otherwise strand packets forever and
    /// present as a hang.
    Partitioned {
        /// Cubes unreachable from the host (ascending id order).
        unreachable: Vec<NodeId>,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Partitioned { unreachable } => {
                write!(
                    f,
                    "dead links partition the network: {} cube(s) unreachable (",
                    unreachable.len()
                )?;
                for (i, node) in unreachable.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{node}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl Error for NetworkError {}

/// A packet pulled from a node's ejection buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The node that received the packet.
    pub node: NodeId,
    /// The packet itself.
    pub packet: Packet,
    /// When the packet entered the ejection buffer.
    pub arrived_at: SimTime,
}

#[derive(Debug, Default)]
struct Buf {
    /// Handles into the network's packet arena, with arrival timestamps.
    queue: VecDeque<(ArenaRef, SimTime)>,
    reserved: usize,
    capacity: usize,
}

impl Buf {
    fn with_capacity(capacity: usize) -> Buf {
        Buf {
            // Buffers are small and bounded; allocating them up front keeps
            // the simulation loop free of growth reallocations.
            queue: VecDeque::with_capacity(capacity),
            reserved: 0,
            capacity,
        }
    }

    fn has_space(&self) -> bool {
        self.queue.len() + self.reserved < self.capacity
    }

    fn head(&self) -> Option<ArenaRef> {
        self.queue.front().map(|&(h, _)| h)
    }
}

/// Per-node geometry into the struct-of-arrays router state: all input
/// buffers live in one flat `Vec<Buf>` (indexed
/// `buf_base + port * VC + vc`), all arbiters in one flat
/// `Vec<ArbiterImpl>` (indexed `arb_base + output`, ejection last), so a
/// node's hot state is contiguous instead of scattered behind per-node
/// `Vec`s and boxed trait objects. Ports are externals first (in adjacency
/// order) then locals.
#[derive(Debug, Clone, Copy)]
struct NodeMeta {
    ext_ports: u32,
    local_ports: u32,
    buf_base: u32,
    arb_base: u32,
}

impl NodeMeta {
    #[inline]
    fn total_ports(self) -> usize {
        (self.ext_ports + self.local_ports) as usize
    }

    #[inline]
    fn buf_idx(self, port: usize, vc: usize) -> usize {
        self.buf_base as usize + port * VC + vc
    }

    /// Arbiter index for external output `out` (`out == ext_ports` is the
    /// ejection output).
    #[inline]
    fn arb_idx(self, out: usize) -> usize {
        self.arb_base as usize + out
    }
}

#[derive(Debug, Clone, Copy)]
enum NetEvent {
    /// A packet finishes traversing a link and lands in `node`'s input
    /// buffer at `port`.
    Arrive {
        node: NodeId,
        port: usize,
        packet: ArenaRef,
    },
    /// Run arbitration at `node`.
    TryArb { node: NodeId },
}

/// The memory-network interconnect behind one host port.
///
/// Drive it like the other components in this workspace: inject packets,
/// call [`Network::advance`] whenever simulated time reaches
/// [`Network::next_event_time`], and pull [`Delivery`]s from nodes it
/// reports ready.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug)]
pub struct Network {
    topo: Arc<Topology>,
    routes: RoutingTable,
    config: NocConfig,
    /// Per-node geometry into the flat state vectors below.
    meta: Vec<NodeMeta>,
    /// All input buffers, struct-of-arrays: `meta[n].buf_idx(port, vc)`.
    bufs: Vec<Buf>,
    /// All ejection buffers: `node * VC + vc`.
    eject: Vec<Buf>,
    /// All arbiters: `meta[n].arb_idx(output)`, ejection last per node.
    arbiters: Vec<ArbiterImpl>,
    /// Every packet inside the network (buffered or in flight) lives here;
    /// buffers and events carry 8-byte [`ArenaRef`] handles. Slots recycle
    /// through a free list, so past the high-water mark the steady-state
    /// path allocates nothing per packet.
    packets: GenArena<Packet>,
    /// `link_free_at[link][dir]`; dir 0 is a→b.
    link_free_at: Vec<[SimTime; 2]>,
    /// `neighbor_ports[node][out_port]`: the input-port index our link
    /// occupies at the neighbor on the other end, precomputed so the send
    /// path never searches the adjacency lists.
    neighbor_ports: Vec<Vec<usize>>,
    events: EventQueue<NetEvent>,
    /// Lazy arbitration-coalescing state: `arb_clean[n]` is true when node
    /// `n` has arbitrated at `last_arb[n]` and no state change that could
    /// enable new movement *at that same instant* has happened since. A
    /// `TryArb` firing for a clean node at exactly `last_arb[n]` is a
    /// provable no-op and its (expensive) port/VC scan is skipped. The
    /// events themselves are never dropped: which packet wins an output
    /// depends on how same-instant arbitrations interleave with arrivals,
    /// so removing or reordering pushes would perturb results — the skip
    /// happens at fire time, where no-op-ness is certain.
    arb_clean: Vec<bool>,
    /// Instant of each node's most recent arbitration (paired with
    /// `arb_clean`; meaningless while the flag is false).
    last_arb: Vec<SimTime>,
    /// Per-node membership flag for the in-progress `advance` ready list —
    /// structural dedup instead of a sort+dedup pass per call.
    ready_pending: Vec<bool>,
    /// Packets currently sitting in each node's *input* buffers (not
    /// ejection). A `TryArb` on a node with zero buffered packets cannot
    /// move anything — neither the ejection nor any link-output scan can
    /// find a head — so `arbitrate` early-outs on this count. Wake
    /// cascades re-arm nodes aggressively, making empty-node arbitrations
    /// the most common event in a steady-state run.
    buffered: Vec<u32>,
    /// Reusable arbitration candidate buffer (cleared before each use).
    scratch: Vec<Candidate>,
    next_packet_id: u64,
    stats: NetStats,
    /// Fault injection state; `None` on the zero-fault path, which then
    /// executes exactly the pre-fault-model arithmetic (the bit-identical
    /// baseline contract).
    faults: Option<FaultModel>,
    /// Telemetry state. Every hook early-returns on the mode enum
    /// (`Off` by default), so the instrumented hot path costs one
    /// predictable branch; rings and series are pre-sized here at
    /// construction so even `Full` tracing allocates nothing per event.
    telem: NetTelem,
}

impl Network {
    /// Builds the network for `topo` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation (see [`NocConfig::validate`])
    /// or if fault injection partitioned the network — use
    /// [`Network::try_new`] to handle partitions structurally.
    pub fn new(topo: impl IntoSharedTopology, config: NocConfig) -> Network {
        Network::try_new(topo, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the network, reporting a [`NetworkError::Partitioned`] when
    /// hard link faults leave some cube with no route to the host.
    ///
    /// Accepts an `Arc<Topology>` (shared — campaigns fanning out per-port
    /// jobs reuse one topology allocation) or a `&Topology` (cloned once).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation (see [`NocConfig::validate`]).
    pub fn try_new(
        topo: impl IntoSharedTopology,
        config: NocConfig,
    ) -> Result<Network, NetworkError> {
        let topo = topo.into_shared();
        config.validate();
        let config_trace = config.trace;
        let faults = config
            .fault
            .enabled()
            .then(|| FaultModel::build(&topo, config.fault.clone()));
        let dead = faults.as_ref().map_or(&[][..], |fm| fm.dead_links());
        let routes = if dead.is_empty() {
            topo.routing()
        } else {
            let routes = RoutingTable::compute_avoiding(&topo, dead);
            // Every cube must exchange traffic with the host on both path
            // classes (after the write→read degradation inside
            // `compute_avoiding`); anything less would strand packets.
            let unreachable: Vec<NodeId> = topo
                .cubes()
                .map(|(cube, _)| cube)
                .filter(|&cube| {
                    PathClass::ALL.iter().any(|&class| {
                        !routes.reachable(class, topo.host(), cube)
                            || !routes.reachable(class, cube, topo.host())
                    })
                })
                .collect();
            if !unreachable.is_empty() {
                return Err(NetworkError::Partitioned { unreachable });
            }
            routes
        };
        let mut meta = Vec::with_capacity(topo.node_count());
        let mut bufs = Vec::new();
        let mut eject = Vec::with_capacity(topo.node_count() * VC);
        let mut arbiters = Vec::new();
        let mut link_ports = vec![Vec::new(); topo.node_count()];
        for id in topo.node_ids() {
            let ext_ports = topo.degree(id);
            let local_ports = match topo.node(id).kind {
                NodeKind::Host => 1,
                // Four quadrant controllers inject responses (§3.2: "four
                // of the input queues come from the cube's local vaults").
                NodeKind::Cube(_) => 4,
                NodeKind::Interface => 0,
            };
            for (port, &(_, link)) in topo.neighbors(id).iter().enumerate() {
                link_ports[id.index()].push((link, port));
            }
            let total_ports = ext_ports + local_ports;
            let buf_base = u32::try_from(bufs.len()).expect("buffer count fits u32");
            for _ in 0..total_ports * VC {
                bufs.push(Buf::with_capacity(config.buffer_packets));
            }
            for _ in 0..VC {
                eject.push(Buf::with_capacity(config.ejection_packets));
            }
            // One arbiter per external output port plus one for ejection.
            let arb_base = u32::try_from(arbiters.len()).expect("arbiter count fits u32");
            for _ in 0..=ext_ports {
                arbiters.push(config.arbiter.instantiate(total_ports));
            }
            meta.push(NodeMeta {
                ext_ports: ext_ports as u32,
                local_ports: local_ports as u32,
                buf_base,
                arb_base,
            });
        }
        // Every live packet sits in some buffer slot or is in flight on a
        // link (a handful per direction at most — serialization admits one
        // packet at a time and the SerDes pipeline is short). Sizing the
        // arena for that bound up front keeps the steady state free of
        // slot-vector growth.
        let arena_capacity = bufs
            .iter()
            .chain(eject.iter())
            .map(|b| b.capacity)
            .sum::<usize>()
            + 8 * topo.link_count();
        let neighbor_ports = topo
            .node_ids()
            .map(|id| {
                topo.neighbors(id)
                    .iter()
                    .map(|&(neighbor, link)| {
                        link_ports[neighbor.index()]
                            .iter()
                            .find(|(l, _)| *l == link)
                            .map(|&(_, p)| p)
                            .expect("link attaches to both endpoints")
                    })
                    .collect()
            })
            .collect();
        let stats = NetStats::new(topo.link_count());
        // Pre-size the heap for the common working set — order one
        // arbitration event per node plus one in-flight packet per link
        // direction, doubled for wake cascades. The heap still grows past
        // this under heavy transients; the hint only avoids the early
        // doubling reallocations in every simulation's warm-up.
        let event_capacity = 2 * (topo.node_count() + 2 * topo.link_count());
        // Tune the ladder bucket width to the topology's event horizon:
        // the minimum single-link traversal (fixed latency + control-
        // packet serialization) is the shortest interval the simulation
        // routinely schedules across, so one 256-bucket window then spans
        // a few hundred of the *fastest* hops regardless of the SerDes
        // timing swept. Clamped to [128, 65536] ps so degenerate timings
        // neither collapse the window nor blow up bucket granularity;
        // linkless topologies keep the kernel default. Pop order — and
        // hence every result byte — is width-independent (see
        // `mn_sim::ladder`); only the spill/rewindow counters move.
        let bucket_ps = topo
            .link_ids()
            .map(|l| {
                let timing = config.link_timing(topo.link(l).class);
                (timing.fixed_latency + timing.serialize(config.control_bytes)).as_ps()
            })
            .min()
            .map_or(mn_sim::ladder::BUCKET_PS, |ps| ps.clamp(128, 65_536));
        Ok(Network {
            routes,
            config,
            meta,
            bufs,
            eject,
            arbiters,
            packets: GenArena::with_capacity(arena_capacity),
            link_free_at: vec![[SimTime::ZERO; 2]; topo.link_count()],
            neighbor_ports,
            events: EventQueue::with_capacity_and_bucket(event_capacity, bucket_ps),
            arb_clean: vec![false; topo.node_count()],
            last_arb: vec![SimTime::ZERO; topo.node_count()],
            ready_pending: vec![false; topo.node_count()],
            buffered: vec![0; topo.node_count()],
            scratch: Vec::with_capacity(16),
            next_packet_id: 0,
            stats,
            faults,
            telem: NetTelem::new(config_trace, &topo),
            topo,
        })
    }

    /// The routing table the network forwards with.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Fault activity so far; `None` when fault injection is disabled.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|fm| fm.stats())
    }

    /// Number of local injection ports at `node` (1 for the host, 4 for
    /// cubes, 0 for interface chips).
    pub fn local_ports(&self, node: NodeId) -> usize {
        self.meta[node.index()].local_ports as usize
    }

    /// True if `packet` could be injected at `node`/`local_port` right now.
    pub fn can_inject(&self, node: NodeId, local_port: usize, packet: &Packet) -> bool {
        let meta = self.meta[node.index()];
        assert!(
            local_port < meta.local_ports as usize,
            "node {node} has {} local ports, got {local_port}",
            meta.local_ports
        );
        let port = meta.ext_ports as usize + local_port;
        self.bufs[meta.buf_idx(port, packet.kind.virtual_channel().index())].has_space()
    }

    /// Injects `packet` into `node`'s local port.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkFull`] when the injection buffer has no space.
    ///
    /// # Panics
    ///
    /// Panics if `local_port` is out of range or the packet is addressed to
    /// its own injection node.
    pub fn inject(
        &mut self,
        node: NodeId,
        local_port: usize,
        mut packet: Packet,
        now: SimTime,
    ) -> Result<PacketId, NetworkFull> {
        assert!(packet.dst != node, "packet addressed to its own node");
        if !self.can_inject(node, local_port, &packet) {
            return Err(NetworkFull);
        }
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        packet.assign_id(id, now);
        let meta = self.meta[node.index()];
        let port = meta.ext_ports as usize + local_port;
        let vc = packet.kind.virtual_channel().index();
        let handle = self.packets.insert(packet);
        let buf = &mut self.bufs[meta.buf_idx(port, vc)];
        buf.queue.push_back((handle, now));
        let depth = buf.queue.len();
        self.buffered[node.index()] += 1;
        self.stats.injected.incr();
        self.telem.on_inject(now, node, id, depth);
        self.request_arb(node, now);
        Ok(id)
    }

    /// The next instant at which [`Network::advance`] can make progress.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Schedules an arbitration for `node` at `time` and marks the node
    /// dirty, so the pending-event skip in [`Network::advance`] cannot
    /// treat it as a no-op. Every push site goes through here: the pushed
    /// stream (and hence the FIFO sequence numbering that orders
    /// same-instant events) is exactly the pre-optimization one, which is
    /// what keeps results bit-identical.
    fn request_arb(&mut self, node: NodeId, time: SimTime) {
        self.arb_clean[node.index()] = false;
        self.events.push(time, NetEvent::TryArb { node });
    }

    /// Processes all internal events up to and including `now`, appending
    /// the nodes whose ejection buffers gained packets to `ready` (cleared
    /// first, each node at most once, in ascending order); pull them with
    /// [`Network::take_delivery`].
    ///
    /// The caller owns — and should reuse — the `ready` buffer: the hot
    /// loop of a port simulation calls this every iteration, and
    /// re-allocating the list per call was a measurable tax.
    pub fn advance(&mut self, now: SimTime, ready: &mut Vec<NodeId>) {
        ready.clear();
        while self.events.peek_time().is_some_and(|t| t <= now) {
            let (t, event) = self.events.pop().expect("peeked");
            if self.telem.tracing() {
                self.telem.on_kernel_event(match event {
                    NetEvent::Arrive { node, port, packet } => FlightEntry::Arrive {
                        at: t,
                        node,
                        port,
                        packet: self
                            .packets
                            .get(packet)
                            .map_or(PacketId(u64::MAX), |p| p.id),
                    },
                    NetEvent::TryArb { node } => FlightEntry::TryArb { at: t, node },
                });
            }
            match event {
                NetEvent::Arrive { node, port, packet } => {
                    self.handle_arrival(node, port, packet, t);
                }
                NetEvent::TryArb { node } => {
                    // Skip the scan when this is provably a no-op: the
                    // node already arbitrated at this exact instant and
                    // nothing has changed since. At a *later* instant a
                    // busy link may have freed, so the flag only holds
                    // within one timestamp. The flag is set before the
                    // scan: packet movement inside `arbitrate` re-dirties
                    // the node (via `wake_upstream`), exactly like the
                    // self-wake events the original kernel relied on.
                    if !(self.arb_clean[node.index()] && self.last_arb[node.index()] == t) {
                        self.arb_clean[node.index()] = true;
                        self.last_arb[node.index()] = t;
                        self.arbitrate(node, t, ready);
                    }
                }
            }
        }
        // Membership is already unique (structural dedup via
        // `ready_pending`); the sort stays because callers drain nodes in
        // ascending order and the drain order is part of the deterministic,
        // bit-reproducible behavior the result cache depends on.
        ready.sort_unstable();
        for &node in ready.iter() {
            self.ready_pending[node.index()] = false;
        }
    }

    /// Pops the oldest deliverable packet at `node` (responses before
    /// requests), freeing ejection space — which may unblock the network.
    pub fn take_delivery(&mut self, node: NodeId, now: SimTime) -> Option<Delivery> {
        for vc in VirtualChannel::PRIORITY_ORDER {
            if let Some((handle, arrived_at)) =
                self.eject[node.index() * VC + vc.index()].queue.pop_front()
            {
                let packet = self.packets.remove(handle);
                self.stats.delivered.incr();
                self.request_arb(node, now);
                return Some(Delivery {
                    node,
                    packet,
                    arrived_at,
                });
            }
        }
        None
    }

    /// The packet [`Network::take_delivery`] would return next at `node`,
    /// without removing it. Lets cube logic check controller space before
    /// committing — the backpressure path.
    pub fn peek_delivery(&self, node: NodeId) -> Option<&Packet> {
        VirtualChannel::PRIORITY_ORDER.iter().find_map(|vc| {
            self.eject[node.index() * VC + vc.index()]
                .head()
                .map(|h| self.packets.get(h).expect("ejected packet is live"))
        })
    }

    /// True if `node` has a deliverable packet waiting.
    pub fn has_delivery(&self, node: NodeId) -> bool {
        self.eject[node.index() * VC..node.index() * VC + VC]
            .iter()
            .any(|b| !b.queue.is_empty())
    }

    /// Total packets currently inside the network (buffered or in flight).
    pub fn in_flight(&self) -> u64 {
        self.stats.injected.value() - self.stats.delivered.value()
    }

    fn handle_arrival(&mut self, node: NodeId, port: usize, handle: ArenaRef, now: SimTime) {
        let packet = self
            .packets
            .get_mut(handle)
            .expect("in-flight packet is live");
        packet.record_hop();
        let kind = packet.kind;
        let id = packet.id;
        self.stats.hops.incr();
        self.stats.bit_hops += u64::from(self.config.packet_bytes(kind)) * 8;
        let vc = kind.virtual_channel().index();
        let buf = &mut self.bufs[self.meta[node.index()].buf_idx(port, vc)];
        debug_assert!(buf.reserved > 0, "arrival without reservation");
        buf.reserved -= 1;
        buf.queue.push_back((handle, now));
        let depth = buf.queue.len();
        self.buffered[node.index()] += 1;
        self.telem.on_enqueue(now, node, id, depth);
        self.request_arb(node, now);
    }

    /// Runs arbitration for every output of `node` that can act at `now`.
    fn arbitrate(&mut self, node: NodeId, now: SimTime, ready: &mut Vec<NodeId>) {
        if self.buffered[node.index()] == 0 {
            // Nothing in any input buffer: every scan below would come up
            // empty. Skipping them is observationally identical — no
            // packet moves, no stats counter fires on an empty candidate
            // set.
            return;
        }
        self.arbitrate_ejection(node, now, ready);
        let ext_ports = self.meta[node.index()].ext_ports as usize;
        for out_port in 0..ext_ports {
            self.arbitrate_link_output(node, out_port, now);
        }
    }

    /// Moves packets destined for `node` itself from input buffers into the
    /// ejection buffers (intra-router, no link time).
    fn arbitrate_ejection(&mut self, node: NodeId, now: SimTime, ready: &mut Vec<NodeId>) {
        let n = node.index();
        let meta = self.meta[n];
        let total_ports = meta.total_ports();
        let eject_arb = meta.arb_idx(meta.ext_ports as usize);
        let mut candidates = std::mem::take(&mut self.scratch);
        loop {
            let mut chosen: Option<(usize, usize)> = None; // (port, vc)
            for vc in VirtualChannel::PRIORITY_ORDER {
                if !self.eject[n * VC + vc.index()].has_space() {
                    continue;
                }
                candidates.clear();
                for port in 0..total_ports {
                    if let Some(handle) = self.bufs[meta.buf_idx(port, vc.index())].head() {
                        let head = self.packets.get(handle).expect("buffered packet is live");
                        if head.dst == node {
                            let weight = self.arbiters[eject_arb].weigh(head);
                            candidates.push(Candidate {
                                input_port: port,
                                weight,
                            });
                        }
                    }
                }
                if !candidates.is_empty() {
                    self.stats.arbitration_rounds.incr();
                    let i = self.arbiters[eject_arb].pick(&candidates);
                    chosen = Some((candidates[i].input_port, vc.index()));
                    break;
                }
            }
            let Some((port, vc)) = chosen else { break };
            let (handle, _) = self.bufs[meta.buf_idx(port, vc)]
                .queue
                .pop_front()
                .expect("head exists");
            self.buffered[n] -= 1;
            if self.telem.tracing() {
                let id = self.packets.get(handle).expect("ejected packet is live").id;
                self.telem.on_eject(now, node, id);
            }
            self.eject[n * VC + vc].queue.push_back((handle, now));
            if !self.ready_pending[n] {
                self.ready_pending[n] = true;
                ready.push(node);
            }
            self.wake_upstream(node, port, now);
        }
        candidates.clear();
        self.scratch = candidates;
    }

    /// Tries to send one packet out of `out_port`; reschedules itself when
    /// the link frees.
    fn arbitrate_link_output(&mut self, node: NodeId, out_port: usize, now: SimTime) {
        let (neighbor, link) = self.topo.neighbors(node)[out_port];
        // Dead links never carry traffic. Routing already avoids them, so
        // no candidate can select this output; the guard skips the scan and
        // keeps that invariant explicit.
        if self.faults.as_ref().is_some_and(|fm| fm.is_dead(link)) {
            return;
        }
        let link_info = self.topo.link(link);
        let dir = usize::from(link_info.a != node);
        let busy = match self.config.duplex {
            LinkDuplex::Half => {
                // One shared channel: either direction occupies the link.
                self.link_free_at[link.index()][0].max(self.link_free_at[link.index()][1])
            }
            LinkDuplex::Full => self.link_free_at[link.index()][dir],
        };
        if busy > now {
            // Busy; a TryArb is already scheduled for when it frees.
            return;
        }
        // Which port does this link occupy at the neighbor?
        let neighbor_port = self.neighbor_ports[node.index()][out_port];
        let meta = self.meta[node.index()];
        let neighbor_meta = self.meta[neighbor.index()];
        let total_ports = meta.total_ports();
        let out_arb = meta.arb_idx(out_port);

        let mut candidates = std::mem::take(&mut self.scratch);
        let mut selection: Option<(usize, usize)> = None; // (input port, vc)
        for vc in VirtualChannel::PRIORITY_ORDER {
            // Candidates need downstream buffer space on their VC.
            if !self.bufs[neighbor_meta.buf_idx(neighbor_port, vc.index())].has_space() {
                continue;
            }
            candidates.clear();
            for port in 0..total_ports {
                if port == out_port {
                    continue;
                }
                let Some(handle) = self.bufs[meta.buf_idx(port, vc.index())].head() else {
                    continue;
                };
                let head = self.packets.get(handle).expect("buffered packet is live");
                if head.dst == node {
                    continue; // ejection's job
                }
                // One indexed load against the flattened route table;
                // the NO_PORT sentinel (self/unreachable) never matches
                // a real output port.
                if self.routes.next_port(head.class, node, head.dst) != out_port as u16 {
                    continue;
                }
                let weight = self.arbiters[out_arb].weigh(head);
                candidates.push(Candidate {
                    input_port: port,
                    weight,
                });
            }
            if !candidates.is_empty() {
                self.stats.arbitration_rounds.incr();
                let i = self.arbiters[out_arb].pick(&candidates);
                selection = Some((candidates[i].input_port, vc.index()));
                break;
            }
        }
        candidates.clear();
        self.scratch = candidates;
        let Some((in_port, vc)) = selection else {
            return;
        };

        let (handle, _) = self.bufs[meta.buf_idx(in_port, vc)]
            .queue
            .pop_front()
            .expect("selected head exists");
        let departed_depth = self.bufs[meta.buf_idx(in_port, vc)].queue.len() + 1;
        self.buffered[node.index()] -= 1;
        self.bufs[neighbor_meta.buf_idx(neighbor_port, vc)].reserved += 1;

        let moved = self
            .packets
            .get_mut(handle)
            .expect("selected packet is live");
        // ECN: forwarding out of a congested input buffer stamps the
        // packet (depth measured including the departing packet, so a
        // threshold equal to the buffer capacity is still reachable).
        // Threshold 0 — the default — never marks, keeping the open-loop
        // byte-identity contract.
        if self.config.ecn_threshold > 0
            && departed_depth >= self.config.ecn_threshold as usize
            && !moved.marked
        {
            moved.marked = true;
            self.stats.marked.incr();
        }
        let kind = moved.kind;
        let id = moved.id;
        let timing = self.config.link_timing(link_info.class);
        let base_ser = timing.serialize(self.config.packet_bytes(kind));
        let mut ser = base_ser;
        if let Some(fm) = &mut self.faults {
            // Lane degradation and CRC retry/replay stretch the occupancy;
            // the packet itself always gets through (latency, not loss).
            ser = fm.traverse(link, ser);
        }
        self.telem.on_link_send(now, link, id, ser, ser != base_ser);
        let free_at = now + ser;
        self.link_free_at[link.index()][dir] = free_at;
        self.stats.link_busy[link.index() * 2 + dir] += ser;

        self.events.push(
            free_at + timing.fixed_latency,
            NetEvent::Arrive {
                node: neighbor,
                port: neighbor_port,
                packet: handle,
            },
        );
        // Try to use the link again the moment it frees — from both ends
        // when the channel is shared.
        self.request_arb(node, free_at);
        if self.config.duplex == LinkDuplex::Half {
            self.request_arb(neighbor, free_at);
        }
        self.wake_upstream(node, in_port, now);
    }

    /// Freed a slot in `node`'s input buffer at `port`: wake whoever feeds
    /// that buffer so they can arbitrate for the space.
    fn wake_upstream(&mut self, node: NodeId, port: usize, now: SimTime) {
        if port < self.meta[node.index()].ext_ports as usize {
            let (upstream, _) = self.topo.neighbors(node)[port];
            self.request_arb(upstream, now);
        }
        // Local ports are fed by the host core / cube logic, which polls
        // `can_inject` — nothing to wake inside the network.
        self.request_arb(node, now);
    }

    /// Extracts the telemetry collected so far (lifecycle tracer, link
    /// utilization series, queue-depth distribution), or `None` when the
    /// configured mode was [`mn_telemetry::TraceConfig::Off`]. Intended
    /// to be called once, after the run completes.
    pub fn take_telemetry(&mut self) -> Option<NetTelemetry> {
        self.telem.take(&self.topo)
    }

    /// The flight recorder's retained kernel events, oldest first,
    /// rendered for a stall post-mortem. Empty unless the configured
    /// mode was [`mn_telemetry::TraceConfig::Full`].
    pub fn flight_dump(&self) -> Vec<String> {
        self.telem.flight_dump()
    }

    /// Total internal events processed since construction — the denominator
    /// of the kernel's events/sec throughput metric.
    pub fn events_processed(&self) -> u64 {
        self.events.events_processed()
    }

    /// High-water mark of the internal event queue — how large a working
    /// set the heap had to sustain (coalescing drives this down).
    pub fn event_queue_peak(&self) -> usize {
        self.events.peak_len()
    }

    /// The ladder bucket width the event queue was tuned to at
    /// construction: the topology's minimum link traversal time, clamped
    /// to [128, 65536] ps (kernel default for linkless topologies).
    pub fn event_bucket_width_ps(&self) -> u64 {
        self.events.bucket_width_ps()
    }

    /// Snapshot of the kernel-level performance counters: event-queue
    /// traffic, ladder spill/rewindow activity, and the packet arena's
    /// high-water mark. `steady_heap_allocs` is left at zero — only the
    /// driving binary can observe the global allocator.
    pub fn kernel_counters(&self) -> KernelCounters {
        KernelCounters {
            events_scheduled: self.events.events_scheduled(),
            events_processed: self.events.events_processed(),
            queue_peak: self.events.peak_len() as u64,
            bucket_spills: self.events.bucket_spills(),
            rewindows: self.events.rewindow_count(),
            arena_high_water: self.packets.high_water() as u64,
            steady_heap_allocs: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterKind;
    use crate::packet::PacketKind;
    use mn_topo::{CubeTech, PathClass, Placement, TopologyKind};

    fn chain(n: usize) -> Topology {
        Topology::build(
            TopologyKind::Chain,
            &Placement::homogeneous(n, CubeTech::Dram),
        )
        .unwrap()
    }

    /// Drives the network until quiescent, returning every delivery.
    fn run_to_quiescence(net: &mut Network) -> Vec<Delivery> {
        let mut out = Vec::new();
        let mut ready = Vec::new();
        let mut now = SimTime::ZERO;
        loop {
            net.advance(now, &mut ready);
            for &node in &ready {
                while let Some(d) = net.take_delivery(node, now) {
                    out.push(d);
                }
            }
            match net.next_event_time() {
                Some(t) => now = t,
                None => break,
            }
        }
        out
    }

    #[test]
    fn single_packet_end_to_end() {
        let topo = chain(4);
        let mut net = Network::new(&topo, NocConfig::default());
        let dst = topo.cube_at_position(4).unwrap();
        let pkt = Packet::request(7, PacketKind::ReadRequest, topo.host(), dst);
        net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();

        let deliveries = run_to_quiescence(&mut net);
        assert_eq!(deliveries.len(), 1);
        let d = &deliveries[0];
        assert_eq!(d.node, dst);
        assert_eq!(d.packet.token, 7);
        assert_eq!(d.packet.hops(), 4);
        // 4 hops x (16B x 33 ps + 2 ns serdes) ≈ 10.1 ns.
        let expect = SimTime::from_ps(4 * (16 * 33 + 2000));
        assert_eq!(d.arrived_at, expect);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn full_tracing_observes_without_perturbing() {
        let topo = chain(4);
        let dst = topo.cube_at_position(4).unwrap();
        let run = |trace| {
            let cfg = NocConfig {
                trace,
                ..NocConfig::default()
            };
            let mut net = Network::new(&topo, cfg);
            for t in 0..3 {
                let pkt = Packet::request(t, PacketKind::ReadRequest, topo.host(), dst);
                net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
            }
            let deliveries = run_to_quiescence(&mut net);
            let telemetry = net.take_telemetry();
            (deliveries, telemetry)
        };
        let (off, off_telemetry) = run(mn_telemetry::TraceConfig::Off);
        let (full, full_telemetry) = run(mn_telemetry::TraceConfig::Full);
        // Identical deliveries (packets, nodes, timestamps) either way.
        assert_eq!(off, full);
        assert!(off_telemetry.is_none());
        let telemetry = full_telemetry.expect("full mode collects telemetry");
        // Lifecycle: 3 injects, ejects, and one traverse span per hop.
        let events: Vec<_> = telemetry.tracer.events().collect();
        use mn_telemetry::TraceEventKind as K;
        let count = |k: K| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(K::Inject), 3);
        assert_eq!(count(K::Eject), 3);
        assert_eq!(count(K::Traverse), 12);
        assert_eq!(count(K::Retry), 0);
        // Spans carry the serialization occupancy.
        let span = events.iter().find(|e| e.kind == K::Traverse).unwrap();
        assert_eq!(span.dur_ps, 16 * 33);
        // Link metrics saw the same busy time the stats counters did.
        assert_eq!(telemetry.link_util.len(), topo.link_count());
        assert!(telemetry.peak_link_utilization() > 0.0);
        assert!(telemetry.queue_depth.peak() >= 1);
        // The flight recorder retained the tail of the kernel stream.
        // (It lives in the network, so dump it from a fresh traced run.)
        let cfg = NocConfig {
            trace: mn_telemetry::TraceConfig::Full,
            ..NocConfig::default()
        };
        let mut net = Network::new(&topo, cfg);
        let pkt = Packet::request(0, PacketKind::ReadRequest, topo.host(), dst);
        net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
        run_to_quiescence(&mut net);
        let dump = net.flight_dump();
        assert!(!dump.is_empty());
        assert!(dump.iter().any(|line| line.contains("arrive")));
        assert!(dump.iter().any(|line| line.contains("try-arb")));
    }

    #[test]
    fn response_travels_back() {
        let topo = chain(3);
        let mut net = Network::new(&topo, NocConfig::default());
        let cube = topo.cube_at_position(3).unwrap();
        let req = Packet::request(1, PacketKind::ReadRequest, topo.host(), cube);
        let resp = Packet::response_to(&req, false);
        net.inject(cube, 0, resp, SimTime::ZERO).unwrap();
        let deliveries = run_to_quiescence(&mut net);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].node, topo.host());
        assert_eq!(deliveries[0].packet.kind, PacketKind::ReadResponse);
    }

    #[test]
    fn injection_backpressure() {
        let topo = chain(2);
        let cfg = NocConfig {
            buffer_packets: 2,
            ..NocConfig::default()
        };
        let mut net = Network::new(&topo, cfg);
        let dst = topo.cube_at_position(2).unwrap();
        // The host injection buffer holds 2 packets; more must fail until
        // the network drains.
        let mut accepted = 0;
        for t in 0..10 {
            let pkt = Packet::request(t, PacketKind::ReadRequest, topo.host(), dst);
            if net.inject(topo.host(), 0, pkt, SimTime::ZERO).is_ok() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 2);
        let deliveries = run_to_quiescence(&mut net);
        assert_eq!(deliveries.len(), 2);
    }

    #[test]
    fn ecn_marks_congested_forwards_without_perturbing_timing() {
        let topo = chain(6);
        let dst = topo.cube_at_position(6).unwrap();
        let run = |ecn_threshold| {
            let cfg = NocConfig {
                ecn_threshold,
                ..NocConfig::default()
            };
            let mut net = Network::new(&topo, cfg);
            for t in 0..6 {
                let pkt = Packet::request(t, PacketKind::ReadRequest, topo.host(), dst);
                net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
            }
            let deliveries = run_to_quiescence(&mut net);
            let marked = net.stats().marked.value();
            (deliveries, marked)
        };
        let (plain, none_marked) = run(0);
        assert_eq!(none_marked, 0);
        assert!(plain.iter().all(|d| !d.packet.marked));
        // A burst of 6 through one host port queues well past depth 2.
        let (marked_run, marked) = run(2);
        assert!(marked > 0, "burst traffic must trip a threshold of 2");
        assert!(marked_run.iter().any(|d| d.packet.marked));
        // Marking is observational: identical nodes and arrival times.
        for (a, b) in plain.iter().zip(&marked_run) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.arrived_at, b.arrived_at);
            assert_eq!(a.packet.id, b.packet.id);
        }
    }

    #[test]
    fn bucket_width_derives_from_fastest_link() {
        // Default chain: external links only, min traversal
        // 16 B x 33 ps/B + 2 ns = 2528 ps.
        let topo = chain(3);
        let net = Network::new(&topo, NocConfig::default());
        assert_eq!(net.event_bucket_width_ps(), 16 * 33 + 2000);
        // Sub-128 ps traversals clamp up so the window stays useful.
        let cfg = NocConfig {
            external_link: crate::config::LinkTiming {
                ps_per_byte: 1,
                fixed_latency: mn_sim::SimDuration::ZERO,
            },
            ..NocConfig::default()
        };
        let net = Network::new(&topo, cfg);
        assert_eq!(net.event_bucket_width_ps(), 128);
    }

    #[test]
    fn data_packets_occupy_longer() {
        let topo = chain(1);
        let mut net = Network::new(&topo, NocConfig::default());
        let dst = topo.cube_at_position(1).unwrap();
        let w = Packet::request(0, PacketKind::WriteRequest, topo.host(), dst);
        net.inject(topo.host(), 0, w, SimTime::ZERO).unwrap();
        let deliveries = run_to_quiescence(&mut net);
        // 80 B x 33 ps + 2 ns = 4.64 ns.
        assert_eq!(deliveries[0].arrived_at, SimTime::from_ps(80 * 33 + 2000));
    }

    #[test]
    fn serialization_pipelines_across_hops() {
        // Two packets to the far cube: the second starts serializing as
        // soon as the first link frees, well before the first delivers.
        let topo = chain(8);
        let mut net = Network::new(&topo, NocConfig::default());
        let dst = topo.cube_at_position(8).unwrap();
        for t in 0..2 {
            let pkt = Packet::request(t, PacketKind::ReadRequest, topo.host(), dst);
            net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
        }
        let deliveries = run_to_quiescence(&mut net);
        assert_eq!(deliveries.len(), 2);
        let gap = deliveries[1].arrived_at - deliveries[0].arrived_at;
        // The gap is one serialization time (528 ps), not a full traversal.
        assert_eq!(gap, mn_sim::SimDuration::from_ps(16 * 33));
    }

    #[test]
    fn responses_have_priority_over_requests() {
        // A cube in the middle forwards both a downstream request and its
        // own response; the response must win the shared link first.
        let topo = chain(3);
        let mut net = Network::new(&topo, NocConfig::default());
        let mid = topo.cube_at_position(2).unwrap();
        let _far = topo.cube_at_position(3).unwrap();

        // Preload: a response at the middle cube heading to the host and a
        // request at the host heading to the far cube. Both need link
        // host—c1—c2 segments in opposite directions, so instead contend at
        // c1? Responses and requests travel opposite directions on a chain;
        // contention happens for the c1→host link only among responses.
        // For a same-direction test, race two responses from mid: one from
        // the local port, one arriving from far. Distance arbitration is
        // tested elsewhere; here we check response-vs-request at the host's
        // single link: inject a request while a response stream flows in.
        let req = Packet::request(0, PacketKind::ReadRequest, topo.host(), mid);
        let resp_src = Packet::request(1, PacketKind::ReadRequest, topo.host(), mid);
        let resp = Packet::response_to(&resp_src, false);
        net.inject(mid, 0, resp, SimTime::ZERO).unwrap();
        net.inject(topo.host(), 0, req, SimTime::ZERO).unwrap();
        let deliveries = run_to_quiescence(&mut net);
        assert_eq!(deliveries.len(), 2);
        // Both complete; full-duplex links mean no head-on blocking.
        assert!(deliveries.iter().any(|d| d.node == topo.host()));
        assert!(deliveries.iter().any(|d| d.node == mid));
    }

    #[test]
    fn skip_list_writes_ride_the_chain() {
        let topo = Topology::build(
            TopologyKind::SkipList,
            &Placement::homogeneous(16, CubeTech::Dram),
        )
        .unwrap();
        let mut net = Network::new(&topo, NocConfig::default());
        let far = topo.cube_at_position(16).unwrap();
        let w = Packet::request(0, PacketKind::WriteRequest, topo.host(), far);
        let r = Packet::request(1, PacketKind::ReadRequest, topo.host(), far);
        net.inject(topo.host(), 0, w, SimTime::ZERO).unwrap();
        net.inject(topo.host(), 0, r, SimTime::ZERO).unwrap();
        let deliveries = run_to_quiescence(&mut net);
        let write = deliveries
            .iter()
            .find(|d| d.packet.kind == PacketKind::WriteRequest)
            .unwrap();
        let read = deliveries
            .iter()
            .find(|d| d.packet.kind == PacketKind::ReadRequest)
            .unwrap();
        assert_eq!(write.packet.hops(), 16, "writes take the chain");
        assert_eq!(read.packet.hops(), 5, "reads take the skips");
    }

    #[test]
    fn write_upgraded_to_read_path() {
        let topo = Topology::build(
            TopologyKind::SkipList,
            &Placement::homogeneous(16, CubeTech::Dram),
        )
        .unwrap();
        let mut net = Network::new(&topo, NocConfig::default());
        let far = topo.cube_at_position(16).unwrap();
        let w = Packet::request(0, PacketKind::WriteRequest, topo.host(), far)
            .with_class(PathClass::Read);
        net.inject(topo.host(), 0, w, SimTime::ZERO).unwrap();
        let deliveries = run_to_quiescence(&mut net);
        assert_eq!(deliveries[0].packet.hops(), 5);
    }

    #[test]
    fn ring_uses_both_branches() {
        let topo = Topology::build(
            TopologyKind::Ring,
            &Placement::homogeneous(16, CubeTech::Dram),
        )
        .unwrap();
        let mut net = Network::new(&topo, NocConfig::default());
        let near = topo.cube_at_position(1).unwrap();
        let back = topo.cube_at_position(16).unwrap();
        for (t, dst) in [(0u64, near), (1, back)] {
            let pkt = Packet::request(t, PacketKind::ReadRequest, topo.host(), dst);
            net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
        }
        let deliveries = run_to_quiescence(&mut net);
        // Cube 1 is one hop; the "last" cube is reached around the back in
        // two hops, not 16 down the chain.
        let hops: Vec<u32> = deliveries.iter().map(|d| d.packet.hops()).collect();
        assert!(hops.contains(&1) && hops.contains(&2), "{hops:?}");
    }

    #[test]
    fn stats_count_traffic() {
        let topo = chain(4);
        let mut net = Network::new(&topo, NocConfig::default());
        let dst = topo.cube_at_position(4).unwrap();
        let pkt = Packet::request(0, PacketKind::ReadRequest, topo.host(), dst);
        net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
        let _ = run_to_quiescence(&mut net);
        assert_eq!(net.stats().injected.value(), 1);
        assert_eq!(net.stats().delivered.value(), 1);
        assert_eq!(net.stats().hops.value(), 4);
        assert_eq!(net.stats().bit_hops, 4 * 16 * 8);
        assert!(net.stats().transport_energy_pj(5.0) > 0.0);
    }

    #[test]
    fn distance_arbiter_network_builds() {
        let topo = chain(4);
        let cfg = NocConfig::default().with_arbiter(ArbiterKind::AdaptiveDistance);
        let mut net = Network::new(&topo, cfg);
        let dst = topo.cube_at_position(2).unwrap();
        let pkt = Packet::request(0, PacketKind::ReadRequest, topo.host(), dst);
        net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
        assert_eq!(run_to_quiescence(&mut net).len(), 1);
    }

    #[test]
    #[should_panic(expected = "addressed to its own node")]
    fn self_injection_rejected() {
        let topo = chain(2);
        let mut net = Network::new(&topo, NocConfig::default());
        let pkt = Packet::request(0, PacketKind::ReadRequest, topo.host(), topo.host());
        let _ = net.inject(topo.host(), 0, pkt, SimTime::ZERO);
    }

    #[test]
    fn take_delivery_empty_is_none() {
        let topo = chain(2);
        let mut net = Network::new(&topo, NocConfig::default());
        assert_eq!(net.take_delivery(topo.host(), SimTime::ZERO), None);
        assert!(!net.has_delivery(topo.host()));
    }

    #[test]
    fn partitioned_chain_reports_unreachable_cubes() {
        // A chain has zero path diversity: any hard link failure cuts off
        // every cube behind it, and construction must say so instead of
        // letting traffic strand.
        let topo = chain(8);
        let cfg = NocConfig {
            fault: crate::FaultConfig {
                link_kill_rate: 0.3,
                seed: 1,
                ..crate::FaultConfig::none()
            },
            ..NocConfig::default()
        };
        // Some seed in a small range kills at least one link of eight.
        let err = (0..50)
            .find_map(|seed| {
                let mut cfg = cfg.clone();
                cfg.fault.seed = seed;
                Network::try_new(&topo, cfg).err()
            })
            .expect("some seed kills a chain link");
        let NetworkError::Partitioned { unreachable } = err;
        assert!(!unreachable.is_empty());
        // Everything behind the first dead link is gone: the unreachable
        // set is a suffix of the chain.
        let first = unreachable[0];
        let expected: Vec<NodeId> = topo
            .cubes()
            .map(|(c, _)| c)
            .filter(|&c| c >= first)
            .collect();
        assert_eq!(unreachable, expected);
        // And the error formats with the cube list.
        let msg = NetworkError::Partitioned {
            unreachable: unreachable.clone(),
        }
        .to_string();
        assert!(msg.contains("partition"), "{msg}");
    }

    #[test]
    fn ring_survives_a_dead_link() {
        // A ring has two disjoint branches: one hard failure degrades hop
        // counts but every cube still completes its traffic.
        let topo = Topology::build(
            TopologyKind::Ring,
            &Placement::homogeneous(16, CubeTech::Dram),
        )
        .unwrap();
        let mut cfg = NocConfig {
            fault: crate::FaultConfig {
                link_kill_rate: 0.1,
                ..crate::FaultConfig::none()
            },
            ..NocConfig::default()
        };
        let seed = (0..50)
            .find(|&seed| {
                let fm = crate::FaultModel::build(
                    &topo,
                    crate::FaultConfig {
                        seed,
                        ..cfg.fault.clone()
                    },
                );
                fm.dead_links().len() == 1
            })
            .expect("some seed kills exactly one ring link");
        cfg.fault.seed = seed;
        let mut net = Network::try_new(&topo, cfg).expect("ring routes around one dead link");
        let mut deliveries = Vec::new();
        let mut ready = Vec::new();
        let mut now = SimTime::ZERO;
        for (t, p) in (1..=16).enumerate() {
            let dst = topo.cube_at_position(p).unwrap();
            let pkt = Packet::request(t as u64, PacketKind::ReadRequest, topo.host(), dst);
            // Drain between injections: the host buffer is smaller than 16.
            net.inject(topo.host(), 0, pkt, now).unwrap();
            loop {
                net.advance(now, &mut ready);
                for &node in &ready {
                    while let Some(d) = net.take_delivery(node, now) {
                        deliveries.push(d);
                    }
                }
                match net.next_event_time() {
                    Some(t) => now = t,
                    None => break,
                }
            }
        }
        assert_eq!(deliveries.len(), 16, "every cube still reachable");
        assert_eq!(net.fault_stats().unwrap().dead_links, 1);
    }

    #[test]
    fn transient_faults_add_latency_not_loss() {
        let topo = chain(4);
        let cfg = NocConfig {
            fault: crate::FaultConfig {
                transient_rate: 0.5,
                seed: 11,
                ..crate::FaultConfig::none()
            },
            ..NocConfig::default()
        };
        let healthy_arrival = {
            let mut net = Network::new(&topo, NocConfig::default());
            let dst = topo.cube_at_position(4).unwrap();
            let pkt = Packet::request(0, PacketKind::ReadRequest, topo.host(), dst);
            net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
            run_to_quiescence(&mut net)[0].arrived_at
        };
        let mut net = Network::new(&topo, cfg);
        let dst = topo.cube_at_position(4).unwrap();
        let pkt = Packet::request(0, PacketKind::ReadRequest, topo.host(), dst);
        net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
        let deliveries = run_to_quiescence(&mut net);
        assert_eq!(deliveries.len(), 1, "no data loss");
        let stats = net.fault_stats().unwrap();
        assert!(stats.replays > 0, "at 50% CRC rate some hop replays");
        assert!(
            deliveries[0].arrived_at > healthy_arrival,
            "replays cost latency"
        );
    }

    #[test]
    fn zero_fault_config_builds_no_model() {
        let topo = chain(2);
        let net = Network::new(&topo, NocConfig::default());
        assert!(net.fault_stats().is_none());
    }

    #[test]
    fn metacube_interposer_is_faster() {
        let topo = Topology::build(
            TopologyKind::MetaCube,
            &Placement::homogeneous(16, CubeTech::Dram),
        )
        .unwrap();
        let mut net = Network::new(&topo, NocConfig::default());
        let first = topo.cube_at_position(1).unwrap();
        let pkt = Packet::request(0, PacketKind::ReadRequest, topo.host(), first);
        net.inject(topo.host(), 0, pkt, SimTime::ZERO).unwrap();
        let deliveries = run_to_quiescence(&mut net);
        // host→IF (external) + IF→cube (interposer): under two full
        // external traversals.
        assert!(deliveries[0].arrived_at < SimTime::from_ps(2 * (16 * 33 + 2000)));
        assert_eq!(deliveries[0].packet.hops(), 2);
    }
}
