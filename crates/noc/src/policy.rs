//! Injection-time routing policies.
//!
//! §5.2/§5.3: always routing writes down a skip list's slow chain hurts
//! write-burst workloads (BACKPROP) and read-modify-write patterns. The
//! paper monitors write traffic at the system port "with some hysteresis"
//! and lets writes use the short skip paths while a burst lasts. The
//! [`WriteBurstDetector`] implements that monitor; `mn-core` consults it
//! when choosing each write's [`mn_topo::PathClass`].

use std::collections::VecDeque;

/// Sliding-window write-burst detector with hysteresis.
///
/// Tracks the write fraction of the last `window` injected requests. Burst
/// mode engages when the fraction rises above `enter_threshold` and
/// disengages only when it falls below `exit_threshold` (< enter), so the
/// policy does not flap at the boundary.
///
/// # Example
///
/// ```
/// use mn_noc::WriteBurstDetector;
///
/// let mut d = WriteBurstDetector::new(8, 0.7, 0.4);
/// for _ in 0..8 { d.observe(true); }   // all writes
/// assert!(d.in_burst());
/// for _ in 0..3 { d.observe(false); }  // a few reads: still in burst
/// assert!(d.in_burst());
/// for _ in 0..5 { d.observe(false); }  // burst drains
/// assert!(!d.in_burst());
/// ```
#[derive(Debug, Clone)]
pub struct WriteBurstDetector {
    window: usize,
    enter_threshold: f64,
    exit_threshold: f64,
    recent: VecDeque<bool>,
    writes_in_window: usize,
    in_burst: bool,
}

impl WriteBurstDetector {
    /// Creates a detector over a `window`-request sliding window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero, either threshold is outside `[0, 1]`, or
    /// `exit_threshold >= enter_threshold` (hysteresis would be inverted).
    pub fn new(window: usize, enter_threshold: f64, exit_threshold: f64) -> WriteBurstDetector {
        assert!(window > 0, "window must be positive");
        assert!(
            (0.0..=1.0).contains(&enter_threshold) && (0.0..=1.0).contains(&exit_threshold),
            "thresholds must be within [0, 1]"
        );
        assert!(
            exit_threshold < enter_threshold,
            "hysteresis requires exit < enter"
        );
        WriteBurstDetector {
            window,
            enter_threshold,
            exit_threshold,
            recent: VecDeque::with_capacity(window),
            writes_in_window: 0,
            in_burst: false,
        }
    }

    /// The paper-tuned default: a 64-request window entering burst mode at
    /// 60% writes and leaving below 35%.
    pub fn paper_default() -> WriteBurstDetector {
        WriteBurstDetector::new(64, 0.6, 0.35)
    }

    /// Records one injected request (`is_write`) and updates burst state.
    pub fn observe(&mut self, is_write: bool) {
        if self.recent.len() == self.window && self.recent.pop_front() == Some(true) {
            self.writes_in_window -= 1;
        }
        self.recent.push_back(is_write);
        if is_write {
            self.writes_in_window += 1;
        }
        let frac = self.write_fraction();
        if self.in_burst {
            if frac < self.exit_threshold {
                self.in_burst = false;
            }
        } else if frac > self.enter_threshold && self.recent.len() >= self.window / 2 {
            self.in_burst = true;
        }
    }

    /// Current write fraction of the window (0 when empty).
    pub fn write_fraction(&self) -> f64 {
        if self.recent.is_empty() {
            0.0
        } else {
            self.writes_in_window as f64 / self.recent.len() as f64
        }
    }

    /// True while a write burst is in progress — writes may then use the
    /// fast (skip-link) paths.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_out_of_burst() {
        let d = WriteBurstDetector::paper_default();
        assert!(!d.in_burst());
        assert_eq!(d.write_fraction(), 0.0);
    }

    #[test]
    fn enters_on_sustained_writes() {
        let mut d = WriteBurstDetector::new(10, 0.6, 0.3);
        for _ in 0..10 {
            d.observe(true);
        }
        assert!(d.in_burst());
        assert!((d.write_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn needs_half_window_before_entering() {
        let mut d = WriteBurstDetector::new(10, 0.6, 0.3);
        d.observe(true);
        d.observe(true);
        // 100% writes but only 2 observations: not yet a burst.
        assert!(!d.in_burst());
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut d = WriteBurstDetector::new(10, 0.6, 0.3);
        for _ in 0..10 {
            d.observe(true);
        }
        assert!(d.in_burst());
        // Drop to 50% writes: between thresholds, stays in burst.
        for _ in 0..5 {
            d.observe(false);
        }
        assert!(d.in_burst());
        // Drop below 30%: leaves burst.
        for _ in 0..4 {
            d.observe(false);
        }
        assert!(!d.in_burst());
        // Climbing back to 50% does not re-enter.
        for _ in 0..3 {
            d.observe(true);
        }
        assert!(!d.in_burst());
    }

    #[test]
    fn window_slides() {
        let mut d = WriteBurstDetector::new(4, 0.6, 0.3);
        for _ in 0..4 {
            d.observe(true);
        }
        for _ in 0..4 {
            d.observe(false);
        }
        assert_eq!(d.write_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "exit < enter")]
    fn inverted_hysteresis_rejected() {
        let _ = WriteBurstDetector::new(4, 0.3, 0.6);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = WriteBurstDetector::new(0, 0.6, 0.3);
    }
}
