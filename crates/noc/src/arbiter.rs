//! Router input arbitration (§4.1, §5.1, §5.3).
//!
//! Whenever an output link frees up, the router must pick which input
//! port's head packet to forward. The paper shows the choice matters
//! enormously:
//!
//! - [`RoundRobinArbiter`] is *locally* fair but *globally* unfair: on a
//!   chain, each cube's four local vault ports together get 80% of the
//!   service while the single port carrying every downstream cube's traffic
//!   gets 20% — the "parking lot problem".
//! - [`DistanceArbiter`] weights ports by how far the head packet has
//!   traveled, a hardware-cheap proxy for its age (a small lookup table,
//!   ~8 bytes — §4.1).
//! - The *adaptive* variant ([`ArbiterKind::AdaptiveDistance`]) also adds
//!   an age bonus for responses sourced by slow NVM arrays (they are older
//!   than their hop count suggests — the Fig. 10 NVM-F pathology) and a
//!   penalty for write-class packets so latency-critical reads go first
//!   (§5.3).

use crate::packet::Packet;

/// Selects among the configured arbitration schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbiterKind {
    /// Locally fair round-robin (the baseline, §3.2).
    RoundRobin,
    /// Distance-as-age weighted round-robin (§4.1).
    Distance,
    /// Distance weighting with technology and request-type awareness
    /// (§5.3, used in the combined Fig. 12 results).
    AdaptiveDistance,
    /// Extension: true age-based arbitration (strictly oldest injection
    /// first). §4.1 describes this as the ideal that distance *proxies* —
    /// impractical in hardware because flit headers have no spare bits for
    /// timestamps, but free in a simulator. Use it to measure how much of
    /// the ideal the distance proxy captures.
    OracleAge,
}

impl ArbiterKind {
    /// Instantiates the arbitration state for one router output.
    pub fn instantiate(self, input_ports: usize) -> ArbiterImpl {
        match self {
            ArbiterKind::RoundRobin => ArbiterImpl::RoundRobin(RoundRobinArbiter::new(input_ports)),
            ArbiterKind::Distance => {
                ArbiterImpl::Distance(DistanceArbiter::new(input_ports, false))
            }
            ArbiterKind::AdaptiveDistance => {
                ArbiterImpl::Distance(DistanceArbiter::new(input_ports, true))
            }
            ArbiterKind::OracleAge => {
                ArbiterImpl::OldestFirst(OldestFirstArbiter::new(input_ports))
            }
        }
    }
}

/// The arbitration state for one router output: a closed enum over the
/// concrete policies, so the per-arbitration `pick`/`weigh` calls are a
/// predictable match dispatch (inlinable, no vtable indirection) and the
/// router can store its arbiters in one flat `Vec<ArbiterImpl>` instead of
/// a `Vec<Box<dyn Arbiter>>` of scattered heap cells.
#[derive(Debug, Clone)]
pub enum ArbiterImpl {
    /// Cyclic round-robin state.
    RoundRobin(RoundRobinArbiter),
    /// Smooth weighted round-robin credit state (both the plain and the
    /// adaptive §5.3 variants — adaptivity is a flag inside).
    Distance(DistanceArbiter),
    /// Oracle oldest-injection-first state.
    OldestFirst(OldestFirstArbiter),
}

impl ArbiterImpl {
    /// Picks the winning candidate; see [`Arbiter::pick`].
    #[inline]
    pub fn pick(&mut self, candidates: &[Candidate]) -> usize {
        match self {
            ArbiterImpl::RoundRobin(a) => Arbiter::pick(a, candidates),
            ArbiterImpl::Distance(a) => Arbiter::pick(a, candidates),
            ArbiterImpl::OldestFirst(a) => Arbiter::pick(a, candidates),
        }
    }

    /// The weight this policy assigns a packet; see [`Arbiter::weigh`].
    #[inline]
    pub fn weigh(&self, packet: &Packet) -> u64 {
        match self {
            ArbiterImpl::RoundRobin(a) => Arbiter::weigh(a, packet),
            ArbiterImpl::Distance(a) => Arbiter::weigh(a, packet),
            ArbiterImpl::OldestFirst(a) => Arbiter::weigh(a, packet),
        }
    }
}

/// One contender in an arbitration round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The input port the head packet waits on.
    pub input_port: usize,
    /// Scheduling weight of the head packet (from [`Arbiter::weigh`]).
    pub weight: u64,
}

/// Arbitration policy for one router output port.
///
/// Implementations are stateful (round-robin pointers, accumulated
/// credits); the router keeps one instance per output.
pub trait Arbiter: std::fmt::Debug + Send {
    /// Picks the winning candidate. `candidates` is non-empty and sorted by
    /// input port.
    ///
    /// Returns an index into `candidates`.
    fn pick(&mut self, candidates: &[Candidate]) -> usize;

    /// The weight this policy assigns a packet (1 for unweighted policies).
    fn weigh(&self, packet: &Packet) -> u64;
}

/// The baseline: serve input ports in cyclic order regardless of load.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    ports: usize,
    last: usize,
}

impl RoundRobinArbiter {
    /// An arbiter over `input_ports` ports.
    ///
    /// # Panics
    ///
    /// Panics if `input_ports` is zero.
    pub fn new(input_ports: usize) -> RoundRobinArbiter {
        assert!(input_ports > 0, "arbitration needs at least one port");
        RoundRobinArbiter {
            ports: input_ports,
            last: input_ports - 1,
        }
    }

    /// Picks, among the contending input `ports`, the first after the last
    /// winner in cyclic order, advancing the pointer to it. This is the
    /// allocation-free core the weighted arbiters use for tie-breaking —
    /// they feed it a filtered iterator instead of collecting the tied
    /// candidates into a scratch `Vec` on every arbitration.
    fn pick_port(&mut self, ports: impl Iterator<Item = usize>) -> usize {
        let winner = ports
            .min_by_key(|&p| (p + self.ports - self.last - 1) % self.ports)
            .expect("no candidates to arbitrate");
        self.last = winner;
        winner
    }
}

impl Arbiter for RoundRobinArbiter {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        assert!(!candidates.is_empty(), "no candidates to arbitrate");
        // The winner is the first candidate after `last` in cyclic order.
        let winner_port = self.pick_port(candidates.iter().map(|c| c.input_port));
        candidates
            .iter()
            .position(|c| c.input_port == winner_port)
            .expect("winner came from candidates")
    }

    fn weigh(&self, _packet: &Packet) -> u64 {
        1
    }
}

/// Parameters of the distance-based weighting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceParams {
    /// Extra weight for responses whose source cube is NVM, in hop
    /// equivalents. The paper tunes this empirically from the average
    /// network-hop and array latencies (§5.3); NVM array latency is worth a
    /// few hops.
    pub nvm_age_bonus: u64,
    /// Weight divisor applied to write-class packets, deferring them in
    /// favor of reads.
    pub write_deprioritization: u64,
}

impl Default for DistanceParams {
    fn default() -> Self {
        DistanceParams {
            nvm_age_bonus: 6,
            write_deprioritization: 2,
        }
    }
}

/// Weighted round-robin where the weight is the packet's traveled distance
/// (plus adaptive adjustments). Implemented as *smooth* weighted
/// round-robin: every round each contender earns its weight in credits,
/// the richest port wins, and the winner pays back the round's total
/// weight — yielding service exactly proportional to weight, without
/// randomness and without bursts.
#[derive(Debug, Clone)]
pub struct DistanceArbiter {
    credits: Vec<i64>,
    adaptive: bool,
    params: DistanceParams,
    rr: RoundRobinArbiter,
}

impl DistanceArbiter {
    /// A distance arbiter over `input_ports` ports; `adaptive` enables the
    /// §5.3 technology/type awareness.
    pub fn new(input_ports: usize, adaptive: bool) -> DistanceArbiter {
        DistanceArbiter {
            credits: vec![0; input_ports],
            adaptive,
            params: DistanceParams::default(),
            rr: RoundRobinArbiter::new(input_ports),
        }
    }

    /// Overrides the adaptive parameters.
    pub fn with_params(mut self, params: DistanceParams) -> DistanceArbiter {
        self.params = params;
        self
    }
}

impl Arbiter for DistanceArbiter {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        assert!(!candidates.is_empty(), "no candidates to arbitrate");
        let mut total: i64 = 0;
        for c in candidates {
            self.credits[c.input_port] += c.weight as i64;
            total += c.weight as i64;
        }
        // Richest candidate wins; ties fall back to round-robin order for
        // fairness among equals. The tied ports are scanned in place —
        // no per-arbitration scratch list.
        let best_credit = candidates
            .iter()
            .map(|c| self.credits[c.input_port])
            .max()
            .expect("non-empty");
        let winner_port = self.rr.pick_port(
            candidates
                .iter()
                .filter(|c| self.credits[c.input_port] == best_credit)
                .map(|c| c.input_port),
        );
        self.credits[winner_port] -= total;
        candidates
            .iter()
            .position(|c| c.input_port == winner_port)
            .expect("winner came from candidates")
    }

    fn weigh(&self, packet: &Packet) -> u64 {
        let mut w = 1 + u64::from(packet.hops());
        if self.adaptive {
            if packet.src_is_nvm && !packet.kind.is_request() {
                w += self.params.nvm_age_bonus;
            }
            if packet.kind.is_write_class() {
                w = (w / self.params.write_deprioritization).max(1);
            }
        }
        w
    }
}

/// Strict oldest-injection-first arbitration (the §4.1 ideal). The weight
/// of a packet is the (inverted) injection timestamp, and [`Arbiter::pick`]
/// chooses the maximum-weight candidate outright — no round-robin credit
/// smoothing, because true age is already a total order.
#[derive(Debug, Clone)]
pub struct OldestFirstArbiter {
    rr: RoundRobinArbiter,
}

impl OldestFirstArbiter {
    /// An oracle-age arbiter over `input_ports` ports.
    pub fn new(input_ports: usize) -> OldestFirstArbiter {
        OldestFirstArbiter {
            rr: RoundRobinArbiter::new(input_ports),
        }
    }
}

impl Arbiter for OldestFirstArbiter {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        assert!(!candidates.is_empty(), "no candidates to arbitrate");
        let best = candidates
            .iter()
            .map(|c| c.weight)
            .max()
            .expect("non-empty");
        let winner_port = self.rr.pick_port(
            candidates
                .iter()
                .filter(|c| c.weight == best)
                .map(|c| c.input_port),
        );
        candidates
            .iter()
            .position(|c| c.input_port == winner_port)
            .expect("winner came from candidates")
    }

    fn weigh(&self, packet: &Packet) -> u64 {
        // Older injection => larger weight.
        u64::MAX - packet.injected_at.as_ps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use mn_topo::NodeId;

    fn cand(port: usize, weight: u64) -> Candidate {
        Candidate {
            input_port: port,
            weight,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut a = RoundRobinArbiter::new(3);
        let all = [cand(0, 1), cand(1, 1), cand(2, 1)];
        let picks: Vec<usize> = (0..6).map(|_| all[a.pick(&all)].input_port).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_absent_ports() {
        let mut a = RoundRobinArbiter::new(4);
        // Only ports 1 and 3 have traffic.
        let some = [cand(1, 1), cand(3, 1)];
        let picks: Vec<usize> = (0..4).map(|_| some[a.pick(&some)].input_port).collect();
        assert_eq!(picks, vec![1, 3, 1, 3]);
    }

    #[test]
    fn round_robin_is_locally_fair_globally_unfair() {
        // The §3.2 scenario: 4 local ports and 1 through port contending.
        let mut a = RoundRobinArbiter::new(5);
        let all: Vec<Candidate> = (0..5).map(|p| cand(p, 1)).collect();
        let mut through = 0;
        for _ in 0..100 {
            if all[a.pick(&all)].input_port == 4 {
                through += 1;
            }
        }
        assert_eq!(through, 20, "through port gets exactly 20% service");
    }

    #[test]
    fn distance_weighting_shifts_service() {
        // Same scenario but the through port carries 8-hop traffic.
        let mut a = DistanceArbiter::new(5, false);
        let mut all: Vec<Candidate> = (0..4).map(|p| cand(p, 1)).collect();
        all.push(cand(4, 8));
        let mut through = 0;
        for _ in 0..120 {
            if all[a.pick(&all)].input_port == 4 {
                through += 1;
            }
        }
        // With 8/12 of the total weight, the through port should receive
        // roughly two thirds of the service.
        assert!(
            (70..=90).contains(&through),
            "through port got {through}/120"
        );
    }

    #[test]
    fn equal_weights_degenerate_to_round_robin() {
        let mut a = DistanceArbiter::new(3, false);
        let all = [cand(0, 2), cand(1, 2), cand(2, 2)];
        let picks: Vec<usize> = (0..6).map(|_| all[a.pick(&all)].input_port).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn weigh_uses_hops() {
        let a = DistanceArbiter::new(2, false);
        let mut p = Packet::request(0, PacketKind::ReadRequest, NodeId(0), NodeId(5));
        assert_eq!(a.weigh(&p), 1);
        p.record_hop();
        p.record_hop();
        assert_eq!(a.weigh(&p), 3);
    }

    #[test]
    fn adaptive_boosts_nvm_responses() {
        let a = DistanceArbiter::new(2, true);
        let req = Packet::request(0, PacketKind::ReadRequest, NodeId(0), NodeId(5));
        let mut resp = Packet::response_to(&req, true);
        resp.record_hop();
        let mut dram_resp = Packet::response_to(&req, false);
        dram_resp.record_hop();
        assert_eq!(a.weigh(&resp), a.weigh(&dram_resp) + 6);
    }

    #[test]
    fn adaptive_defers_writes() {
        let a = DistanceArbiter::new(2, true);
        let mut w = Packet::request(0, PacketKind::WriteRequest, NodeId(0), NodeId(5));
        let mut r = Packet::request(0, PacketKind::ReadRequest, NodeId(0), NodeId(5));
        for _ in 0..5 {
            w.record_hop();
            r.record_hop();
        }
        assert!(a.weigh(&w) < a.weigh(&r));
        assert!(a.weigh(&w) >= 1);
    }

    #[test]
    fn non_adaptive_ignores_tech_and_type() {
        let a = DistanceArbiter::new(2, false);
        let req = Packet::request(0, PacketKind::WriteRequest, NodeId(0), NodeId(5));
        let resp = Packet::response_to(&req, true);
        assert_eq!(a.weigh(&req), a.weigh(&resp));
    }

    #[test]
    fn oldest_first_is_strict() {
        let mut a = OldestFirstArbiter::new(3);
        // Port 2 carries the oldest packet (largest weight): always wins.
        let all = [cand(0, 10), cand(1, 20), cand(2, 30)];
        for _ in 0..5 {
            assert_eq!(all[a.pick(&all)].input_port, 2);
        }
        // Exact ties fall back to round-robin.
        let tied = [cand(0, 7), cand(1, 7)];
        let picks: Vec<usize> = (0..4).map(|_| tied[a.pick(&tied)].input_port).collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn oracle_age_weighs_by_injection_time() {
        use mn_sim::SimTime;
        let a = OldestFirstArbiter::new(2);
        let mut old = Packet::request(0, PacketKind::ReadRequest, NodeId(0), NodeId(1));
        let mut young = old.clone();
        old.injected_at = SimTime::from_ns(5);
        young.injected_at = SimTime::from_ns(50);
        assert!(a.weigh(&old) > a.weigh(&young));
    }

    #[test]
    fn kind_instantiates() {
        for kind in [
            ArbiterKind::RoundRobin,
            ArbiterKind::Distance,
            ArbiterKind::AdaptiveDistance,
            ArbiterKind::OracleAge,
        ] {
            let mut arb = kind.instantiate(3);
            let all = [cand(0, 1), cand(2, 5)];
            let i = arb.pick(&all);
            assert!(i < all.len());
        }
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_panics() {
        RoundRobinArbiter::new(2).pick(&[]);
    }
}
