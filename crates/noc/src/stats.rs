//! Network-level measurement: link utilization, traffic counters, and
//! transport energy.

use mn_sim::{Counter, SimDuration, SimTime};

/// Statistics collected by a [`crate::Network`] while it runs.
#[derive(Debug, Clone)]
pub struct NetStats {
    /// Packets injected at any node.
    pub injected: Counter,
    /// Packets delivered to their destination.
    pub delivered: Counter,
    /// Total link traversals (hops) by any packet.
    pub hops: Counter,
    /// Total bit-hops: sum over traversals of packet size in bits. Multiply
    /// by the pJ/bit/hop figure for transport energy (§5's energy model).
    pub bit_hops: u64,
    /// Packets that received an ECN congestion mark on any link (counted
    /// once per marking event, not per marked packet delivered). Always 0
    /// when `NocConfig::ecn_threshold` is 0.
    pub marked: Counter,
    /// Per-link, per-direction busy time, indexed `link * 2 + dir`.
    pub(crate) link_busy: Vec<SimDuration>,
    /// Arbitration rounds run.
    pub arbitration_rounds: Counter,
}

impl NetStats {
    pub(crate) fn new(links: usize) -> NetStats {
        NetStats {
            injected: Counter::new(),
            delivered: Counter::new(),
            hops: Counter::new(),
            bit_hops: 0,
            marked: Counter::new(),
            link_busy: vec![SimDuration::ZERO; links * 2],
            arbitration_rounds: Counter::new(),
        }
    }

    /// Transport energy in picojoules given a pJ/bit/hop figure.
    pub fn transport_energy_pj(&self, pj_per_bit_hop: f64) -> f64 {
        self.bit_hops as f64 * pj_per_bit_hop
    }

    /// Busy time of one link direction (`dir` 0 = a→b, 1 = b→a).
    ///
    /// # Panics
    ///
    /// Panics if the link index or direction is out of range.
    pub fn link_busy_time(&self, link: usize, dir: usize) -> SimDuration {
        assert!(dir < 2, "direction must be 0 or 1");
        self.link_busy[link * 2 + dir]
    }

    /// Utilization of a link direction over the interval `[0, now]`,
    /// in `[0, 1]`.
    pub fn link_utilization(&self, link: usize, dir: usize, now: SimTime) -> f64 {
        let total = now.as_ps();
        if total == 0 {
            return 0.0;
        }
        self.link_busy_time(link, dir).as_ps() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_bits_times_rate() {
        let mut s = NetStats::new(2);
        s.bit_hops = 1000;
        assert!((s.transport_energy_pj(5.0) - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_bounds() {
        let mut s = NetStats::new(1);
        s.link_busy[0] = SimDuration::from_ns(50);
        assert!((s.link_utilization(0, 0, SimTime::from_ns(100)) - 0.5).abs() < 1e-12);
        assert_eq!(s.link_utilization(0, 1, SimTime::from_ns(100)), 0.0);
        assert_eq!(s.link_utilization(0, 0, SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "direction must be 0 or 1")]
    fn bad_direction_panics() {
        NetStats::new(1).link_busy_time(0, 2);
    }
}
