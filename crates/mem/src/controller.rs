//! The quadrant memory controller: a bounded FR-FCFS read scheduler plus a
//! write buffer, over the quadrant's banks.
//!
//! Each memory cube contains four quadrants (§5); each quadrant owns 64 of
//! the stack's 256 banks and one controller. The controller models the
//! "latency in memory" component of the paper's Fig. 5 breakdown, and its
//! bounded queues are what back requests up into the network when a cube
//! is oversubscribed.
//!
//! Writes follow the paper's §4.2 assumption that they are off the
//! program's critical path: a write is acknowledged as soon as its data is
//! accepted into the controller's **write buffer**, and drains to the
//! banks in the background — only when no read wants the bank, unless the
//! buffer passes its high watermark and draining becomes urgent. The slow
//! part of an NVM write (tWR = 320 ns of array programming) therefore
//! delays later reads only on a bank collision, not every dependent
//! operation.

use std::collections::VecDeque;

use mn_sim::SimTime;

use crate::bank::Bank;
use crate::tech::MemTechSpec;

/// A decoded memory access handed to a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Caller-chosen token returned in the [`Completion`]; the core maps it
    /// back to the originating network packet.
    pub token: u64,
    /// Bank index within this quadrant.
    pub bank: u32,
    /// Row within the bank.
    pub row: u64,
    /// True for writes.
    pub is_write: bool,
}

impl MemAccess {
    /// A read access.
    pub fn read(token: u64, bank: u32, row: u64) -> MemAccess {
        MemAccess {
            token,
            bank,
            row,
            is_write: false,
        }
    }

    /// A write access.
    pub fn write(token: u64, bank: u32, row: u64) -> MemAccess {
        MemAccess {
            token,
            bank,
            row,
            is_write: true,
        }
    }
}

/// A finished access: read data ready, or write data accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The token from the originating [`MemAccess`].
    pub token: u64,
    /// When the access finished from the requester's point of view.
    pub completed_at: SimTime,
    /// Whether the access hit an open row (always `false` for write
    /// acceptances — the array access happens later, at drain time).
    pub row_hit: bool,
    /// Whether it was a write.
    pub is_write: bool,
}

/// Error returned when the relevant controller queue is full; the caller
/// must retry after draining completions (this is the backpressure path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerFull;

impl std::fmt::Display for ControllerFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "controller queue is full")
    }
}

impl std::error::Error for ControllerFull {}

#[derive(Debug, Clone, Copy)]
struct Pending {
    access: MemAccess,
    arrival: SimTime,
    seq: u64,
}

/// An FR-FCFS memory controller for one cube quadrant.
///
/// Scheduling policy: among *reads* whose bank is free, prefer row hits,
/// then oldest (First-Ready, First-Come-First-Served). Buffered writes
/// drain to banks the same way but only yield to no pending read for the
/// bank — unless the write buffer exceeds its high watermark, when writes
/// become urgent and drain ahead of reads (the standard write-drain
/// policy).
///
/// The controller is event-driven: callers [`QuadrantController::enqueue`]
/// accesses, then call [`QuadrantController::advance`] whenever simulated
/// time reaches [`QuadrantController::next_event_time`].
#[derive(Debug, Clone)]
pub struct QuadrantController {
    spec: MemTechSpec,
    banks: Vec<Bank>,
    reads: VecDeque<Pending>,
    read_capacity: usize,
    /// Writes awaiting acknowledgment (arrival in the future relative to
    /// the last `advance`), then buffered for background drain.
    writes_unacked: VecDeque<Pending>,
    writes_buffered: VecDeque<Pending>,
    write_capacity: usize,
    next_seq: u64,
    next_refresh: Option<SimTime>,
    /// Memoized [`QuadrantController::next_event_time`], refreshed at the
    /// end of the two public mutators (`enqueue`, `advance`). The system
    /// simulator polls every quadrant of every cube each timestep; without
    /// the memo each poll rescans all banks and queues, and that scan —
    /// not event dispatch — dominates the kernel's wall clock.
    next_cache: Option<SimTime>,
    stats_row_hits: u64,
    stats_accesses: u64,
    stats_drained_writes: u64,
}

impl QuadrantController {
    /// Creates a controller over `banks` banks with a read queue of
    /// `capacity` entries and a write buffer twice that size.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `capacity` is zero.
    pub fn new(spec: MemTechSpec, banks: u32, capacity: usize) -> QuadrantController {
        assert!(banks > 0, "a quadrant needs at least one bank");
        assert!(capacity > 0, "queue capacity must be positive");
        QuadrantController {
            spec,
            banks: vec![Bank::new(); banks as usize],
            reads: VecDeque::with_capacity(capacity),
            read_capacity: capacity,
            // Full-capacity reserves: `has_space` bounds the queues, so a
            // controller sized here never reallocates mid-simulation.
            writes_unacked: VecDeque::with_capacity(capacity * 2),
            writes_buffered: VecDeque::with_capacity(capacity * 2),
            write_capacity: capacity * 2,
            next_seq: 0,
            next_refresh: spec.timings.refresh_interval.map(|i| SimTime::ZERO + i),
            next_cache: None,
            stats_row_hits: 0,
            stats_accesses: 0,
            stats_drained_writes: 0,
        }
    }

    /// The technology this controller drives.
    pub fn spec(&self) -> &MemTechSpec {
        &self.spec
    }

    /// True if an access of the given kind can be enqueued.
    pub fn has_space(&self, is_write: bool) -> bool {
        if is_write {
            self.writes_unacked.len() + self.writes_buffered.len() < self.write_capacity
        } else {
            self.reads.len() < self.read_capacity
        }
    }

    /// Number of queued reads (not yet issued).
    pub fn queue_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of buffered writes (acked or not) awaiting drain.
    pub fn write_buffer_len(&self) -> usize {
        self.writes_unacked.len() + self.writes_buffered.len()
    }

    /// Adds an access.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerFull`] when the relevant queue is at capacity.
    ///
    /// # Panics
    ///
    /// Panics if `access.bank` is out of range for this quadrant.
    pub fn enqueue(&mut self, access: MemAccess, now: SimTime) -> Result<(), ControllerFull> {
        assert!(
            (access.bank as usize) < self.banks.len(),
            "bank {} out of range ({} banks)",
            access.bank,
            self.banks.len()
        );
        if !self.has_space(access.is_write) {
            return Err(ControllerFull);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let pending = Pending {
            access,
            arrival: now,
            seq,
        };
        if access.is_write {
            self.writes_unacked.push_back(pending);
        } else {
            self.reads.push_back(pending);
        }
        self.next_cache = self.compute_next_event_time();
        Ok(())
    }

    /// Issues every access that can start at or before `now`, returning
    /// read completions and write acknowledgments.
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        let mut done = Vec::new();
        self.advance_into(now, &mut done);
        done
    }

    /// Like [`QuadrantController::advance`], but appends completions to a
    /// caller-owned buffer so the simulation hot loop can reuse one
    /// allocation across every controller tick.
    pub fn advance_into(&mut self, now: SimTime, done: &mut Vec<Completion>) {
        self.maybe_refresh(now);

        // Acknowledge arrived writes: data accepted after one burst time.
        let mut i = 0;
        while i < self.writes_unacked.len() {
            if self.writes_unacked[i].arrival <= now {
                let p = self.writes_unacked.remove(i).expect("index valid");
                done.push(Completion {
                    token: p.access.token,
                    completed_at: p.arrival + self.spec.timings.t_burst,
                    row_hit: false,
                    is_write: true,
                });
                self.writes_buffered.push_back(p);
            } else {
                i += 1;
            }
        }

        loop {
            let urgent_writes = self.writes_buffered.len() * 4 >= self.write_capacity * 3;
            let mut issued = false;
            if urgent_writes {
                issued = self.drain_one_write(now, false);
            }
            if !issued {
                if let Some(completion) = self.issue_one_read(now) {
                    done.push(completion);
                    issued = true;
                }
            }
            if !issued {
                // Opportunistic drain: only to banks no queued read wants.
                issued = self.drain_one_write(now, true);
            }
            if !issued {
                // Idle time: write dirty row buffers back to the arrays so
                // later row misses do not pay tWR inline (the policy that
                // keeps PCM's 320 ns writes off the read critical path).
                issued = self.flush_one_dirty(now);
            }
            if !issued {
                break;
            }
        }
        self.next_cache = self.compute_next_event_time();
    }

    /// Flushes one dirty, free, unwanted bank. Returns true if one flushed.
    fn flush_one_dirty(&mut self, now: SimTime) -> bool {
        let wanted = |bank: u32, q: &VecDeque<Pending>| {
            q.iter().any(|p| p.access.bank == bank && p.arrival <= now)
        };
        for (i, bank) in self.banks.iter_mut().enumerate() {
            let id = i as u32;
            if bank.is_dirty()
                && bank.free_at() <= now
                && !wanted(id, &self.reads)
                && !wanted(id, &self.writes_buffered)
            {
                bank.flush(now, &self.spec.timings);
                return true;
            }
        }
        false
    }

    /// FR-FCFS over the read queue; returns the completion if one issued.
    fn issue_one_read(&mut self, now: SimTime) -> Option<Completion> {
        let mut best: Option<(usize, bool, u64)> = None;
        for (i, p) in self.reads.iter().enumerate() {
            if p.arrival > now {
                continue;
            }
            let bank = &self.banks[p.access.bank as usize];
            if bank.free_at() > now {
                continue;
            }
            let hit = bank.would_hit(p.access.row);
            let better = match best {
                None => true,
                Some((_, best_hit, best_seq)) => {
                    (hit && !best_hit) || (hit == best_hit && p.seq < best_seq)
                }
            };
            if better {
                best = Some((i, hit, p.seq));
            }
        }
        let (idx, _, _) = best?;
        let p = self.reads.remove(idx).expect("index valid");
        let start = now.max(p.arrival);
        let outcome = self.banks[p.access.bank as usize].access(
            start,
            p.access.row,
            false,
            &self.spec.timings,
        );
        self.stats_accesses += 1;
        if outcome.row_hit {
            self.stats_row_hits += 1;
        }
        Some(Completion {
            token: p.access.token,
            completed_at: outcome.completed_at,
            row_hit: outcome.row_hit,
            is_write: false,
        })
    }

    /// Drains one buffered write to its bank. When `yield_to_reads` is
    /// true, banks wanted by any queued read are off limits.
    fn drain_one_write(&mut self, now: SimTime, yield_to_reads: bool) -> bool {
        let read_wants_bank = |bank: u32, reads: &VecDeque<Pending>| {
            reads
                .iter()
                .any(|r| r.access.bank == bank && r.arrival <= now)
        };
        let mut candidate: Option<(usize, bool, u64)> = None;
        for (i, p) in self.writes_buffered.iter().enumerate() {
            if p.arrival > now {
                continue;
            }
            let bank = &self.banks[p.access.bank as usize];
            if bank.free_at() > now {
                continue;
            }
            if yield_to_reads && read_wants_bank(p.access.bank, &self.reads) {
                continue;
            }
            let hit = bank.would_hit(p.access.row);
            let better = match candidate {
                None => true,
                Some((_, best_hit, best_seq)) => {
                    (hit && !best_hit) || (hit == best_hit && p.seq < best_seq)
                }
            };
            if better {
                candidate = Some((i, hit, p.seq));
            }
        }
        let Some((idx, _, _)) = candidate else {
            return false;
        };
        let p = self.writes_buffered.remove(idx).expect("index valid");
        let start = now.max(p.arrival);
        let outcome = self.banks[p.access.bank as usize].access(
            start,
            p.access.row,
            true,
            &self.spec.timings,
        );
        self.stats_accesses += 1;
        if outcome.row_hit {
            self.stats_row_hits += 1;
        }
        self.stats_drained_writes += 1;
        true
    }

    fn maybe_refresh(&mut self, now: SimTime) {
        let (Some(due), Some(interval)) = (self.next_refresh, self.spec.timings.refresh_interval)
        else {
            return;
        };
        let mut due = due;
        while due <= now {
            let until = due + self.spec.timings.refresh_penalty;
            for bank in &mut self.banks {
                bank.block_until(until);
            }
            due += interval;
        }
        self.next_refresh = Some(due);
    }

    /// The next instant at which calling [`QuadrantController::advance`]
    /// could make progress, or `None` when fully idle.
    ///
    /// O(1): returns the value memoized by the last mutation, so callers
    /// can poll a large controller population every timestep for free.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.next_cache
    }

    fn compute_next_event_time(&self) -> Option<SimTime> {
        let read_next = self
            .reads
            .iter()
            .map(|p| self.banks[p.access.bank as usize].free_at().max(p.arrival))
            .min();
        let ack_next = self.writes_unacked.iter().map(|p| p.arrival).min();
        let drain_next = self
            .writes_buffered
            .iter()
            .map(|p| self.banks[p.access.bank as usize].free_at().max(p.arrival))
            .min();
        // Dirty banks want a flush as soon as they free up.
        let flush_next = self
            .banks
            .iter()
            .filter(|b| b.is_dirty())
            .map(|b| b.free_at())
            .min();
        [read_next, ack_next, drain_next, flush_next]
            .into_iter()
            .flatten()
            .min()
    }

    /// Fraction of bank accesses that hit an open row so far.
    pub fn row_hit_rate(&self) -> f64 {
        if self.stats_accesses == 0 {
            0.0
        } else {
            self.stats_row_hits as f64 / self.stats_accesses as f64
        }
    }

    /// Total bank accesses issued so far (reads plus drained writes).
    pub fn accesses(&self) -> u64 {
        self.stats_accesses
    }

    /// Writes written back to the arrays so far.
    pub fn drained_writes(&self) -> u64 {
        self.stats_drained_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_sim::SimDuration;

    fn ctrl() -> QuadrantController {
        QuadrantController::new(MemTechSpec::dram_hbm(), 4, 8)
    }

    #[test]
    fn single_read_completes() {
        let mut c = ctrl();
        c.enqueue(MemAccess::read(7, 0, 1), SimTime::ZERO).unwrap();
        let done = c.advance(SimTime::ZERO);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, 7);
        assert_eq!(done[0].completed_at, SimTime::from_ns(20));
        assert!(!done[0].row_hit);
    }

    #[test]
    fn writes_ack_immediately() {
        let mut c = QuadrantController::new(MemTechSpec::nvm_pcm(), 4, 8);
        c.enqueue(MemAccess::write(3, 0, 1), SimTime::ZERO).unwrap();
        let done = c.advance(SimTime::ZERO);
        assert_eq!(done.len(), 1);
        assert!(done[0].is_write);
        // Acked after one burst time, NOT after the 320 ns array write.
        assert_eq!(done[0].completed_at, SimTime::from_ns(2));
        // The drain happened in the background.
        assert_eq!(c.drained_writes(), 1);
    }

    #[test]
    fn reads_have_priority_over_write_drain() {
        let mut c = ctrl();
        c.enqueue(MemAccess::write(0, 0, 1), SimTime::ZERO).unwrap();
        c.enqueue(MemAccess::read(1, 0, 2), SimTime::ZERO).unwrap();
        let done = c.advance(SimTime::ZERO);
        // Both produce completions (the write is just an ack) but the bank
        // is used by the read first: the write has not drained.
        assert_eq!(done.len(), 2);
        assert_eq!(c.drained_writes(), 0);
        // Once the read finishes, the write drains.
        let t = c.next_event_time().unwrap();
        c.advance(t);
        assert_eq!(c.drained_writes(), 1);
    }

    #[test]
    fn urgent_drain_when_buffer_fills() {
        // Write capacity is 2*capacity = 4; watermark at 3.
        let mut c = QuadrantController::new(MemTechSpec::dram_hbm(), 2, 2);
        for t in 0..3 {
            c.enqueue(MemAccess::write(t, 0, t), SimTime::ZERO).unwrap();
        }
        c.enqueue(MemAccess::read(9, 0, 99), SimTime::ZERO).unwrap();
        c.advance(SimTime::ZERO);
        // Urgent mode: at least one write drained ahead of the read.
        assert!(c.drained_writes() >= 1);
    }

    #[test]
    fn fr_fcfs_prefers_row_hit() {
        let mut c = ctrl();
        c.enqueue(MemAccess::read(0, 0, 1), SimTime::ZERO).unwrap();
        let first = c.advance(SimTime::ZERO);
        let t = first[0].completed_at;
        c.enqueue(MemAccess::read(1, 0, 2), t).unwrap();
        c.enqueue(MemAccess::read(2, 0, 1), t).unwrap();
        let done = c.advance(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, 2, "row hit scheduled first");
        assert!(done[0].row_hit);
        let t2 = c.next_event_time().unwrap();
        let done2 = c.advance(t2);
        assert_eq!(done2.len(), 1);
        assert_eq!(done2[0].token, 1);
    }

    #[test]
    fn fcfs_within_same_hit_class() {
        let mut c = ctrl();
        c.enqueue(MemAccess::read(0, 0, 1), SimTime::ZERO).unwrap();
        c.enqueue(MemAccess::read(1, 1, 2), SimTime::ZERO).unwrap();
        let done = c.advance(SimTime::ZERO);
        assert_eq!(done[0].token, 0);
        assert_eq!(done[1].token, 1);
    }

    #[test]
    fn read_queue_backpressure() {
        let mut c = QuadrantController::new(MemTechSpec::dram_hbm(), 1, 2);
        assert!(c.has_space(false));
        c.enqueue(MemAccess::read(0, 0, 1), SimTime::ZERO).unwrap();
        c.enqueue(MemAccess::read(1, 0, 2), SimTime::ZERO).unwrap();
        assert!(!c.has_space(false));
        assert_eq!(
            c.enqueue(MemAccess::read(2, 0, 3), SimTime::ZERO),
            Err(ControllerFull)
        );
        // The write buffer is separate and still has space.
        assert!(c.has_space(true));
    }

    #[test]
    fn write_buffer_backpressure() {
        let mut c = QuadrantController::new(MemTechSpec::nvm_pcm(), 1, 1);
        c.enqueue(MemAccess::write(0, 0, 1), SimTime::ZERO).unwrap();
        c.enqueue(MemAccess::write(1, 0, 2), SimTime::ZERO).unwrap();
        assert!(!c.has_space(true));
        assert_eq!(
            c.enqueue(MemAccess::write(2, 0, 3), SimTime::ZERO),
            Err(ControllerFull)
        );
        assert_eq!(c.write_buffer_len(), 2);
    }

    #[test]
    fn banks_work_in_parallel() {
        let mut c = ctrl();
        for b in 0..4 {
            c.enqueue(MemAccess::read(b as u64, b, 1), SimTime::ZERO)
                .unwrap();
        }
        let done = c.advance(SimTime::ZERO);
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|d| d.completed_at == SimTime::from_ns(20)));
    }

    #[test]
    fn serialization_on_one_bank() {
        let mut c = ctrl();
        c.enqueue(MemAccess::read(0, 0, 1), SimTime::ZERO).unwrap();
        c.enqueue(MemAccess::read(1, 0, 1), SimTime::ZERO).unwrap();
        let done = c.advance(SimTime::ZERO);
        assert_eq!(done.len(), 1);
        let t = c.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_ns(20));
        let done2 = c.advance(t);
        assert_eq!(done2.len(), 1);
        assert!(done2[0].row_hit);
    }

    #[test]
    fn next_event_time_none_when_idle() {
        let c = ctrl();
        assert_eq!(c.next_event_time(), None);
    }

    #[test]
    fn refresh_fires_periodically() {
        let mut c = QuadrantController::new(MemTechSpec::dram_hbm(), 1, 4);
        let late = SimTime::from_us(7) + SimDuration::from_ns(1);
        c.enqueue(MemAccess::read(0, 0, 1), late).unwrap();
        assert!(c.advance(late).is_empty());
        let t = c.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_us(7) + SimDuration::from_ns(350));
        let done = c.advance(t);
        assert!(done[0].completed_at >= SimTime::from_us(7) + SimDuration::from_ns(350));
    }

    #[test]
    fn nvm_has_no_refresh() {
        let mut c = QuadrantController::new(MemTechSpec::nvm_pcm(), 1, 4);
        let late = SimTime::from_us(100);
        c.enqueue(MemAccess::read(0, 0, 1), late).unwrap();
        let done = c.advance(late);
        assert_eq!(done[0].completed_at, late + SimDuration::from_ns(52));
    }

    #[test]
    fn row_hit_rate_tracks() {
        let mut c = ctrl();
        c.enqueue(MemAccess::read(0, 0, 1), SimTime::ZERO).unwrap();
        c.advance(SimTime::ZERO);
        c.enqueue(MemAccess::read(1, 0, 1), SimTime::from_ns(30))
            .unwrap();
        c.advance(SimTime::from_ns(30));
        assert_eq!(c.accesses(), 2);
        assert!((c.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bank 9 out of range")]
    fn bank_out_of_range_panics() {
        let mut c = QuadrantController::new(MemTechSpec::dram_hbm(), 4, 8);
        let _ = c.enqueue(MemAccess::read(0, 9, 1), SimTime::ZERO);
    }

    #[test]
    fn future_arrivals_not_issued_early() {
        let mut c = ctrl();
        c.enqueue(MemAccess::read(0, 0, 1), SimTime::from_ns(100))
            .unwrap();
        assert!(c.advance(SimTime::ZERO).is_empty());
        assert_eq!(c.advance(SimTime::from_ns(100)).len(), 1);
    }

    #[test]
    fn nvm_write_then_read_same_bank_blocks_once() {
        let mut c = QuadrantController::new(MemTechSpec::nvm_pcm(), 1, 8);
        c.enqueue(MemAccess::write(0, 0, 1), SimTime::ZERO).unwrap();
        c.advance(SimTime::ZERO); // ack + background drain to row 1
        assert_eq!(c.drained_writes(), 1);
        // A read to a *different* row must evict the dirty row: pays tWR.
        c.enqueue(MemAccess::read(1, 0, 2), SimTime::from_ns(60))
            .unwrap();
        let t = c.next_event_time().unwrap();
        let done = c.advance(t.max(SimTime::from_ns(60)));
        assert!(done[0].completed_at > SimTime::from_ns(320));
    }
}
