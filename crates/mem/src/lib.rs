//! # mn-mem — memory device models for memory cubes
//!
//! The "in-memory" third of the paper's latency breakdown (Fig. 5) comes
//! from the device models in this crate:
//!
//! - [`MemTechSpec`] — timing and energy parameters for the two cube
//!   technologies in the paper's Table 2: HBM-like DRAM stacks and PCM-like
//!   NVM stacks (4x capacity, slower arrays, 10x write energy).
//! - [`Bank`] — an open-page bank state machine honoring
//!   tRCD/tCL/tRP/tRAS/tWR.
//! - [`QuadrantController`] — an FR-FCFS memory controller for one quadrant
//!   of a cube (64 banks of the 256 per stack), with a bounded request
//!   queue providing backpressure into the network, and periodic refresh
//!   for DRAM.
//! - [`ddr`] — the conventional DDR3/DDR4 bus model behind Table 1
//!   (maximum bus speed vs. DIMMs-per-channel), used to motivate memory
//!   networks in the first place.
//!
//! The crate deliberately knows nothing about networks: a controller
//! receives decoded `(bank, row)` accesses and reports completion times.
//! Address decoding and the network round trip live in `mn-core`.
//!
//! ## Example
//!
//! ```
//! use mn_mem::{MemTechSpec, QuadrantController, MemAccess};
//! use mn_sim::SimTime;
//!
//! let mut ctrl = QuadrantController::new(MemTechSpec::dram_hbm(), 64, 32);
//! let t0 = SimTime::ZERO;
//! ctrl.enqueue(MemAccess::read(1, 7, 100), t0).unwrap();
//! let done = ctrl.advance(t0);
//! assert_eq!(done.len(), 1);
//! // A closed-bank read costs tRCD + tCL + burst.
//! assert!(done[0].completed_at > SimTime::from_ns(18));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bank;
mod controller;
pub mod ddr;
mod energy;
mod tech;

pub use bank::{Bank, BankAccessOutcome};
pub use controller::{Completion, ControllerFull, MemAccess, QuadrantController};
pub use energy::EnergyPj;
pub use tech::{MemEnergy, MemTechSpec, MemTimings};
