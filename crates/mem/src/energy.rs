//! Dynamic energy accounting (the §6.3 / Fig. 15 model).
//!
//! The paper's energy model is deliberately simple: every bit moved over a
//! link costs 5 pJ per hop, and every bit read or written at a memory array
//! costs the technology's per-bit figure (12 pJ for DRAM, 12/120 pJ for NVM
//! reads/writes). Static energy is excluded.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use crate::tech::MemEnergy;

/// An amount of energy in picojoules.
///
/// # Example
///
/// ```
/// use mn_mem::EnergyPj;
///
/// let network = EnergyPj::per_bit_hop(5.0, 64 * 8, 3); // 64 B over 3 hops
/// assert_eq!(network, EnergyPj::from_pj(7680.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct EnergyPj(f64);

impl EnergyPj {
    /// Zero energy.
    pub const ZERO: EnergyPj = EnergyPj(0.0);

    /// From raw picojoules.
    ///
    /// # Panics
    ///
    /// Panics if `pj` is negative or not finite.
    pub fn from_pj(pj: f64) -> EnergyPj {
        assert!(pj.is_finite() && pj >= 0.0, "energy must be >= 0, got {pj}");
        EnergyPj(pj)
    }

    /// Transport energy: `pj_per_bit_hop` x `bits` x `hops`.
    pub fn per_bit_hop(pj_per_bit_hop: f64, bits: u64, hops: u32) -> EnergyPj {
        EnergyPj::from_pj(pj_per_bit_hop * bits as f64 * f64::from(hops))
    }

    /// Array access energy for `bits` using `energy` parameters.
    pub fn array_access(energy: &MemEnergy, bits: u64, is_write: bool) -> EnergyPj {
        let per_bit = if is_write {
            energy.write_pj_per_bit
        } else {
            energy.read_pj_per_bit
        };
        EnergyPj::from_pj(per_bit * bits as f64)
    }

    /// Raw picojoules.
    pub fn as_pj(self) -> f64 {
        self.0
    }

    /// In microjoules (for readable experiment output).
    pub fn as_uj(self) -> f64 {
        self.0 / 1e6
    }
}

impl Add for EnergyPj {
    type Output = EnergyPj;
    fn add(self, rhs: EnergyPj) -> EnergyPj {
        EnergyPj(self.0 + rhs.0)
    }
}

impl AddAssign for EnergyPj {
    fn add_assign(&mut self, rhs: EnergyPj) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for EnergyPj {
    type Output = EnergyPj;
    fn mul(self, rhs: f64) -> EnergyPj {
        EnergyPj::from_pj(self.0 * rhs)
    }
}

impl Sum for EnergyPj {
    fn sum<I: Iterator<Item = EnergyPj>>(iter: I) -> EnergyPj {
        EnergyPj(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for EnergyPj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}pJ", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::MemTechSpec;

    #[test]
    fn transport_energy() {
        // 80-byte data packet over 5 hops at 5 pJ/bit/hop.
        let e = EnergyPj::per_bit_hop(5.0, 80 * 8, 5);
        assert!((e.as_pj() - 16_000.0).abs() < 1e-9);
    }

    #[test]
    fn nvm_writes_cost_10x_reads() {
        let nvm = MemTechSpec::nvm_pcm().energy;
        let read = EnergyPj::array_access(&nvm, 512, false);
        let write = EnergyPj::array_access(&nvm, 512, true);
        assert!((write.as_pj() / read.as_pj() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_and_sum() {
        let a = EnergyPj::from_pj(1.0);
        let b = EnergyPj::from_pj(2.0);
        assert_eq!(a + b, EnergyPj::from_pj(3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, EnergyPj::from_pj(3.0));
        let total: EnergyPj = [a, b, c].into_iter().sum();
        assert_eq!(total, EnergyPj::from_pj(6.0));
        assert_eq!(a * 4.0, EnergyPj::from_pj(4.0));
    }

    #[test]
    fn unit_conversion_and_display() {
        let e = EnergyPj::from_pj(2_500_000.0);
        assert!((e.as_uj() - 2.5).abs() < 1e-12);
        assert_eq!(format!("{}", EnergyPj::from_pj(5.25)), "5.2pJ");
    }

    #[test]
    #[should_panic(expected = "energy must be >= 0")]
    fn negative_energy_rejected() {
        let _ = EnergyPj::from_pj(-1.0);
    }
}
