//! Technology parameters: the paper's Table 2 timing and energy numbers.

use mn_sim::SimDuration;

/// Device timing parameters for one memory technology.
///
/// All values are per the paper's Table 2 unless noted. `t_wr` for DRAM is
/// not listed there; we use a typical 15 ns. `t_burst` models moving one
/// 64-byte access across the vault TSVs and is a small constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTimings {
    /// Row-activation latency (RAS-to-CAS delay).
    pub t_rcd: SimDuration,
    /// Column access (CAS) latency.
    pub t_cl: SimDuration,
    /// Precharge latency.
    pub t_rp: SimDuration,
    /// Minimum row-active time (activate → precharge).
    pub t_ras: SimDuration,
    /// Write recovery: the bank stays busy this long after write data
    /// arrives. The dominant cost of PCM writes (320 ns).
    pub t_wr: SimDuration,
    /// Data burst transfer time for one access.
    pub t_burst: SimDuration,
    /// Refresh interval per quadrant; `None` disables refresh (NVM needs
    /// none — one of its perks).
    pub refresh_interval: Option<SimDuration>,
    /// Duration banks are blocked per refresh.
    pub refresh_penalty: SimDuration,
}

/// Access energy parameters (dynamic only, as in §5's energy model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemEnergy {
    /// Energy per bit read, picojoules.
    pub read_pj_per_bit: f64,
    /// Energy per bit written, picojoules.
    pub write_pj_per_bit: f64,
}

/// Complete description of a cube's memory technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemTechSpec {
    /// Device timings.
    pub timings: MemTimings,
    /// Access energy.
    pub energy: MemEnergy,
    /// Capacity per cube in GB (16 for DRAM, 64 for NVM — Table 2).
    pub capacity_gb: u32,
}

impl MemTechSpec {
    /// The paper's HBM-like DRAM stack: tRCD=12 ns, tCL=6 ns, tRP=14 ns,
    /// tRAS=33 ns; 12 pJ/bit reads and writes; 16 GB per cube.
    pub fn dram_hbm() -> MemTechSpec {
        MemTechSpec {
            timings: MemTimings {
                t_rcd: SimDuration::from_ns(12),
                t_cl: SimDuration::from_ns(6),
                t_rp: SimDuration::from_ns(14),
                t_ras: SimDuration::from_ns(33),
                t_wr: SimDuration::from_ns(15),
                t_burst: SimDuration::from_ns(2),
                refresh_interval: Some(SimDuration::from_us(7)),
                refresh_penalty: SimDuration::from_ns(350),
            },
            energy: MemEnergy {
                read_pj_per_bit: 12.0,
                write_pj_per_bit: 12.0,
            },
            capacity_gb: 16,
        }
    }

    /// The paper's PCM-like NVM stack: tRCD=40 ns, tCL=10 ns,
    /// tWR=320 ns at a 500 MHz device clock; reads 12 pJ/bit, writes
    /// 120 pJ/bit (10x); 64 GB per cube; no refresh.
    pub fn nvm_pcm() -> MemTechSpec {
        MemTechSpec {
            timings: MemTimings {
                t_rcd: SimDuration::from_ns(40),
                t_cl: SimDuration::from_ns(10),
                // PCM has no destructive reads: "precharge" is just row
                // buffer replacement; modeled as the 2 ns device cycle.
                t_rp: SimDuration::from_ns(2),
                t_ras: SimDuration::from_ns(0),
                t_wr: SimDuration::from_ns(320),
                t_burst: SimDuration::from_ns(2),
                refresh_interval: None,
                refresh_penalty: SimDuration::ZERO,
            },
            energy: MemEnergy {
                read_pj_per_bit: 12.0,
                write_pj_per_bit: 120.0,
            },
            capacity_gb: 64,
        }
    }

    /// Worst-case (closed bank) read latency: activation plus CAS plus
    /// burst. Useful for sanity checks and analytical models.
    pub fn closed_read_latency(&self) -> SimDuration {
        self.timings.t_rcd + self.timings.t_cl + self.timings.t_burst
    }

    /// Best-case (open row) read latency.
    pub fn open_read_latency(&self) -> SimDuration {
        self.timings.t_cl + self.timings.t_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_matches_table2() {
        let d = MemTechSpec::dram_hbm();
        assert_eq!(d.timings.t_rcd, SimDuration::from_ns(12));
        assert_eq!(d.timings.t_cl, SimDuration::from_ns(6));
        assert_eq!(d.timings.t_rp, SimDuration::from_ns(14));
        assert_eq!(d.timings.t_ras, SimDuration::from_ns(33));
        assert_eq!(d.capacity_gb, 16);
        assert!((d.energy.read_pj_per_bit - 12.0).abs() < f64::EPSILON);
    }

    #[test]
    fn nvm_matches_table2() {
        let n = MemTechSpec::nvm_pcm();
        assert_eq!(n.timings.t_rcd, SimDuration::from_ns(40));
        assert_eq!(n.timings.t_cl, SimDuration::from_ns(10));
        assert_eq!(n.timings.t_wr, SimDuration::from_ns(320));
        assert_eq!(n.capacity_gb, 64);
        assert!((n.energy.write_pj_per_bit - 120.0).abs() < f64::EPSILON);
        assert!(n.timings.refresh_interval.is_none());
    }

    #[test]
    fn nvm_reads_slower_than_dram() {
        let d = MemTechSpec::dram_hbm();
        let n = MemTechSpec::nvm_pcm();
        assert!(n.closed_read_latency() > d.closed_read_latency());
        assert!(n.open_read_latency() > d.open_read_latency());
    }

    #[test]
    fn latency_helpers() {
        let d = MemTechSpec::dram_hbm();
        assert_eq!(d.closed_read_latency(), SimDuration::from_ns(20));
        assert_eq!(d.open_read_latency(), SimDuration::from_ns(8));
    }
}
