//! The conventional DDR bus model behind the paper's Table 1 and the
//! capacity-versus-bandwidth motivation of §2.1.
//!
//! On a multi-drop DDR bus, adding DIMMs adds electrical load and forces
//! the bus clock down; capacity and bandwidth trade off directly. Memory
//! cubes escape this because each point-to-point link has fixed loading.
//!
//! # Example
//!
//! ```
//! use mn_mem::ddr::{DdrGeneration, max_speed_mhz};
//!
//! // Table 1: DDR3 drops from 1333 MHz at 1 DPC to 800 MHz at 3 DPC.
//! assert_eq!(max_speed_mhz(DdrGeneration::Ddr3, 1), Some(1333));
//! assert_eq!(max_speed_mhz(DdrGeneration::Ddr3, 3), Some(800));
//! assert_eq!(max_speed_mhz(DdrGeneration::Ddr3, 4), None); // unsupported
//! ```

/// A DDR interface generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DdrGeneration {
    /// DDR3 (Table 1 values from Dell PowerEdge documentation).
    Ddr3,
    /// DDR4 (Table 1 values from Dell memory-population guidance).
    Ddr4,
}

impl DdrGeneration {
    /// Pins per channel; the paper cites 288 for DDR4 (§1). DDR3 used 240.
    pub const fn pins_per_channel(self) -> u32 {
        match self {
            DdrGeneration::Ddr3 => 240,
            DdrGeneration::Ddr4 => 288,
        }
    }
}

/// Maximum supported DIMMs per channel in typical servers (§2.1).
pub const MAX_DPC: u32 = 3;

/// Maximum bus speed in MHz (mega-transfers/s) for `dpc` DIMMs per channel,
/// or `None` if that population is unsupported. Reproduces Table 1 exactly.
pub fn max_speed_mhz(generation: DdrGeneration, dpc: u32) -> Option<u32> {
    match (generation, dpc) {
        (DdrGeneration::Ddr3, 1) => Some(1333),
        (DdrGeneration::Ddr3, 2) => Some(1066),
        (DdrGeneration::Ddr3, 3) => Some(800),
        (DdrGeneration::Ddr4, 1) => Some(2133),
        (DdrGeneration::Ddr4, 2) => Some(2133),
        (DdrGeneration::Ddr4, 3) => Some(1866),
        _ => None,
    }
}

/// Peak bandwidth of one channel in GB/s given the bus speed: a 64-bit data
/// bus transfers 8 bytes per transfer.
pub fn channel_bandwidth_gbs(speed_mhz: u32) -> f64 {
    f64::from(speed_mhz) * 8.0 / 1000.0
}

/// A DDR memory system configuration: how much capacity and bandwidth a
/// host gets from `channels` channels populated with `dpc` DIMMs of
/// `dimm_gb` gigabytes each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdrSystem {
    /// Interface generation.
    pub generation: DdrGeneration,
    /// Number of memory channels.
    pub channels: u32,
    /// DIMMs per channel.
    pub dpc: u32,
    /// Capacity per DIMM, GB.
    pub dimm_gb: u32,
}

impl DdrSystem {
    /// Total capacity in GB.
    pub fn capacity_gb(&self) -> u64 {
        u64::from(self.channels) * u64::from(self.dpc) * u64::from(self.dimm_gb)
    }

    /// Aggregate peak bandwidth in GB/s, or `None` if the DPC is
    /// unsupported.
    pub fn bandwidth_gbs(&self) -> Option<f64> {
        let mhz = max_speed_mhz(self.generation, self.dpc)?;
        Some(channel_bandwidth_gbs(mhz) * f64::from(self.channels))
    }

    /// Total processor pins consumed by the memory interfaces.
    pub fn pins(&self) -> u32 {
        self.generation.pins_per_channel() * self.channels
    }

    /// Bandwidth per unit capacity (GB/s per GB); the figure of merit that
    /// collapses as DPC grows, motivating memory networks.
    pub fn bandwidth_per_gb(&self) -> Option<f64> {
        Some(self.bandwidth_gbs()? / self.capacity_gb() as f64)
    }
}

/// Pin cost of one memory-cube (HMC 2.0-style) link: 66 pins (§2.2).
pub const CUBE_LINK_PINS: u32 = 66;

/// Peak bandwidth of one memory-cube link in GB/s: 16 lanes x 15 Gbps in
/// each direction ≈ 30 GB/s of payload twice over; the paper quotes
/// 320 GB/s aggregate for 8 links of HMC 2.0. We use the per-direction
/// payload figure used in the network model.
pub const CUBE_LINK_BANDWIDTH_GBS: f64 = 30.0;

/// How many cube links fit in the pin budget of `channels` DDR channels —
/// the paper's "over four times the number of HMC 2.0 links" comparison.
pub fn cube_links_for_pin_budget(generation: DdrGeneration, channels: u32) -> u32 {
    (generation.pins_per_channel() * channels) / CUBE_LINK_PINS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        assert_eq!(max_speed_mhz(DdrGeneration::Ddr3, 1), Some(1333));
        assert_eq!(max_speed_mhz(DdrGeneration::Ddr3, 2), Some(1066));
        assert_eq!(max_speed_mhz(DdrGeneration::Ddr3, 3), Some(800));
        assert_eq!(max_speed_mhz(DdrGeneration::Ddr4, 1), Some(2133));
        assert_eq!(max_speed_mhz(DdrGeneration::Ddr4, 2), Some(2133));
        assert_eq!(max_speed_mhz(DdrGeneration::Ddr4, 3), Some(1866));
        assert_eq!(max_speed_mhz(DdrGeneration::Ddr4, 0), None);
        assert_eq!(max_speed_mhz(DdrGeneration::Ddr4, 4), None);
    }

    #[test]
    fn capacity_bandwidth_tradeoff() {
        let one = DdrSystem {
            generation: DdrGeneration::Ddr3,
            channels: 4,
            dpc: 1,
            dimm_gb: 32,
        };
        let three = DdrSystem { dpc: 3, ..one };
        assert!(three.capacity_gb() == 3 * one.capacity_gb());
        assert!(three.bandwidth_gbs().unwrap() < one.bandwidth_gbs().unwrap());
        assert!(three.bandwidth_per_gb().unwrap() < one.bandwidth_per_gb().unwrap());
    }

    #[test]
    fn ddr4_2dpc_keeps_speed() {
        let a = DdrSystem {
            generation: DdrGeneration::Ddr4,
            channels: 1,
            dpc: 1,
            dimm_gb: 16,
        };
        let b = DdrSystem { dpc: 2, ..a };
        assert_eq!(a.bandwidth_gbs(), b.bandwidth_gbs());
    }

    #[test]
    fn pin_comparison_favors_cubes() {
        // A four-channel DDR4 server spends 1152 pins (§1)...
        let server = DdrSystem {
            generation: DdrGeneration::Ddr4,
            channels: 4,
            dpc: 2,
            dimm_gb: 32,
        };
        assert_eq!(server.pins(), 1152);
        // ...which buys over four times as many cube links.
        let links = cube_links_for_pin_budget(DdrGeneration::Ddr4, 4);
        assert!(links >= 17, "got {links}");
        let cube_bw = f64::from(links) * CUBE_LINK_BANDWIDTH_GBS;
        assert!(cube_bw > server.bandwidth_gbs().unwrap() * 4.0);
    }

    #[test]
    fn channel_bandwidth_formula() {
        assert!((channel_bandwidth_gbs(2133) - 17.064).abs() < 1e-9);
    }
}
