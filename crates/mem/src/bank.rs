//! The per-bank state machine: open-page policy with
//! tRCD/tCL/tRP/tRAS/tWR enforcement.

use mn_sim::{SimDuration, SimTime};

use crate::tech::MemTimings;

/// What an access did at the bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankAccessOutcome {
    /// When the data transfer completed (read data available / write data
    /// accepted). The response packet can depart at this time.
    pub completed_at: SimTime,
    /// When the bank can issue its next access (includes write recovery).
    pub bank_free_at: SimTime,
    /// True if the access hit the open row.
    pub row_hit: bool,
}

/// One memory bank with an open-row (page) policy.
///
/// The state machine tracks the open row, when the bank becomes free, and
/// the earliest time a precharge may begin (tRAS after the last activate).
///
/// # Example
///
/// ```
/// use mn_mem::{Bank, MemTechSpec};
/// use mn_sim::SimTime;
///
/// let spec = MemTechSpec::dram_hbm();
/// let mut bank = Bank::new();
/// let miss = bank.access(SimTime::ZERO, 5, false, &spec.timings);
/// assert!(!miss.row_hit);
/// let hit = bank.access(miss.bank_free_at, 5, false, &spec.timings);
/// assert!(hit.row_hit);
/// assert!(hit.completed_at - miss.bank_free_at < miss.completed_at - SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Bank {
    open_row: Option<u64>,
    free_at: SimTime,
    last_activate: SimTime,
    activated_once: bool,
    dirty: bool,
}

impl Bank {
    /// A fresh bank with all rows closed.
    pub fn new() -> Bank {
        Bank::default()
    }

    /// The earliest time the bank can begin a new access.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// True if an access to `row` would hit the open row.
    pub fn would_hit(&self, row: u64) -> bool {
        self.open_row == Some(row)
    }

    /// True if the open row holds data not yet written back to the array.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Writes a dirty row buffer back to the array during idle time, so a
    /// later row miss does not pay `tWR` on the critical path. The row
    /// stays open (and clean); the bank is busy for the write-back.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not dirty or not yet free at `now`.
    pub fn flush(&mut self, now: SimTime, t: &MemTimings) {
        assert!(self.dirty, "flush on a clean bank");
        assert!(self.free_at <= now, "flush on a busy bank");
        self.free_at = now + t.t_wr;
        self.dirty = false;
    }

    /// Blocks the bank until `until` (used for refresh).
    pub fn block_until(&mut self, until: SimTime) {
        self.free_at = self.free_at.max(until);
        // Refresh closes the row (and flushes any pending write-back as
        // part of the blocked window).
        self.open_row = None;
        self.dirty = false;
    }

    /// Performs one access to `row` starting no earlier than `now`,
    /// returning its completion time and the bank's next-free time.
    ///
    /// Latency cases:
    /// - row hit: `tCL + burst`
    /// - row miss, bank open: `tRP (after tRAS satisfied) + tRCD + tCL + burst`
    /// - bank closed: `tRCD + tCL + burst`
    ///
    /// Writes land in the open row buffer and mark it dirty; the write
    /// recovery `tWR` (the dominant PCM cost — 320 ns) is charged when a
    /// *dirty* row is evicted by a row miss, i.e. consecutive writes into
    /// one row coalesce in the buffer and pay the array write-back once.
    pub fn access(
        &mut self,
        now: SimTime,
        row: u64,
        is_write: bool,
        t: &MemTimings,
    ) -> BankAccessOutcome {
        let start = now.max(self.free_at);
        let (ready, row_hit) = match self.open_row {
            Some(open) if open == row => (start + t.t_cl + t.t_burst, true),
            Some(_) => {
                // Precharge may not begin until tRAS after the activate,
                // and a dirty row pays the array write-back first.
                let ras_ok = if self.activated_once {
                    self.last_activate + t.t_ras
                } else {
                    start
                };
                let writeback = if self.dirty {
                    t.t_wr
                } else {
                    SimDuration::ZERO
                };
                let pre_start = start.max(ras_ok) + writeback;
                self.dirty = false;
                let act_at = pre_start + t.t_rp;
                self.last_activate = act_at;
                self.activated_once = true;
                (act_at + t.t_rcd + t.t_cl + t.t_burst, false)
            }
            None => {
                self.last_activate = start;
                self.activated_once = true;
                (start + t.t_rcd + t.t_cl + t.t_burst, false)
            }
        };
        self.open_row = Some(row);
        if is_write {
            self.dirty = true;
        }
        self.free_at = ready;
        BankAccessOutcome {
            completed_at: ready,
            bank_free_at: self.free_at,
            row_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::MemTechSpec;

    fn dram() -> MemTimings {
        MemTechSpec::dram_hbm().timings
    }

    fn nvm() -> MemTimings {
        MemTechSpec::nvm_pcm().timings
    }

    #[test]
    fn closed_bank_read_is_rcd_plus_cl() {
        let mut b = Bank::new();
        let out = b.access(SimTime::ZERO, 1, false, &dram());
        // 12 + 6 + 2 = 20 ns
        assert_eq!(out.completed_at, SimTime::from_ns(20));
        assert!(!out.row_hit);
        assert_eq!(out.bank_free_at, out.completed_at);
    }

    #[test]
    fn open_row_hit_is_cl_only() {
        let mut b = Bank::new();
        let first = b.access(SimTime::ZERO, 1, false, &dram());
        let hit = b.access(first.bank_free_at, 1, false, &dram());
        assert!(hit.row_hit);
        assert_eq!(
            hit.completed_at - first.bank_free_at,
            SimDuration::from_ns(8) // tCL + burst
        );
    }

    #[test]
    fn row_conflict_pays_ras_rp_rcd() {
        let mut b = Bank::new();
        let first = b.access(SimTime::ZERO, 1, false, &dram());
        let conflict = b.access(first.bank_free_at, 2, false, &dram());
        assert!(!conflict.row_hit);
        // The precharge cannot start until tRAS (33 ns) after the activate
        // at t=0, then tRP(14) + tRCD(12) + tCL(6) + burst(2) = 67 ns.
        assert_eq!(conflict.completed_at, SimTime::from_ns(67));
    }

    #[test]
    fn writes_coalesce_in_row_buffer() {
        let mut b = Bank::new();
        let w = b.access(SimTime::ZERO, 1, true, &nvm());
        // Completes at tRCD(40)+tCL(10)+burst(2) = 52; the bank is NOT
        // blocked for tWR — the dirty row sits in the row buffer.
        assert_eq!(w.completed_at, SimTime::from_ns(52));
        assert_eq!(w.bank_free_at, w.completed_at);
        // A row-hit write right behind it is cheap too.
        let w2 = b.access(w.bank_free_at, 1, true, &nvm());
        assert!(w2.row_hit);
        assert_eq!(w2.completed_at - w.bank_free_at, SimDuration::from_ns(12));
    }

    #[test]
    fn dirty_row_eviction_pays_twr() {
        let mut b = Bank::new();
        let w = b.access(SimTime::ZERO, 1, true, &nvm());
        // A read to a different row must write the dirty row back first:
        // tWR(320) + tRP(2) + tRCD(40) + tCL(10) + burst(2).
        let r = b.access(w.bank_free_at, 2, false, &nvm());
        assert!(!r.row_hit);
        assert_eq!(
            r.completed_at - w.bank_free_at,
            SimDuration::from_ns(320 + 2 + 40 + 10 + 2)
        );
        // The row is now clean: the next eviction is cheap.
        let r2 = b.access(r.bank_free_at, 3, false, &nvm());
        assert_eq!(
            r2.completed_at - r.bank_free_at,
            SimDuration::from_ns(2 + 40 + 10 + 2)
        );
    }

    #[test]
    fn access_before_free_time_is_deferred() {
        let mut b = Bank::new();
        let first = b.access(SimTime::ZERO, 1, false, &dram());
        // Request arrives while the bank is still busy.
        let second = b.access(SimTime::ZERO, 1, false, &dram());
        assert!(second.completed_at >= first.bank_free_at);
    }

    #[test]
    fn refresh_blocks_and_closes_row() {
        let mut b = Bank::new();
        b.access(SimTime::ZERO, 1, false, &dram());
        b.block_until(SimTime::from_ns(1000));
        assert_eq!(b.free_at(), SimTime::from_ns(1000));
        assert_eq!(b.open_row(), None);
        let after = b.access(SimTime::from_ns(500), 1, false, &dram());
        assert!(!after.row_hit, "refresh closed the row");
        assert!(after.completed_at >= SimTime::from_ns(1020));
    }

    #[test]
    fn would_hit_reports_open_row() {
        let mut b = Bank::new();
        assert!(!b.would_hit(3));
        b.access(SimTime::ZERO, 3, false, &dram());
        assert!(b.would_hit(3));
        assert!(!b.would_hit(4));
    }

    #[test]
    fn nvm_conflict_cheaper_precharge() {
        let mut b = Bank::new();
        let first = b.access(SimTime::ZERO, 1, false, &nvm());
        let conflict = b.access(first.bank_free_at, 2, false, &nvm());
        // tRAS=0, tRP=2, tRCD=40, tCL=10, burst=2 after free at 52.
        assert_eq!(conflict.completed_at, SimTime::from_ns(52 + 54));
    }
}
