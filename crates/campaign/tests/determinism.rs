//! The campaign engine's two load-bearing guarantees, end to end:
//!
//! 1. results are bit-identical at any worker count (the scheduler only
//!    changes wall-clock time, never outcomes), and
//! 2. a repeated run of the same grid is served entirely from the on-disk
//!    cache, losslessly.

use std::path::PathBuf;

use mn_campaign::{codec, Campaign, CampaignPoint};
use mn_core::SystemConfig;
use mn_noc::ArbiterKind;
use mn_topo::TopologyKind;
use mn_workloads::Workload;

/// A small but heterogeneous grid: three topologies x two workloads, with
/// a duplicated shared baseline, sized to finish quickly.
fn grid() -> Vec<CampaignPoint> {
    let mut points = Vec::new();
    for topology in [
        TopologyKind::Chain,
        TopologyKind::Tree,
        TopologyKind::SkipList,
    ] {
        for workload in [Workload::Nw, Workload::Backprop] {
            let mut config = SystemConfig::paper_baseline(topology, 1.0).unwrap();
            config.requests_per_port = 200;
            config.noc.arbiter = ArbiterKind::Distance;
            points.push(CampaignPoint::new(config, workload));
        }
    }
    // The shared baseline, submitted twice like normalized figures do.
    let base = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0)
        .map(|mut c| {
            c.requests_per_port = 200;
            c
        })
        .unwrap();
    points.push(CampaignPoint::new(base.clone(), Workload::Nw));
    points.push(CampaignPoint::new(base, Workload::Nw));
    points
}

/// `RunResult` has no `PartialEq`; the lossless cache codec is an exact,
/// field-complete rendering, so encoded equality is result equality.
fn encoded(campaign: &Campaign) -> Vec<String> {
    campaign
        .run(grid())
        .outcomes
        .iter()
        .map(|o| codec::encode_result(o.result.as_ref().unwrap()))
        .collect()
}

#[test]
fn parallel_results_are_bit_identical_to_serial() {
    let serial = encoded(&Campaign::new(1).quiet());
    let parallel = encoded(&Campaign::new(4).quiet());
    assert_eq!(serial.len(), grid().len());
    assert_eq!(serial, parallel);
}

/// A fault-injected grid on topologies with enough path diversity to
/// survive their schedules, with multiple simulated ports so fault draws
/// happen on different workers in different orders.
fn faulted_grid() -> Vec<CampaignPoint> {
    let mut points = Vec::new();
    for topology in [TopologyKind::Ring, TopologyKind::SkipList] {
        for workload in [Workload::Nw, Workload::Backprop] {
            let mut config = SystemConfig::paper_baseline(topology, 1.0).unwrap();
            config.requests_per_port = 200;
            config.simulated_ports = 2;
            config.noc.fault.transient_rate = 0.02;
            config.noc.fault.degrade_rate = 0.05;
            config.noc.fault.seed = 0xFA017;
            points.push(CampaignPoint::new(config, workload));
        }
    }
    points
}

#[test]
fn fault_schedules_are_bit_identical_at_any_worker_count() {
    let run = |jobs| {
        Campaign::new(jobs)
            .quiet()
            .run(faulted_grid())
            .outcomes
            .into_iter()
            .map(|o| codec::encode_result(&o.result.unwrap()))
            .collect::<Vec<String>>()
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.len(), faulted_grid().len());
    assert_eq!(serial, parallel);

    // A different fault seed is a genuinely different experiment.
    let mut reseeded = faulted_grid();
    for p in &mut reseeded {
        p.config.noc.fault.seed ^= 1;
    }
    let other: Vec<String> = Campaign::new(4)
        .quiet()
        .run(reseeded)
        .outcomes
        .into_iter()
        .map(|o| codec::encode_result(&o.result.unwrap()))
        .collect();
    assert_ne!(serial, other);
}

/// A closed-loop grid exercising both adaptive policies, with multiple
/// simulated ports so window feedback happens on different workers in
/// different orders.
fn closed_loop_grid() -> Vec<CampaignPoint> {
    let mut points = Vec::new();
    for topology in [TopologyKind::Ring, TopologyKind::Tree] {
        for policy in [
            mn_core::WindowPolicyKind::Aimd,
            mn_core::WindowPolicyKind::Ecn,
        ] {
            let mut config = SystemConfig::paper_baseline(topology, 1.0).unwrap();
            config.requests_per_port = 200;
            config.simulated_ports = 2;
            config.host.policy = policy;
            config.host.window_cap = 16;
            config.host.initial_window = 4;
            config.noc.ecn_threshold = 4;
            points.push(CampaignPoint::new(config, Workload::Backprop));
        }
    }
    points
}

#[test]
fn closed_loop_sweeps_are_bit_identical_at_any_worker_count() {
    let run = |jobs| {
        Campaign::new(jobs)
            .quiet()
            .run(closed_loop_grid())
            .outcomes
            .into_iter()
            .map(|o| codec::encode_result(&o.result.unwrap()))
            .collect::<Vec<String>>()
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.len(), closed_loop_grid().len());
    assert_eq!(serial, parallel);
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mn-campaign-it-{tag}-{}", std::process::id()))
}

#[test]
fn second_run_is_served_entirely_from_cache() {
    let dir = scratch_dir("rerun");
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = Campaign::new(4).quiet().cache_dir(&dir);

    let first = campaign.run(grid());
    assert_eq!(first.summary.cache_hits, 0);
    assert_eq!(first.summary.fresh, first.summary.unique);

    let second = campaign.run(grid());
    assert_eq!(second.summary.fresh, 0, "no fresh simulations on rerun");
    assert_eq!(second.summary.cache_hits, second.summary.unique);

    // ... and the cached results are lossless.
    let fresh: Vec<String> = first
        .outcomes
        .iter()
        .map(|o| codec::encode_result(o.result.as_ref().unwrap()))
        .collect();
    let cached: Vec<String> = second
        .outcomes
        .iter()
        .map(|o| codec::encode_result(o.result.as_ref().unwrap()))
        .collect();
    assert_eq!(fresh, cached);
    for outcome in &second.outcomes {
        assert!(outcome.cached);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_is_shared_across_overlapping_grids() {
    let dir = scratch_dir("overlap");
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = Campaign::new(2).quiet().cache_dir(&dir);

    // Warm the cache with only the chain points.
    let chain_only: Vec<CampaignPoint> = grid()
        .into_iter()
        .filter(|p| p.config.label().ends_with("-C"))
        .collect();
    let warm = campaign.run(chain_only);
    assert!(warm.summary.fresh > 0);

    // The full grid hits on every chain point and simulates the rest.
    let full = campaign.run(grid());
    assert_eq!(full.summary.cache_hits, warm.summary.unique);
    assert_eq!(
        full.summary.fresh,
        full.summary.unique - warm.summary.unique
    );

    let _ = std::fs::remove_dir_all(&dir);
}
