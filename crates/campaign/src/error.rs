//! Campaign-level failures: one grid point failing must be a diagnosable
//! record, not a dead worker pool.

use std::error::Error;
use std::fmt;

use mn_core::SimError;

/// Why one campaign point has no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// A port simulation of the point failed (partitioned network,
    /// stalled driver). The other points of the grid are unaffected.
    Sim {
        /// Which port failed first.
        port: u32,
        /// The structured simulation failure.
        error: SimError,
    },
    /// A worker disappeared before every port observation landed — the
    /// channel closed with the point incomplete. This is a scheduler or
    /// environment defect (a killed thread, not a simulation outcome),
    /// reported per point so the rest of the grid still completes.
    LostWorker {
        /// Port observations that did arrive.
        landed: usize,
        /// Port observations the point needed.
        expected: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Sim { port, error } => write!(f, "port {port}: {error}"),
            CampaignError::LostWorker { landed, expected } => write!(
                f,
                "worker lost: {landed} of {expected} port observations landed"
            ),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Sim { error, .. } => Some(error),
            CampaignError::LostWorker { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_topo::NodeId;

    #[test]
    fn sim_error_display_names_the_port() {
        let e = CampaignError::Sim {
            port: 3,
            error: SimError::Partitioned {
                unreachable: vec![NodeId(2)],
            },
        };
        let msg = e.to_string();
        assert!(msg.starts_with("port 3:"), "{msg}");
        assert!(msg.contains("partitioned"), "{msg}");
    }

    #[test]
    fn lost_worker_display_counts() {
        let e = CampaignError::LostWorker {
            landed: 2,
            expected: 8,
        };
        assert_eq!(
            e.to_string(),
            "worker lost: 2 of 8 port observations landed"
        );
    }
}
