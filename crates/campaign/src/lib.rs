//! # mn-campaign — the experiment-campaign engine
//!
//! Every results figure of the paper sweeps a `{topology} × {DRAM:NVM mix}
//! × {arbitration} × {workload}` grid through `mn_core::simulate`. This
//! crate owns that execution end-to-end, so the 14 `mn-bench` binaries and
//! the CLI stay declarative descriptions of *what* to run:
//!
//! - **Scheduling** — [`Campaign`] fans independent [`CampaignPoint`]s
//!   across `MN_JOBS` worker threads (plain `std::thread` + channels; the
//!   build is offline and dependency-free). Each point carries its own
//!   seed, so results are bit-identical to a serial run at any worker
//!   count, and duplicate points (shared baselines) fold into one
//!   simulation.
//! - **Caching** — a content-addressed on-disk cache ([`DiskCache`],
//!   default `results/cache/`) keyed by a stable hash of
//!   `(config, workload, requests, seed, sim-version)`. Re-running a
//!   figure, or sharing the `100%-C` chain baseline across figures, skips
//!   finished points.
//! - **Sinks** — alongside the binaries' text tables, per-point JSON-lines
//!   and CSV records ([`write_point_records`]) with metadata: cache
//!   hit/miss, host wall-clock, per-class latency stats.
//! - **Reporting** — live progress on a terminal and a closing
//!   [`CampaignSummary`] line (points done/total, cache hits, aggregate
//!   sim-throughput) on stderr.
//!
//! ## Example
//!
//! ```
//! use mn_campaign::{Campaign, CampaignPoint};
//! use mn_core::SystemConfig;
//! use mn_topo::TopologyKind;
//! use mn_workloads::Workload;
//!
//! let mut config = SystemConfig::paper_baseline(TopologyKind::Tree, 1.0).unwrap();
//! config.requests_per_port = 500;
//! let points = vec![
//!     CampaignPoint::new(config.clone(), Workload::Dct),
//!     CampaignPoint::new(config, Workload::Nw),
//! ];
//! let outcome = Campaign::new(2).quiet().run(points);
//! assert_eq!(outcome.outcomes.len(), 2);
//! assert_eq!(outcome.summary.fresh, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod campaign;
pub mod codec;
mod env;
mod error;
mod point;
mod report;
pub mod sink;

pub use cache::{cache_disabled_by_env, default_cache_dir, DiskCache};
pub use campaign::{Campaign, CampaignOutcome, PointOutcome};
pub use env::{
    env_parse, fault_rate_from_env, fault_seed_from_env, host_policy_from_env,
    host_window_from_env, jobs_from_env, trace_dir_from_env, trace_from_env,
};
pub use error::CampaignError;
pub use point::{CampaignPoint, SIM_VERSION};
pub use report::CampaignSummary;
pub use sink::{write_point_records, write_records, OutputFormat, Record, Value};
