//! Pluggable result sinks: JSON-lines and CSV emission of per-point
//! records, plus the `--format` flag every figure binary accepts.
//!
//! The text tables the binaries have always printed remain their primary,
//! human-facing output; these sinks append machine-readable per-point
//! records (with metadata: cache hit/miss, host wall-clock) for scripting
//! and plotting. Records are flat `(key, value)` rows so the same two
//! emitters also serve table-shaped binaries (`table1`, `table2`) that
//! have no simulation points.

use std::fmt;
use std::io::{self, Write};

use crate::campaign::PointOutcome;

/// A record field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string field (quoted in JSON; CSV-escaped when needed).
    Str(String),
    /// An integer field.
    Int(u64),
    /// A float field (emitted with enough digits to round-trip).
    Float(f64),
    /// A boolean field.
    Bool(bool),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One flat record: ordered `(column, value)` pairs.
pub type Record = Vec<(&'static str, Value)>;

/// The output format a figure binary was asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Text tables only (the default).
    #[default]
    Text,
    /// Text tables followed by one JSON object per point.
    Json,
    /// Text tables followed by a CSV block.
    Csv,
}

impl OutputFormat {
    /// Parses a format name.
    pub fn parse(name: &str) -> Option<OutputFormat> {
        match name {
            "text" => Some(OutputFormat::Text),
            "json" => Some(OutputFormat::Json),
            "csv" => Some(OutputFormat::Csv),
            _ => None,
        }
    }

    /// Reads `--format <text|json|csv>` (or `--format=<...>`) from the
    /// process arguments. Unknown formats or a missing value abort with a
    /// usage message — a figure run that silently ignored the flag would
    /// produce a table where a script expected records.
    pub fn from_args() -> OutputFormat {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let name = if let Some(inline) = arg.strip_prefix("--format=") {
                inline.to_string()
            } else if arg == "--format" || arg == "-f" {
                match args.next() {
                    Some(name) => name,
                    None => die_usage("missing value after --format"),
                }
            } else {
                continue;
            };
            match OutputFormat::parse(&name) {
                Some(format) => return format,
                None => die_usage(&format!("unknown format {name:?}")),
            }
        }
        OutputFormat::Text
    }
}

fn die_usage(problem: &str) -> ! {
    eprintln!("error: {problem}; expected --format <text|json|csv>");
    std::process::exit(2);
}

/// The flat record for one campaign point, shared by both emitters.
///
/// A failed point still yields a full-width record — same columns, so the
/// CSV header stays consistent — with its measurements nulled (JSON) /
/// zeroed and the `error` column carrying the failure message. Healthy
/// points have an empty `error` column.
pub fn point_record(outcome: &PointOutcome) -> Record {
    match &outcome.result {
        Ok(r) => {
            let b = &r.breakdown;
            let quantile_ns = |q| r.read_latency_quantile(q).as_ns_f64();
            // Telemetry columns are NaN (JSON null) unless the run was
            // traced — the campaign default is Off, and cache hits never
            // carry telemetry.
            let t = r.telemetry.as_ref();
            let tv = |v: Option<f64>| Value::Float(v.unwrap_or(f64::NAN));
            point_record_fields(
                outcome,
                Value::Str(r.label.clone()),
                Value::Str(r.workload.clone()),
                vec![
                    ("wall_ns", Value::Float(r.wall.as_ns_f64())),
                    ("throughput_per_us", Value::Float(r.throughput_per_us())),
                    ("reads", Value::Int(r.reads)),
                    ("writes", Value::Int(r.writes)),
                    ("to_mem_ns", Value::Float(b.to_memory.mean_ns())),
                    ("in_mem_ns", Value::Float(b.in_memory.mean_ns())),
                    ("from_mem_ns", Value::Float(b.from_memory.mean_ns())),
                    ("read_p50_ns", Value::Float(quantile_ns(0.50))),
                    ("read_p95_ns", Value::Float(quantile_ns(0.95))),
                    ("read_p99_ns", Value::Float(quantile_ns(0.99))),
                    ("row_hit_rate", Value::Float(r.row_hit_rate)),
                    ("avg_hops", Value::Float(r.avg_hops)),
                    ("energy_network_uj", Value::Float(r.energy.network.as_uj())),
                    ("energy_read_uj", Value::Float(r.energy.read.as_uj())),
                    ("energy_write_uj", Value::Float(r.energy.write.as_uj())),
                    ("jain_fairness", tv(t.map(|t| t.fairness.jain()))),
                    ("req_queue_ns", tv(t.map(|t| t.decomp.req_queue.mean_ns()))),
                    ("req_wire_ns", tv(t.map(|t| t.decomp.req_wire.mean_ns()))),
                    ("array_ns", tv(t.map(|t| t.decomp.array_ns()))),
                    (
                        "resp_queue_ns",
                        tv(t.map(|t| t.decomp.resp_queue.mean_ns())),
                    ),
                    ("resp_wire_ns", tv(t.map(|t| t.decomp.resp_wire.mean_ns()))),
                    (
                        "peak_queue_depth",
                        tv(t.map(|t| t.queue_depth.peak() as f64)),
                    ),
                    ("p99_queue_depth", tv(t.map(|t| t.queue_depth.p99() as f64))),
                    ("peak_link_util", tv(t.map(|t| t.peak_link_utilization))),
                    // Closed-loop columns: goodput is always measurable;
                    // window/mark stats need a traced closed-loop run
                    // (the host rollup rides on telemetry).
                    ("goodput_per_us", Value::Float(r.throughput_per_us())),
                    (
                        "steady_window",
                        tv(t.and_then(|t| t.host.as_ref()).map(|h| h.steady_window())),
                    ),
                    (
                        "marked_fraction",
                        tv(t.and_then(|t| t.host.as_ref()).map(|h| h.marked_fraction())),
                    ),
                ],
                String::new(),
            )
        }
        Err(e) => point_record_fields(
            outcome,
            Value::Str(outcome.point.config.label()),
            Value::Str(outcome.point.workload.label().to_string()),
            // NaN renders as null in JSON — "no measurement", distinct
            // from a measured zero — and keeps the CSV row full-width.
            vec![
                ("wall_ns", Value::Float(f64::NAN)),
                ("throughput_per_us", Value::Float(f64::NAN)),
                ("reads", Value::Int(0)),
                ("writes", Value::Int(0)),
                ("to_mem_ns", Value::Float(f64::NAN)),
                ("in_mem_ns", Value::Float(f64::NAN)),
                ("from_mem_ns", Value::Float(f64::NAN)),
                ("read_p50_ns", Value::Float(f64::NAN)),
                ("read_p95_ns", Value::Float(f64::NAN)),
                ("read_p99_ns", Value::Float(f64::NAN)),
                ("row_hit_rate", Value::Float(f64::NAN)),
                ("avg_hops", Value::Float(f64::NAN)),
                ("energy_network_uj", Value::Float(f64::NAN)),
                ("energy_read_uj", Value::Float(f64::NAN)),
                ("energy_write_uj", Value::Float(f64::NAN)),
                ("jain_fairness", Value::Float(f64::NAN)),
                ("req_queue_ns", Value::Float(f64::NAN)),
                ("req_wire_ns", Value::Float(f64::NAN)),
                ("array_ns", Value::Float(f64::NAN)),
                ("resp_queue_ns", Value::Float(f64::NAN)),
                ("resp_wire_ns", Value::Float(f64::NAN)),
                ("peak_queue_depth", Value::Float(f64::NAN)),
                ("p99_queue_depth", Value::Float(f64::NAN)),
                ("peak_link_util", Value::Float(f64::NAN)),
                ("goodput_per_us", Value::Float(f64::NAN)),
                ("steady_window", Value::Float(f64::NAN)),
                ("marked_fraction", Value::Float(f64::NAN)),
            ],
            e.to_string(),
        ),
    }
}

/// Assembles the fixed column order shared by the success and error arms,
/// so the two can never drift apart and split a CSV header.
fn point_record_fields(
    outcome: &PointOutcome,
    label: Value,
    workload: Value,
    measurements: Vec<(&'static str, Value)>,
    error: String,
) -> Record {
    let mut record = vec![("label", label), ("workload", workload)];
    record.extend(measurements);
    record.extend([
        (
            "requests_per_port",
            Value::Int(outcome.point.config.requests_per_port),
        ),
        ("seed", Value::Int(outcome.point.config.seed)),
        ("cached", Value::Bool(outcome.cached)),
        ("host_ms", Value::Float(outcome.host.as_secs_f64() * 1e3)),
        ("error", Value::Str(error)),
    ]);
    record
}

/// Writes `records` to `w` in `format`; [`OutputFormat::Text`] writes
/// nothing (the caller's tables are the text output).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_records<W: Write>(
    w: &mut W,
    format: OutputFormat,
    records: &[Record],
) -> io::Result<()> {
    match format {
        OutputFormat::Text => Ok(()),
        OutputFormat::Json => {
            for record in records {
                let fields: Vec<String> = record
                    .iter()
                    .map(|(key, value)| match value {
                        Value::Str(s) => format!("{}:{}", json_string(key), json_string(s)),
                        Value::Float(x) if !x.is_finite() => {
                            format!("{}:null", json_string(key))
                        }
                        other => format!("{}:{}", json_string(key), other),
                    })
                    .collect();
                writeln!(w, "{{{}}}", fields.join(","))?;
            }
            Ok(())
        }
        OutputFormat::Csv => {
            let Some(first) = records.first() else {
                return Ok(());
            };
            let header: Vec<&str> = first.iter().map(|(key, _)| *key).collect();
            writeln!(w, "{}", header.join(","))?;
            for record in records {
                let row: Vec<String> = record
                    .iter()
                    .map(|(_, value)| match value {
                        Value::Str(s) => csv_field(s),
                        other => other.to_string(),
                    })
                    .collect();
                writeln!(w, "{}", row.join(","))?;
            }
            Ok(())
        }
    }
}

/// Convenience: per-point records for a whole campaign, to stdout.
///
/// # Errors
///
/// Propagates I/O errors from stdout.
pub fn write_point_records(format: OutputFormat, outcomes: &[PointOutcome]) -> io::Result<()> {
    let records: Vec<Record> = outcomes.iter().map(point_record).collect();
    write_records(&mut std::io::stdout().lock(), format, &records)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            vec![
                ("label", Value::Str("50%-T (NVM-L)".into())),
                ("wall_ns", Value::Float(1234.5)),
                ("reads", Value::Int(10)),
                ("cached", Value::Bool(true)),
            ],
            vec![
                ("label", Value::Str("a,b\"c".into())),
                ("wall_ns", Value::Float(8.0)),
                ("reads", Value::Int(2)),
                ("cached", Value::Bool(false)),
            ],
        ]
    }

    #[test]
    fn json_lines_shape() {
        let mut out = Vec::new();
        write_records(&mut out, OutputFormat::Json, &sample_records()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"label\":\"50%-T (NVM-L)\""));
        assert!(lines[0].contains("\"cached\":true"));
        assert!(lines[1].contains("\"label\":\"a,b\\\"c\""));
    }

    #[test]
    fn csv_shape_and_escaping() {
        let mut out = Vec::new();
        write_records(&mut out, OutputFormat::Csv, &sample_records()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "label,wall_ns,reads,cached");
        assert_eq!(lines[1], "50%-T (NVM-L),1234.5,10,true");
        assert_eq!(lines[2], "\"a,b\"\"c\",8,2,false");
    }

    #[test]
    fn text_format_writes_nothing() {
        let mut out = Vec::new();
        write_records(&mut out, OutputFormat::Text, &sample_records()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn failed_points_keep_the_same_columns() {
        use crate::error::CampaignError;
        use crate::point::CampaignPoint;
        use mn_core::{SimError, SystemConfig};
        use mn_topo::TopologyKind;
        use mn_workloads::Workload;

        let mut config = SystemConfig::paper_baseline(TopologyKind::Tree, 1.0).unwrap();
        config.requests_per_port = 150;
        let point = CampaignPoint::new(config, Workload::Nw);
        let result = mn_core::simulate(&point.config, point.workload);

        let ok = PointOutcome {
            point: point.clone(),
            result: Ok(result),
            cached: false,
            host: std::time::Duration::from_millis(1),
        };
        let failed = PointOutcome {
            point,
            result: Err(CampaignError::Sim {
                port: 0,
                error: SimError::Partitioned {
                    unreachable: vec![mn_topo::NodeId(3)],
                },
            }),
            cached: false,
            host: std::time::Duration::ZERO,
        };

        let ok_record = point_record(&ok);
        let err_record = point_record(&failed);
        let columns = |r: &Record| r.iter().map(|(k, _)| *k).collect::<Vec<_>>();
        assert_eq!(columns(&ok_record), columns(&err_record));

        let field = |r: &Record, k: &str| r.iter().find(|(key, _)| *key == k).unwrap().1.clone();
        assert_eq!(field(&ok_record, "error"), Value::Str(String::new()));
        let Value::Str(msg) = field(&err_record, "error") else {
            panic!("error column should be a string");
        };
        assert!(msg.contains("partitioned"), "{msg}");
        assert_eq!(field(&err_record, "label"), Value::Str("100%-T".into()));

        // Both shapes emit cleanly: error rows become null-measurement
        // JSON lines and full-width CSV rows under the shared header.
        let records = vec![ok_record, err_record];
        let mut json = Vec::new();
        write_records(&mut json, OutputFormat::Json, &records).unwrap();
        let json = String::from_utf8(json).unwrap();
        assert!(json.lines().nth(1).unwrap().contains("\"wall_ns\":null"));
        let mut csv = Vec::new();
        write_records(&mut csv, OutputFormat::Csv, &records).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        let header_fields = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), header_fields, "{line}");
        }
    }

    #[test]
    fn traced_results_fill_telemetry_columns() {
        use crate::point::CampaignPoint;
        use mn_core::SystemConfig;
        use mn_topo::TopologyKind;
        use mn_workloads::Workload;

        let mut config = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
        config.requests_per_port = 150;
        config.noc.trace = mn_core::TraceConfig::Counters;
        let point = CampaignPoint::new(config, Workload::Dct);
        let result = mn_core::simulate(&point.config, point.workload);
        let outcome = PointOutcome {
            point,
            result: Ok(result),
            cached: false,
            host: std::time::Duration::ZERO,
        };
        let record = point_record(&outcome);
        let field = |k: &str| {
            record
                .iter()
                .find(|(key, _)| *key == k)
                .unwrap_or_else(|| panic!("column {k}"))
                .1
                .clone()
        };
        for col in [
            "jain_fairness",
            "req_queue_ns",
            "req_wire_ns",
            "array_ns",
            "resp_queue_ns",
            "resp_wire_ns",
            "peak_queue_depth",
            "p99_queue_depth",
            "peak_link_util",
        ] {
            let Value::Float(x) = field(col) else {
                panic!("{col} should be a float");
            };
            assert!(x.is_finite(), "{col} = {x}");
        }
        let Value::Float(jain) = field("jain_fairness") else {
            unreachable!()
        };
        assert!(jain > 0.0 && jain <= 1.0, "jain {jain}");
    }

    #[test]
    fn closed_loop_runs_fill_host_columns() {
        use crate::point::CampaignPoint;
        use mn_core::SystemConfig;
        use mn_topo::TopologyKind;
        use mn_workloads::Workload;

        let mut config = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
        config.requests_per_port = 150;
        config.noc.trace = mn_core::TraceConfig::Counters;
        config.noc.ecn_threshold = 4;
        config.host.policy = mn_core::WindowPolicyKind::Ecn;
        let point = CampaignPoint::new(config, Workload::Dct);
        let result = mn_core::simulate(&point.config, point.workload);
        let outcome = PointOutcome {
            point,
            result: Ok(result),
            cached: false,
            host: std::time::Duration::ZERO,
        };
        let record = point_record(&outcome);
        let field = |k: &str| {
            record
                .iter()
                .find(|(key, _)| *key == k)
                .unwrap_or_else(|| panic!("column {k}"))
                .1
                .clone()
        };
        let Value::Float(goodput) = field("goodput_per_us") else {
            panic!("goodput should be a float");
        };
        assert!(goodput > 0.0, "goodput {goodput}");
        let Value::Float(steady) = field("steady_window") else {
            panic!("steady_window should be a float");
        };
        assert!(steady >= 1.0, "steady window {steady}");
        let Value::Float(marked) = field("marked_fraction") else {
            panic!("marked_fraction should be a float");
        };
        assert!((0.0..=1.0).contains(&marked), "marked {marked}");

        // Open-loop traced runs still report goodput but no window stats.
        let mut open = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
        open.requests_per_port = 150;
        open.noc.trace = mn_core::TraceConfig::Counters;
        let point = CampaignPoint::new(open, Workload::Dct);
        let result = mn_core::simulate(&point.config, point.workload);
        let outcome = PointOutcome {
            point,
            result: Ok(result),
            cached: false,
            host: std::time::Duration::ZERO,
        };
        let record = point_record(&outcome);
        let steady = record
            .iter()
            .find(|(key, _)| *key == "steady_window")
            .unwrap()
            .1
            .clone();
        let Value::Float(steady) = steady else {
            panic!("steady_window should be a float");
        };
        assert!(steady.is_nan(), "open loop has no window series");
    }

    #[test]
    fn format_parsing() {
        assert_eq!(OutputFormat::parse("json"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::parse("csv"), Some(OutputFormat::Csv));
        assert_eq!(OutputFormat::parse("text"), Some(OutputFormat::Text));
        assert_eq!(OutputFormat::parse("yaml"), None);
    }
}
