//! Grid points and their stable content-addressed identity.
//!
//! A [`CampaignPoint`] is one independent unit of work: a fully specified
//! [`SystemConfig`] plus the [`Workload`] to drive through it. Its
//! [fingerprint](CampaignPoint::fingerprint) canonically serializes every
//! field that can influence the simulation outcome (including the RNG seed
//! and the simulator version), so two points hash equal exactly when their
//! results must be bit-identical. The cache and the deduplicating
//! scheduler both key on that fingerprint.

use mn_core::SystemConfig;
use mn_host::HostConfig;
use mn_noc::{FaultConfig, LinkTiming, NocConfig};
use mn_workloads::Workload;

/// Simulator behavior version. Bump whenever any crate changes what
/// `mn_core::simulate` computes for a given configuration, so stale cache
/// entries from older binaries can never be served.
pub const SIM_VERSION: u32 = 1;

/// One independent experiment: a configuration and a workload.
///
/// The point carries its own seed inside `config.seed`; the scheduler
/// never shares RNG state between points, which is what makes parallel
/// execution bit-identical to serial execution.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    /// The complete system configuration to simulate.
    pub config: SystemConfig,
    /// The workload proxy to drive through it.
    pub workload: Workload,
}

impl CampaignPoint {
    /// Creates a point.
    pub fn new(config: SystemConfig, workload: Workload) -> CampaignPoint {
        CampaignPoint { config, workload }
    }

    /// The canonical description of everything that determines this
    /// point's result. Floats are rendered via their bit patterns so the
    /// encoding is exact, and the [`SystemConfig`] is destructured
    /// exhaustively so adding a field without extending the fingerprint
    /// fails to compile.
    pub fn fingerprint(&self) -> String {
        let SystemConfig {
            ports,
            total_capacity_gb,
            dram_fraction,
            nvm_placement,
            topology,
            noc,
            host,
            write_burst_routing,
            banks_per_quadrant,
            controller_queue,
            interleave_bytes,
            window,
            host_write_buffer,
            requests_per_port,
            simulated_ports,
            reference_ports,
            seed,
            // The watchdog only decides how a broken run *fails* (error
            // vs. hang); it never changes what a completed run computes,
            // so it stays out of the fingerprint (see SystemConfig docs).
            watchdog_limit: _,
        } = &self.config;
        let NocConfig {
            control_bytes,
            data_bytes,
            external_link,
            interposer_link,
            buffer_packets,
            ejection_packets,
            arbiter,
            duplex,
            transport_pj_per_bit_hop,
            fault,
            ecn_threshold,
            // Telemetry is purely observational: it never changes the
            // event stream or any simulated quantity (enforced by test),
            // so traced and untraced runs of the same point share a
            // cache entry and the committed cache keys stay stable.
            trace: _,
        } = noc;
        let link = |l: &LinkTiming| format!("{}+{}ps", l.ps_per_byte, l.fixed_latency.as_ps());
        let base = format!(
            "mncube-sim-v{SIM_VERSION};pkg={pkg};wl={wl};ports={ports};cap={total_capacity_gb};\
             dram={dram:016x};nvmp={nvm_placement:?};topo={topology:?};wbr={write_burst_routing};\
             bpq={banks_per_quadrant};cq={controller_queue};il={interleave_bytes};win={window};\
             hwb={host_write_buffer};req={requests_per_port};simp={simulated_ports};\
             refp={reference_ports};seed={seed:016x};noc=ctl{control_bytes}/data{data_bytes}/\
             ext{ext}/int{int}/buf{buffer_packets}/ej{ejection_packets}/arb{arbiter:?}/\
             dup{duplex:?}/tpj{tpj:016x}",
            pkg = env!("CARGO_PKG_VERSION"),
            wl = self.workload.label(),
            dram = dram_fraction.to_bits(),
            ext = link(external_link),
            int = link(interposer_link),
            tpj = transport_pj_per_bit_hop.to_bits(),
        );
        // Conditional features extend the fingerprint only when enabled,
        // so every default fingerprint — and with it the committed result
        // cache and the pinned golden cache keys — is unchanged. Each
        // suffix below composes in a fixed order: fault, then ECN, then
        // the closed-loop host model.
        let mut out = base;
        if fault.enabled() {
            let FaultConfig {
                transient_rate,
                degrade_rate,
                link_kill_rate,
                retry_limit,
                retry_backoff,
                seed: fault_seed,
            } = fault;
            out = format!(
                "{out};fault=tr{tr:016x}/dr{dr:016x}/kr{kr:016x}/rl{retry_limit}/\
                 bo{bo}ps/fs{fault_seed:016x}",
                tr = transient_rate.to_bits(),
                dr = degrade_rate.to_bits(),
                kr = link_kill_rate.to_bits(),
                bo = retry_backoff.as_ps(),
            );
        }
        // ECN marking changes packet contents (and the closed loop's
        // behavior) whenever the threshold is nonzero, independent of the
        // host policy — fingerprint it on its own switch.
        if *ecn_threshold != 0 {
            out = format!("{out};ecn={ecn_threshold}");
        }
        // Host-model parameters join only when the closed loop actually
        // gates injection (the fault-model discipline): the open-loop
        // default ignores every host knob.
        if host.enabled() {
            let HostConfig {
                policy,
                window_cap,
                initial_window,
                target_rtt,
            } = host;
            out = format!(
                "{out};host=po{policy}/cap{window_cap}/iw{initial_window}/rtt{rtt}ps",
                rtt = target_rtt.as_ps(),
            );
        }
        out
    }

    /// The content-address of this point: 16 hex digits of FNV-1a over the
    /// fingerprint. Used as the cache file name; the full fingerprint is
    /// stored alongside the result and re-checked on load, so a hash
    /// collision degrades to a cache miss, never to a wrong result.
    pub fn cache_key(&self) -> String {
        format!("{:016x}", fnv1a64(self.fingerprint().as_bytes()))
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_topo::TopologyKind;

    fn point() -> CampaignPoint {
        CampaignPoint::new(
            SystemConfig::paper_baseline(TopologyKind::Tree, 0.5).unwrap(),
            Workload::Dct,
        )
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = point();
        let b = point();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.cache_key().len(), 16);

        let mut c = point();
        c.config.seed ^= 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = point();
        d.config.requests_per_port += 1;
        assert_ne!(a.cache_key(), d.cache_key());
        let mut e = point();
        e.workload = Workload::Nw;
        assert_ne!(a.cache_key(), e.cache_key());
    }

    #[test]
    fn fingerprint_covers_noc_knobs() {
        let a = point();
        let mut b = point();
        b.config.noc.arbiter = mn_noc::ArbiterKind::Distance;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = point();
        c.config.noc.external_link.ps_per_byte += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn disabled_faults_leave_the_fingerprint_alone() {
        let a = point();
        let mut b = point();
        // With every rate at zero the model never engages, so knobs that
        // only matter under faults (seed, retry policy) must not perturb
        // the fingerprint — the committed cache depends on this.
        b.config.noc.fault.seed = 0xDEAD_BEEF;
        b.config.noc.fault.retry_limit = 2;
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(!a.fingerprint().contains(";fault="));
    }

    #[test]
    fn enabled_faults_extend_the_fingerprint() {
        let mut a = point();
        a.config.noc.fault.transient_rate = 0.01;
        assert_ne!(point().fingerprint(), a.fingerprint());
        assert!(a.fingerprint().contains(";fault="));

        let mut b = a.clone();
        b.config.noc.fault.seed ^= 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.config.noc.fault.transient_rate = 0.02;
        assert_ne!(a.cache_key(), c.cache_key());
        let mut d = a.clone();
        d.config.noc.fault.retry_limit += 1;
        assert_ne!(a.cache_key(), d.cache_key());
    }

    #[test]
    fn disabled_host_leaves_the_fingerprint_alone() {
        let a = point();
        let mut b = point();
        // With the open-loop policy the gate never engages, so knobs that
        // only matter under a closed loop must not perturb the
        // fingerprint — the committed cache depends on this.
        b.config.host.window_cap = 7;
        b.config.host.initial_window = 3;
        b.config.host.target_rtt = mn_sim::SimDuration::from_ns(1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(!a.fingerprint().contains(";host="));
        assert!(!a.fingerprint().contains(";ecn="));
    }

    #[test]
    fn enabled_host_extends_the_fingerprint() {
        let mut a = point();
        a.config.host.policy = mn_core::WindowPolicyKind::Aimd;
        assert_ne!(point().fingerprint(), a.fingerprint());
        assert!(a.fingerprint().contains(";host=poaimd/"));

        let mut b = a.clone();
        b.config.host.policy = mn_core::WindowPolicyKind::Fixed(4);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.config.host.window_cap += 1;
        assert_ne!(a.cache_key(), c.cache_key());
        let mut d = a.clone();
        d.config.host.initial_window += 1;
        assert_ne!(a.cache_key(), d.cache_key());
        let mut e = a.clone();
        e.config.host.target_rtt = mn_sim::SimDuration::from_ns(999);
        assert_ne!(a.cache_key(), e.cache_key());
    }

    #[test]
    fn ecn_threshold_is_fingerprinted_when_nonzero() {
        // ECN marking alters packet contents regardless of the host
        // policy, so it fingerprints on its own switch.
        let a = point();
        let mut b = point();
        b.config.noc.ecn_threshold = 4;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(b.fingerprint().contains(";ecn=4"));
        let mut c = point();
        c.config.noc.ecn_threshold = 5;
        assert_ne!(b.cache_key(), c.cache_key());
    }

    #[test]
    fn trace_mode_is_not_fingerprinted() {
        // Telemetry observes without perturbing, so a traced run may be
        // served from (and write to) the same cache entry as an
        // untraced one.
        let a = point();
        let mut b = point();
        b.config.noc.trace = mn_noc::TraceConfig::Full;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn watchdog_limit_is_not_fingerprinted() {
        let a = point();
        let mut b = point();
        b.config.watchdog_limit *= 2;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a 64 test vector.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
