//! Grid points and their stable content-addressed identity.
//!
//! A [`CampaignPoint`] is one independent unit of work: a fully specified
//! [`SystemConfig`] plus the [`Workload`] to drive through it. Its
//! [fingerprint](CampaignPoint::fingerprint) canonically serializes every
//! field that can influence the simulation outcome (including the RNG seed
//! and the simulator version), so two points hash equal exactly when their
//! results must be bit-identical. The cache and the deduplicating
//! scheduler both key on that fingerprint.

use mn_core::SystemConfig;
use mn_noc::{LinkTiming, NocConfig};
use mn_workloads::Workload;

/// Simulator behavior version. Bump whenever any crate changes what
/// `mn_core::simulate` computes for a given configuration, so stale cache
/// entries from older binaries can never be served.
pub const SIM_VERSION: u32 = 1;

/// One independent experiment: a configuration and a workload.
///
/// The point carries its own seed inside `config.seed`; the scheduler
/// never shares RNG state between points, which is what makes parallel
/// execution bit-identical to serial execution.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    /// The complete system configuration to simulate.
    pub config: SystemConfig,
    /// The workload proxy to drive through it.
    pub workload: Workload,
}

impl CampaignPoint {
    /// Creates a point.
    pub fn new(config: SystemConfig, workload: Workload) -> CampaignPoint {
        CampaignPoint { config, workload }
    }

    /// The canonical description of everything that determines this
    /// point's result. Floats are rendered via their bit patterns so the
    /// encoding is exact, and the [`SystemConfig`] is destructured
    /// exhaustively so adding a field without extending the fingerprint
    /// fails to compile.
    pub fn fingerprint(&self) -> String {
        let SystemConfig {
            ports,
            total_capacity_gb,
            dram_fraction,
            nvm_placement,
            topology,
            noc,
            write_burst_routing,
            banks_per_quadrant,
            controller_queue,
            interleave_bytes,
            window,
            host_write_buffer,
            requests_per_port,
            simulated_ports,
            reference_ports,
            seed,
        } = &self.config;
        let NocConfig {
            control_bytes,
            data_bytes,
            external_link,
            interposer_link,
            buffer_packets,
            ejection_packets,
            arbiter,
            duplex,
            transport_pj_per_bit_hop,
        } = noc;
        let link = |l: &LinkTiming| format!("{}+{}ps", l.ps_per_byte, l.fixed_latency.as_ps());
        format!(
            "mncube-sim-v{SIM_VERSION};pkg={pkg};wl={wl};ports={ports};cap={total_capacity_gb};\
             dram={dram:016x};nvmp={nvm_placement:?};topo={topology:?};wbr={write_burst_routing};\
             bpq={banks_per_quadrant};cq={controller_queue};il={interleave_bytes};win={window};\
             hwb={host_write_buffer};req={requests_per_port};simp={simulated_ports};\
             refp={reference_ports};seed={seed:016x};noc=ctl{control_bytes}/data{data_bytes}/\
             ext{ext}/int{int}/buf{buffer_packets}/ej{ejection_packets}/arb{arbiter:?}/\
             dup{duplex:?}/tpj{tpj:016x}",
            pkg = env!("CARGO_PKG_VERSION"),
            wl = self.workload.label(),
            dram = dram_fraction.to_bits(),
            ext = link(external_link),
            int = link(interposer_link),
            tpj = transport_pj_per_bit_hop.to_bits(),
        )
    }

    /// The content-address of this point: 16 hex digits of FNV-1a over the
    /// fingerprint. Used as the cache file name; the full fingerprint is
    /// stored alongside the result and re-checked on load, so a hash
    /// collision degrades to a cache miss, never to a wrong result.
    pub fn cache_key(&self) -> String {
        format!("{:016x}", fnv1a64(self.fingerprint().as_bytes()))
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_topo::TopologyKind;

    fn point() -> CampaignPoint {
        CampaignPoint::new(
            SystemConfig::paper_baseline(TopologyKind::Tree, 0.5).unwrap(),
            Workload::Dct,
        )
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = point();
        let b = point();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.cache_key().len(), 16);

        let mut c = point();
        c.config.seed ^= 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = point();
        d.config.requests_per_port += 1;
        assert_ne!(a.cache_key(), d.cache_key());
        let mut e = point();
        e.workload = Workload::Nw;
        assert_ne!(a.cache_key(), e.cache_key());
    }

    #[test]
    fn fingerprint_covers_noc_knobs() {
        let a = point();
        let mut b = point();
        b.config.noc.arbiter = mn_noc::ArbiterKind::Distance;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = point();
        c.config.noc.external_link.ps_per_byte += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a 64 test vector.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
