//! Progress and summary reporting, on stderr so it never pollutes the
//! figure tables or the JSON/CSV record streams on stdout.

use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

/// What one campaign run did, in aggregate. Returned as data (the tests
/// assert on it) and rendered as the closing stderr line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Points submitted, including duplicates of shared baselines.
    pub total: usize,
    /// Distinct points actually executed (duplicates are folded).
    pub unique: usize,
    /// Unique points served from the on-disk cache.
    pub cache_hits: usize,
    /// Unique points freshly simulated.
    pub fresh: usize,
    /// Unique points that produced an error record instead of a result
    /// (partitioned by fault injection, stalled, or lost to a dead
    /// worker). Always `<= fresh`: failures are never served from cache.
    pub failed: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Host wall-clock for the whole run.
    pub host_wall: Duration,
    /// Memory requests completed by fresh simulations.
    pub fresh_requests: u64,
}

impl CampaignSummary {
    /// Fresh-simulated requests per host-second — the aggregate
    /// simulation throughput the scheduler achieved.
    pub fn sim_throughput_per_sec(&self) -> f64 {
        let secs = self.host_wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.fresh_requests as f64 / secs
        }
    }

    /// The one-line human rendering.
    pub fn line(&self) -> String {
        let failed = if self.failed == 0 {
            String::new()
        } else {
            format!(", {} FAILED", self.failed)
        };
        format!(
            "campaign: {}/{} points in {:.2} s — {} cached, {} simulated{failed}, \
             {} worker{}, {:.0} req/s",
            self.total,
            self.total,
            self.host_wall.as_secs_f64(),
            self.cache_hits,
            self.fresh,
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
            self.sim_throughput_per_sec(),
        )
    }
}

/// Live progress on a terminal; a single summary line otherwise.
pub(crate) struct Progress {
    total: usize,
    done: usize,
    hits: usize,
    start: Instant,
    live: bool,
    quiet: bool,
}

impl Progress {
    pub(crate) fn new(total: usize, quiet: bool) -> Progress {
        Progress {
            total,
            done: 0,
            hits: 0,
            start: Instant::now(),
            live: !quiet && std::io::stderr().is_terminal(),
            quiet,
        }
    }

    pub(crate) fn started(&self) -> Instant {
        self.start
    }

    pub(crate) fn tick(&mut self, cached: bool) {
        self.done += 1;
        self.hits += usize::from(cached);
        if self.live {
            let mut err = std::io::stderr().lock();
            let _ = write!(
                err,
                "\rcampaign: {}/{} points ({} cached, {:.1} s)  ",
                self.done,
                self.total,
                self.hits,
                self.start.elapsed().as_secs_f64(),
            );
            let _ = err.flush();
        }
    }

    pub(crate) fn finish(&self, summary: &CampaignSummary) {
        if self.live {
            eprint!("\r{:<60}\r", "");
        }
        if !self.quiet {
            eprintln!("{}", summary.line());
        }
    }
}
