//! Lossless, dependency-free serialization of [`RunResult`].
//!
//! The cache must round-trip results *exactly* — a cached point has to be
//! indistinguishable from a freshly simulated one — so floats are encoded
//! by bit pattern and the statistics types through their raw parts, in a
//! line-oriented `key=value` text format. Human-facing JSON/CSV output
//! lives in [`crate::sink`]; this module is only for machine round-trips
//! (and for the determinism tests, which compare encoded strings).

use mn_core::{EnergyBreakdown, LatencyBreakdown, RunResult};
use mn_mem::EnergyPj;
use mn_sim::{Accumulator, Histogram, SimTime};

/// Encodes a result exactly. The output is stable across runs and
/// platforms: equal strings if and only if the results are bit-identical.
///
/// The telemetry rollup is deliberately **not** encoded: it is purely
/// observational, regenerable by re-running the point with tracing on
/// (and the cache off), and excluding it keeps traced and untraced runs
/// of the same point byte-identical here — which is what lets them
/// share one cache entry (the fingerprint excludes the trace mode).
pub fn encode_result(result: &RunResult) -> String {
    let acc = |a: &Accumulator| {
        let (sum, count, min, max) = a.raw_parts();
        format!("{sum},{count},{min},{max}")
    };
    let hist: Vec<String> = result
        .read_latency
        .bucket_counts()
        .iter()
        .map(u64::to_string)
        .collect();
    format!(
        "label={}\nworkload={}\nwall_ps={}\nto_mem={}\nin_mem={}\nfrom_mem={}\n\
         energy={:016x},{:016x},{:016x}\nreads={}\nwrites={}\nrow_hit_rate={:016x}\n\
         avg_hops={:016x}\nhist={}\n",
        result.label,
        result.workload,
        result.wall.as_ps(),
        acc(&result.breakdown.to_memory),
        acc(&result.breakdown.in_memory),
        acc(&result.breakdown.from_memory),
        result.energy.network.as_pj().to_bits(),
        result.energy.read.as_pj().to_bits(),
        result.energy.write.as_pj().to_bits(),
        result.reads,
        result.writes,
        result.row_hit_rate.to_bits(),
        result.avg_hops.to_bits(),
        hist.join(","),
    )
}

/// Decodes [`encode_result`] output. Returns `None` on any malformed or
/// incomplete input (the cache treats that as a miss).
pub fn decode_result(text: &str) -> Option<RunResult> {
    let mut label = None;
    let mut workload = None;
    let mut wall = None;
    let mut to_mem = None;
    let mut in_mem = None;
    let mut from_mem = None;
    let mut energy = None;
    let mut reads = None;
    let mut writes = None;
    let mut row_hit_rate = None;
    let mut avg_hops = None;
    let mut hist = None;

    for line in text.lines() {
        let (key, value) = line.split_once('=')?;
        match key {
            "label" => label = Some(value.to_string()),
            "workload" => workload = Some(value.to_string()),
            "wall_ps" => wall = Some(SimTime::from_ps(value.parse().ok()?)),
            "to_mem" => to_mem = Some(parse_acc(value)?),
            "in_mem" => in_mem = Some(parse_acc(value)?),
            "from_mem" => from_mem = Some(parse_acc(value)?),
            "energy" => {
                let mut parts = value.split(',');
                let mut next = || parse_f64_bits(parts.next()?);
                energy = Some(EnergyBreakdown {
                    network: EnergyPj::from_pj(next()?),
                    read: EnergyPj::from_pj(next()?),
                    write: EnergyPj::from_pj(next()?),
                });
            }
            "reads" => reads = Some(value.parse().ok()?),
            "writes" => writes = Some(value.parse().ok()?),
            "row_hit_rate" => row_hit_rate = Some(parse_f64_bits(value)?),
            "avg_hops" => avg_hops = Some(parse_f64_bits(value)?),
            "hist" => {
                let counts: Option<Vec<u64>> = value.split(',').map(|c| c.parse().ok()).collect();
                hist = Some(Histogram::from_bucket_counts(&counts?));
            }
            _ => return None,
        }
    }

    Some(RunResult {
        label: label?,
        workload: workload?,
        wall: wall?,
        breakdown: LatencyBreakdown {
            to_memory: to_mem?,
            in_memory: in_mem?,
            from_memory: from_mem?,
        },
        energy: energy?,
        reads: reads?,
        writes: writes?,
        row_hit_rate: row_hit_rate?,
        avg_hops: avg_hops?,
        read_latency: hist?,
        // Telemetry is never cached (see encode_result): a cache hit
        // reports the simulated result without the observational rollup.
        telemetry: None,
    })
}

fn parse_acc(value: &str) -> Option<Accumulator> {
    let mut parts = value.split(',');
    let sum: u128 = parts.next()?.parse().ok()?;
    let count: u64 = parts.next()?.parse().ok()?;
    let min: u64 = parts.next()?.parse().ok()?;
    let max: u64 = parts.next()?.parse().ok()?;
    parts
        .next()
        .is_none()
        .then(|| Accumulator::from_raw_parts(sum, count, min, max))
}

fn parse_f64_bits(value: &str) -> Option<f64> {
    Some(f64::from_bits(u64::from_str_radix(value, 16).ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_sim::SimDuration;

    fn sample() -> RunResult {
        let mut breakdown = LatencyBreakdown::default();
        breakdown.to_memory.record(SimDuration::from_ns(60));
        breakdown.in_memory.record(SimDuration::from_ns(20));
        breakdown.from_memory.record(SimDuration::from_ns(21));
        let mut read_latency = Histogram::new();
        read_latency.record(SimDuration::from_ns(101));
        read_latency.record(SimDuration::from_us(3));
        RunResult {
            label: "50%-T (NVM-L)".into(),
            workload: "DCT".into(),
            wall: SimTime::from_ps(123_456_789),
            breakdown,
            energy: EnergyBreakdown {
                network: EnergyPj::from_pj(10.5),
                read: EnergyPj::from_pj(0.125),
                write: EnergyPj::from_pj(7.75),
            },
            reads: 4321,
            writes: 1234,
            row_hit_rate: 0.625,
            avg_hops: 3.875,
            read_latency,
            telemetry: None,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let original = sample();
        let decoded = decode_result(&encode_result(&original)).expect("decodes");
        assert_eq!(encode_result(&decoded), encode_result(&original));
        assert_eq!(decoded.label, original.label);
        assert_eq!(decoded.wall, original.wall);
        assert_eq!(decoded.reads, original.reads);
        assert_eq!(
            decoded.row_hit_rate.to_bits(),
            original.row_hit_rate.to_bits()
        );
        assert_eq!(
            decoded.read_latency.quantile(0.5),
            original.read_latency.quantile(0.5)
        );
        assert_eq!(
            decoded.breakdown.to_memory.raw_parts(),
            original.breakdown.to_memory.raw_parts()
        );
    }

    #[test]
    fn telemetry_does_not_change_the_encoding() {
        // Traced and untraced runs of one point must share a cache
        // entry; the observational rollup stays out of the codec.
        let plain = sample();
        let mut traced = sample();
        traced.telemetry = Some(mn_core::TelemetrySummary::default());
        assert_eq!(encode_result(&plain), encode_result(&traced));
        let decoded = decode_result(&encode_result(&traced)).expect("decodes");
        assert!(decoded.telemetry.is_none());
    }

    #[test]
    fn malformed_input_is_none() {
        assert!(decode_result("").is_none());
        assert!(decode_result("label=x").is_none());
        let mut truncated = encode_result(&sample());
        truncated.truncate(truncated.len() / 2);
        // Either a parse failure or a missing field: never a panic.
        let _ = decode_result(&truncated);
        assert!(decode_result(&encode_result(&sample()).replace("reads=", "rodas=")).is_none());
    }
}
