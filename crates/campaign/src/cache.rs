//! The content-addressed on-disk result cache.
//!
//! Layout: one file per point under the cache directory (default
//! `results/cache/`, override with `MN_CACHE_DIR`, disable with
//! `MN_CACHE=off`), named by the point's 16-hex-digit
//! [cache key](crate::CampaignPoint::cache_key):
//!
//! ```text
//! results/cache/
//!   1f2e3d4c5b6a7980.mnres
//! ```
//!
//! Each file stores a version header, the full fingerprint, and the
//! exactly-encoded result. Loads re-verify both the header and the
//! fingerprint, so version skew or a hash collision degrades to a cache
//! miss instead of a wrong result. Stores write to a temporary sibling and
//! `rename` into place, which keeps concurrent writers (parallel workers,
//! or two figure binaries sharing the chain baseline) from ever exposing a
//! torn file.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mn_core::RunResult;

use crate::codec::{decode_result, encode_result};
use crate::point::CampaignPoint;

const HEADER: &str = "mncampaign-cache v1";

/// The default cache directory, honoring `MN_CACHE_DIR`.
pub fn default_cache_dir() -> PathBuf {
    match std::env::var("MN_CACHE_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("results/cache"),
    }
}

/// True when `MN_CACHE` asks for caching to be disabled entirely.
pub fn cache_disabled_by_env() -> bool {
    matches!(
        std::env::var("MN_CACHE").as_deref(),
        Ok("0") | Ok("off") | Ok("no") | Ok("false")
    )
}

/// A directory of finished results, keyed by point fingerprint.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    tmp_counter: AtomicU64,
}

impl DiskCache {
    /// Opens (lazily — nothing is created until the first store) a cache
    /// rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> DiskCache {
        DiskCache {
            dir: dir.into(),
            tmp_counter: AtomicU64::new(0),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, point: &CampaignPoint) -> PathBuf {
        self.dir.join(format!("{}.mnres", point.cache_key()))
    }

    /// Loads the finished result for `point`, or `None` on a miss (absent,
    /// corrupt, version-skewed, or fingerprint-mismatched entry).
    pub fn load(&self, point: &CampaignPoint) -> Option<RunResult> {
        let text = fs::read_to_string(self.entry_path(point)).ok()?;
        let mut lines = text.splitn(3, '\n');
        if lines.next()? != HEADER {
            return None;
        }
        let key_line = lines.next()?;
        if key_line.strip_prefix("key=")? != point.fingerprint() {
            return None;
        }
        decode_result(lines.next()?)
    }

    /// Stores a finished result atomically (write-to-temp + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers treat a failed store as
    /// "uncached" rather than fatal.
    pub fn store(&self, point: &CampaignPoint, result: &RunResult) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let body = format!(
            "{HEADER}\nkey={}\n{}",
            point.fingerprint(),
            encode_result(result)
        );
        // Unique per process *and* per call, so parallel workers never
        // share a temp file.
        let tmp = self.dir.join(format!(
            ".{}.{}.{}.tmp",
            point.cache_key(),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, body)?;
        fs::rename(&tmp, self.entry_path(point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_core::SystemConfig;
    use mn_topo::TopologyKind;
    use mn_workloads::Workload;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mncampaign-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_point() -> CampaignPoint {
        let mut config = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
        config.requests_per_port = 200;
        CampaignPoint::new(config, Workload::Nw)
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = scratch_dir("roundtrip");
        let cache = DiskCache::new(&dir);
        let point = tiny_point();
        assert!(cache.load(&point).is_none());

        let result = mn_core::simulate(&point.config, point.workload);
        cache.store(&point, &result).unwrap();
        let loaded = cache.load(&point).expect("hit");
        assert_eq!(encode_result(&loaded), encode_result(&result));

        // A different seed is a different point: still a miss.
        let mut other = tiny_point();
        other.config.seed ^= 0xDEAD;
        assert!(cache.load(&other).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = scratch_dir("corrupt");
        let cache = DiskCache::new(&dir);
        let point = tiny_point();
        let result = mn_core::simulate(&point.config, point.workload);
        cache.store(&point, &result).unwrap();

        let path = cache.entry_path(&point);
        fs::write(&path, "mncampaign-cache v0\ngarbage").unwrap();
        assert!(cache.load(&point).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
