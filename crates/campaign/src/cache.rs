//! The content-addressed on-disk result cache.
//!
//! Layout: one file per point under the cache directory (default
//! `results/cache/`, override with `MN_CACHE_DIR`, disable with
//! `MN_CACHE=off`), named by the point's 16-hex-digit
//! [cache key](crate::CampaignPoint::cache_key):
//!
//! ```text
//! results/cache/
//!   1f2e3d4c5b6a7980.mnres
//! ```
//!
//! Each file stores a version header, the full fingerprint, and the
//! exactly-encoded result. Loads re-verify both the header and the
//! fingerprint, so version skew or a hash collision degrades to a cache
//! miss instead of a wrong result. An entry that is actually *corrupt* —
//! bad header or undecodable body — is quarantined: renamed to
//! `<key>.corrupt` (with a once-per-process warning) so it stops
//! masquerading as a miss on every run and stays on disk for diagnosis.
//! Stores write to a temporary sibling and `rename` into place, which
//! keeps concurrent writers (parallel workers, or two figure binaries
//! sharing the chain baseline) from ever exposing a torn file.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mn_core::RunResult;

use crate::codec::{decode_result, encode_result};
use crate::point::CampaignPoint;

const HEADER: &str = "mncampaign-cache v1";

/// The default cache directory, honoring `MN_CACHE_DIR`.
pub fn default_cache_dir() -> PathBuf {
    match std::env::var("MN_CACHE_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("results/cache"),
    }
}

/// True when `MN_CACHE` asks for caching to be disabled entirely.
pub fn cache_disabled_by_env() -> bool {
    matches!(
        std::env::var("MN_CACHE").as_deref(),
        Ok("0") | Ok("off") | Ok("no") | Ok("false")
    )
}

/// A directory of finished results, keyed by point fingerprint.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    tmp_counter: AtomicU64,
}

impl DiskCache {
    /// Opens (lazily — nothing is created until the first store) a cache
    /// rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> DiskCache {
        DiskCache {
            dir: dir.into(),
            tmp_counter: AtomicU64::new(0),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, point: &CampaignPoint) -> PathBuf {
        self.dir.join(format!("{}.mnres", point.cache_key()))
    }

    /// Loads the finished result for `point`, or `None` on a miss (absent,
    /// corrupt, version-skewed, or fingerprint-mismatched entry). Corrupt
    /// entries are quarantined to `<key>.corrupt` on the way out.
    pub fn load(&self, point: &CampaignPoint) -> Option<RunResult> {
        let path = self.entry_path(point);
        let text = fs::read_to_string(&path).ok()?;
        let mut lines = text.splitn(3, '\n');
        if lines.next() != Some(HEADER) {
            self.quarantine(&path, "unrecognized header");
            return None;
        }
        let Some(fingerprint) = lines.next().and_then(|l| l.strip_prefix("key=")) else {
            self.quarantine(&path, "missing fingerprint line");
            return None;
        };
        if fingerprint != point.fingerprint() {
            // A well-formed entry for a *different* point sharing this
            // FNV key: a hash collision, which is a legitimate miss — the
            // entry is some other point's valid result, not corruption.
            return None;
        }
        match lines.next().and_then(decode_result) {
            Some(result) => Some(result),
            None => {
                self.quarantine(&path, "undecodable body");
                None
            }
        }
    }

    /// Renames a corrupt entry to `<key>.corrupt` so the next run misses
    /// cleanly (no re-read, no re-warn) and the bytes survive for
    /// inspection. Warns once per process; repeat corruption is almost
    /// always one underlying cause (disk damage, version-skewed writer).
    fn quarantine(&self, path: &Path, why: &str) {
        static WARNED: AtomicBool = AtomicBool::new(false);
        let dest = path.with_extension("corrupt");
        let renamed = fs::rename(path, &dest);
        if !WARNED.swap(true, Ordering::Relaxed) {
            match renamed {
                Ok(()) => eprintln!(
                    "warning: quarantined corrupt cache entry ({why}): {} -> {}",
                    path.display(),
                    dest.display()
                ),
                Err(err) => eprintln!(
                    "warning: corrupt cache entry ({why}) at {} could not be quarantined: {err}",
                    path.display()
                ),
            }
        }
    }

    /// Stores a finished result atomically (write-to-temp + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers treat a failed store as
    /// "uncached" rather than fatal.
    pub fn store(&self, point: &CampaignPoint, result: &RunResult) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let body = format!(
            "{HEADER}\nkey={}\n{}",
            point.fingerprint(),
            encode_result(result)
        );
        // Unique per process *and* per call, so parallel workers never
        // share a temp file.
        let tmp = self.dir.join(format!(
            ".{}.{}.{}.tmp",
            point.cache_key(),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, body)?;
        fs::rename(&tmp, self.entry_path(point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_core::SystemConfig;
    use mn_topo::TopologyKind;
    use mn_workloads::Workload;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mncampaign-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_point() -> CampaignPoint {
        let mut config = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).unwrap();
        config.requests_per_port = 200;
        CampaignPoint::new(config, Workload::Nw)
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = scratch_dir("roundtrip");
        let cache = DiskCache::new(&dir);
        let point = tiny_point();
        assert!(cache.load(&point).is_none());

        let result = mn_core::simulate(&point.config, point.workload);
        cache.store(&point, &result).unwrap();
        let loaded = cache.load(&point).expect("hit");
        assert_eq!(encode_result(&loaded), encode_result(&result));

        // A different seed is a different point: still a miss.
        let mut other = tiny_point();
        other.config.seed ^= 0xDEAD;
        assert!(cache.load(&other).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = scratch_dir("corrupt");
        let cache = DiskCache::new(&dir);
        let point = tiny_point();
        let result = mn_core::simulate(&point.config, point.workload);
        cache.store(&point, &result).unwrap();

        let path = cache.entry_path(&point);
        fs::write(&path, "mncampaign-cache v0\ngarbage").unwrap();
        assert!(cache.load(&point).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_reread() {
        let dir = scratch_dir("quarantine");
        let cache = DiskCache::new(&dir);
        let point = tiny_point();
        let result = mn_core::simulate(&point.config, point.workload);

        // Truncated body: valid header + fingerprint, undecodable payload.
        cache.store(&point, &result).unwrap();
        let path = cache.entry_path(&point);
        fs::write(
            &path,
            format!("{HEADER}\nkey={}\nnot-a-result", point.fingerprint()),
        )
        .unwrap();
        assert!(cache.load(&point).is_none());
        assert!(!path.exists(), "corrupt entry should have been moved");
        assert!(path.with_extension("corrupt").exists());

        // The quarantined name never collides with a fresh store: the
        // point re-simulates and caches cleanly next to the evidence.
        cache.store(&point, &result).unwrap();
        assert!(cache.load(&point).is_some());
        assert!(path.with_extension("corrupt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_collisions_are_plain_misses() {
        let dir = scratch_dir("collision");
        let cache = DiskCache::new(&dir);
        let point = tiny_point();
        let result = mn_core::simulate(&point.config, point.workload);
        cache.store(&point, &result).unwrap();

        // Simulate an FNV collision: a well-formed entry whose fingerprint
        // belongs to a different point. That entry is someone's valid
        // result — it must stay in place, not be quarantined.
        let path = cache.entry_path(&point);
        fs::write(
            &path,
            format!("{HEADER}\nkey=some-other-fingerprint\n{}", {
                crate::codec::encode_result(&result)
            }),
        )
        .unwrap();
        assert!(cache.load(&point).is_none());
        assert!(path.exists(), "collision entry must not be quarantined");
        assert!(!path.with_extension("corrupt").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
