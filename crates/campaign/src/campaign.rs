//! The deterministic thread-pool scheduler.
//!
//! A [`Campaign`] takes a list of [`CampaignPoint`]s and produces one
//! [`PointOutcome`] per point, in input order, with three guarantees:
//!
//! 1. **Bit-identical to serial.** Points never share mutable state — each
//!    carries its own seed inside its config, and `mn_core::simulate_port`
//!    is a pure function of `(config, workload, port)` — so the worker
//!    count only changes wall-clock time, never results. Cache misses are
//!    decomposed into *per-port* jobs (ports serve disjoint address
//!    slices) and merged in ascending port order, so even a single huge
//!    multi-port point parallelizes without perturbing a bit of output.
//!    The determinism test in `tests/determinism.rs` pins this.
//! 2. **Duplicates are folded.** Points with equal fingerprints (e.g. the
//!    `100%-C` baseline submitted once per workload-normalized figure) are
//!    simulated once and replicated.
//! 3. **Finished points are cached.** With a [`DiskCache`] attached,
//!    points are served from disk when a prior run — this figure binary or
//!    any other — already simulated them.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mn_core::{merge_port_observations, port_count, try_simulate_port, PortObservation, RunResult};

use crate::cache::{cache_disabled_by_env, default_cache_dir, DiskCache};
use crate::env::jobs_from_env;
use crate::error::CampaignError;
use crate::point::CampaignPoint;
use crate::report::{CampaignSummary, Progress};

/// The outcome of one grid point.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The point that was executed.
    pub point: CampaignPoint,
    /// Its simulation result (fresh or loaded from cache), or why this
    /// point has none. A failed point never aborts the grid: the other
    /// points complete and the error travels with its point.
    pub result: Result<RunResult, CampaignError>,
    /// True when the result came from the on-disk cache.
    pub cached: bool,
    /// Host wall-clock spent obtaining this result (near zero for cache
    /// hits and folded duplicates).
    pub host: Duration,
}

/// Everything a campaign run produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// One outcome per submitted point, in submission order.
    pub outcomes: Vec<PointOutcome>,
    /// Aggregate counters for reporting and tests.
    pub summary: CampaignSummary,
}

impl CampaignOutcome {
    /// Just the results, in submission order.
    ///
    /// # Panics
    ///
    /// Panics with the failing point's label, workload, and error if any
    /// point failed — the figure binaries expect complete grids; use
    /// [`CampaignOutcome::try_into_results`] (or inspect `outcomes`
    /// directly) when failures are expected.
    pub fn into_results(self) -> Vec<RunResult> {
        self.outcomes
            .into_iter()
            .map(|o| {
                o.result.unwrap_or_else(|e| {
                    panic!(
                        "campaign point {} / {} failed: {e}",
                        o.point.config.label(),
                        o.point.workload.label()
                    )
                })
            })
            .collect()
    }

    /// The results in submission order, or the first point failure.
    pub fn try_into_results(self) -> Result<Vec<RunResult>, CampaignError> {
        self.outcomes.into_iter().map(|o| o.result).collect()
    }
}

/// The campaign engine configuration (builder-style).
#[derive(Debug)]
pub struct Campaign {
    jobs: usize,
    cache: Option<DiskCache>,
    quiet: bool,
}

impl Campaign {
    /// The environment-driven engine every figure binary uses: `MN_JOBS`
    /// workers (default: available parallelism) and the default cache
    /// directory (`results/cache/`, `MN_CACHE_DIR` to move it, `MN_CACHE=off`
    /// to disable).
    pub fn from_env() -> Campaign {
        let campaign = Campaign::new(jobs_from_env());
        if cache_disabled_by_env() {
            campaign
        } else {
            campaign.cache_dir(default_cache_dir())
        }
    }

    /// An engine with an explicit worker count and no cache.
    pub fn new(jobs: usize) -> Campaign {
        Campaign {
            jobs: jobs.max(1),
            cache: None,
            quiet: false,
        }
    }

    /// Attaches an on-disk result cache rooted at `dir`.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Campaign {
        self.cache = Some(DiskCache::new(dir));
        self
    }

    /// Detaches the cache (every point simulates fresh).
    pub fn no_cache(mut self) -> Campaign {
        self.cache = None;
        self
    }

    /// Suppresses the stderr progress/summary reporting.
    pub fn quiet(mut self) -> Campaign {
        self.quiet = true;
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every point and returns outcomes in submission order.
    ///
    /// Simulation failures (a fault schedule that partitions a topology, a
    /// stalled port) are confined to their point: the affected
    /// [`PointOutcome`] carries the [`CampaignError`] and every other
    /// point still completes. Failed points are never written to the
    /// cache, so a later run retries them.
    ///
    /// # Panics
    ///
    /// Panics if a point's configuration is invalid (as `simulate` does) or
    /// if a worker thread panics.
    pub fn run(&self, points: Vec<CampaignPoint>) -> CampaignOutcome {
        let total = points.len();
        let mut progress = Progress::new(total, self.quiet);

        // Fold duplicate fingerprints: `canonical[i]` is the index into
        // `unique` whose result point `i` will receive.
        let mut first_by_print: HashMap<String, usize> = HashMap::new();
        let mut unique: Vec<&CampaignPoint> = Vec::new();
        let mut canonical = Vec::with_capacity(total);
        for point in &points {
            let next = unique.len();
            let slot = *first_by_print.entry(point.fingerprint()).or_insert(next);
            if slot == next {
                unique.push(point);
            }
            canonical.push(slot);
        }

        // Cache hits return results without telemetry (the codec stores
        // only simulated quantities), so an instrumented campaign served
        // from cache would silently lose its traces. Warn once per
        // process instead of dropping them quietly.
        if self.cache.is_some()
            && !self.quiet
            && unique.iter().any(|p| p.config.noc.trace.enabled())
        {
            static WARNED: std::sync::atomic::AtomicBool =
                std::sync::atomic::AtomicBool::new(false);
            if !WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: telemetry requested with the result cache enabled; \
                     cache hits carry no telemetry (set MN_CACHE=off for instrumented runs)"
                );
            }
        }

        // Probe the cache up front (cheap, I/O-bound) so only the misses
        // are fanned out to the workers.
        type Slot = (Result<RunResult, CampaignError>, bool, Duration);
        let mut slots: Vec<Option<Slot>> = vec![None; unique.len()];
        let mut misses: Vec<usize> = Vec::new();
        if let Some(cache) = &self.cache {
            for (i, point) in unique.iter().enumerate() {
                let start = Instant::now();
                if let Some(result) = cache.load(point) {
                    progress.tick(true);
                    slots[i] = Some((Ok(result), true, start.elapsed()));
                } else {
                    misses.push(i);
                }
            }
        } else {
            misses.extend(0..unique.len());
        }

        // Decompose each miss into per-port jobs — ports serve disjoint
        // address slices, so each is an independent simulation — and fan
        // those out instead of whole points. A multi-port grid point no
        // longer bounds the tail: its ports run concurrently on different
        // workers. Observations are merged in ascending port order, which
        // keeps every aggregate bit-identical to the serial `simulate`.
        let port_jobs: Vec<(usize, u32)> = misses
            .iter()
            .flat_map(|&i| (0..port_count(&unique[i].config)).map(move |port| (i, port)))
            .collect();
        let jobs = self.jobs.min(port_jobs.len()).max(1);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                let port_jobs = &port_jobs;
                let unique = &unique;
                scope.spawn(move || loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(i, port)) = port_jobs.get(j) else {
                        break;
                    };
                    let point = unique[i];
                    let start = Instant::now();
                    let obs = try_simulate_port(&point.config, point.workload, port);
                    if tx.send((j, obs, start.elapsed())).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // Gather observations; a point merges — and is cached — the
            // moment its last port lands.
            let mut gathering: HashMap<usize, (Vec<Option<PortObservation>>, Duration)> = misses
                .iter()
                .map(|&i| {
                    let ports = port_count(&unique[i].config) as usize;
                    (i, ((0..ports).map(|_| None).collect(), Duration::ZERO))
                })
                .collect();
            while let Ok((j, obs, host)) = rx.recv() {
                let (i, port) = port_jobs[j];
                // A sibling port of an already-failed point: its entry was
                // removed when the first error was recorded, and the
                // observation is discarded.
                let Some(entry) = gathering.get_mut(&i) else {
                    continue;
                };
                entry.1 += host;
                match obs {
                    Ok(obs) => {
                        entry.0[port as usize] = Some(obs);
                        if entry.0.iter().all(Option::is_some) {
                            let (observations, host) = gathering.remove(&i).expect("present");
                            let point = unique[i];
                            let result = merge_port_observations(
                                &point.config,
                                point.workload,
                                observations.into_iter().flatten(),
                            );
                            if let Some(cache) = &self.cache {
                                if let Err(err) = cache.store(point, &result) {
                                    eprintln!(
                                        "warning: could not cache result in {}: {err}",
                                        cache.dir().display()
                                    );
                                }
                            }
                            progress.tick(false);
                            slots[i] = Some((Ok(result), false, host));
                        }
                    }
                    Err(error) => {
                        let (_, host) = gathering.remove(&i).expect("present");
                        progress.tick(false);
                        slots[i] = Some((Err(CampaignError::Sim { port, error }), false, host));
                    }
                }
            }

            // The channel closed with points still gathering: a worker
            // died without delivering its jobs. Report each such point as
            // lost instead of panicking away the rest of the grid.
            for (i, (observations, host)) in gathering {
                let landed = observations.iter().filter(|o| o.is_some()).count();
                let expected = observations.len();
                progress.tick(false);
                slots[i] = Some((
                    Err(CampaignError::LostWorker { landed, expected }),
                    false,
                    host,
                ));
            }
        });

        let cache_hits = slots.iter().flatten().filter(|(_, hit, _)| *hit).count();
        let failed = slots.iter().flatten().filter(|(r, ..)| r.is_err()).count();
        let fresh_requests = slots
            .iter()
            .flatten()
            .filter(|(_, hit, _)| !hit)
            .filter_map(|(r, ..)| r.as_ref().ok())
            .map(|r| r.reads + r.writes)
            .sum();
        let summary = CampaignSummary {
            total,
            unique: unique.len(),
            cache_hits,
            fresh: unique.len() - cache_hits,
            failed,
            jobs,
            host_wall: progress.started().elapsed(),
            fresh_requests,
        };
        progress.finish(&summary);

        let executed: Vec<Slot> = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                // Unreachable when the scope above ran to completion, but a
                // lost slot must degrade to a diagnosable record, not a
                // panic that discards the finished points.
                s.unwrap_or_else(|| {
                    let expected = port_count(&unique[i].config) as usize;
                    (
                        Err(CampaignError::LostWorker {
                            landed: 0,
                            expected,
                        }),
                        false,
                        Duration::ZERO,
                    )
                })
            })
            .collect();
        let outcomes = points
            .into_iter()
            .zip(canonical)
            .map(|(point, slot)| {
                let (result, cached, host) = executed[slot].clone();
                PointOutcome {
                    point,
                    result,
                    cached,
                    host,
                }
            })
            .collect();
        CampaignOutcome { outcomes, summary }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_core::SystemConfig;
    use mn_topo::TopologyKind;
    use mn_workloads::Workload;

    fn tiny(topology: TopologyKind, seed: u64) -> CampaignPoint {
        let mut config = SystemConfig::paper_baseline(topology, 1.0).unwrap();
        config.requests_per_port = 150;
        config.seed = seed;
        CampaignPoint::new(config, Workload::Nw)
    }

    #[test]
    fn preserves_submission_order() {
        let points = vec![
            tiny(TopologyKind::Chain, 1),
            tiny(TopologyKind::Tree, 2),
            tiny(TopologyKind::Ring, 3),
        ];
        let outcome = Campaign::new(2).quiet().run(points);
        assert_eq!(outcome.summary.total, 3);
        assert_eq!(outcome.summary.unique, 3);
        assert_eq!(outcome.summary.fresh, 3);
        let labels: Vec<&str> = outcome
            .outcomes
            .iter()
            .map(|o| o.result.as_ref().unwrap().label.as_str())
            .collect();
        assert_eq!(labels, ["100%-C", "100%-T", "100%-R"]);
    }

    #[test]
    fn duplicate_points_fold_into_one_simulation() {
        let points = vec![
            tiny(TopologyKind::Chain, 7),
            tiny(TopologyKind::Chain, 7),
            tiny(TopologyKind::Chain, 7),
        ];
        let outcome = Campaign::new(3).quiet().run(points);
        assert_eq!(outcome.summary.total, 3);
        assert_eq!(outcome.summary.unique, 1);
        let walls: Vec<_> = outcome
            .outcomes
            .iter()
            .map(|o| o.result.as_ref().unwrap().wall)
            .collect();
        assert_eq!(walls[0], walls[1]);
        assert_eq!(walls[1], walls[2]);
    }

    #[test]
    fn empty_campaign_is_fine() {
        let outcome = Campaign::new(4).quiet().run(Vec::new());
        assert!(outcome.outcomes.is_empty());
        assert_eq!(outcome.summary.total, 0);
        assert_eq!(outcome.summary.sim_throughput_per_sec(), 0.0);
    }

    /// A point whose fault schedule partitions its chain. Every chain link
    /// is load-bearing, so any killed link severs the topology; a high
    /// kill rate makes the first seeds near-certain to do so.
    fn partitioned(seed: u64) -> CampaignPoint {
        let mut point = tiny(TopologyKind::Chain, seed);
        point.config.noc.fault.link_kill_rate = 0.9;
        point.config.noc.fault.seed = (0..64)
            .find(|&s| {
                let mut probe = point.clone();
                probe.config.noc.fault.seed = s;
                mn_core::try_simulate_port(&probe.config, probe.workload, 0).is_err()
            })
            .expect("some fault seed kills a chain link");
        point
    }

    #[test]
    fn a_failed_point_does_not_sink_the_grid() {
        let points = vec![
            tiny(TopologyKind::Tree, 11),
            partitioned(12),
            tiny(TopologyKind::Ring, 13),
        ];
        let outcome = Campaign::new(2).quiet().run(points);
        assert_eq!(outcome.summary.total, 3);
        assert_eq!(outcome.summary.failed, 1);
        assert!(outcome.outcomes[0].result.is_ok());
        assert!(matches!(
            outcome.outcomes[1].result,
            Err(CampaignError::Sim { .. })
        ));
        assert!(outcome.outcomes[2].result.is_ok());
        assert!(outcome.try_into_results().is_err());
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn into_results_panics_diagnosably_on_failure() {
        let outcome = Campaign::new(1).quiet().run(vec![partitioned(21)]);
        let _ = outcome.into_results();
    }

    #[test]
    fn failed_points_are_not_cached() {
        let dir = std::env::temp_dir().join(format!(
            "mn-campaign-fail-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let run = |seed| {
            Campaign::new(1)
                .cache_dir(&dir)
                .quiet()
                .run(vec![partitioned(seed), tiny(TopologyKind::Tree, 31)])
        };
        let first = run(30);
        assert_eq!(first.summary.failed, 1);
        assert_eq!(first.summary.cache_hits, 0);
        // Second run: the healthy point is served from cache, the failed
        // point is retried (and fails again) rather than being served a
        // poisoned entry.
        let second = run(30);
        assert_eq!(second.summary.cache_hits, 1);
        assert_eq!(second.summary.failed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
