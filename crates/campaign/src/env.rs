//! Environment knobs, parsed loudly.
//!
//! Every harness knob (`MN_JOBS` here; `MN_REQUESTS` / `MN_SEED` in
//! `mn-bench`) goes through [`env_parse`], which reports malformed values
//! on stderr instead of silently falling back — a typo'd
//! `MN_REQUESTS=60000q` used to quietly run a 6 000-request experiment.

use std::collections::HashSet;
use std::fmt::Display;
use std::str::FromStr;
use std::sync::Mutex;

/// Variables already warned about, so grid builders that re-read a knob
/// per config don't repeat the same warning.
static WARNED: Mutex<Option<HashSet<String>>> = Mutex::new(None);

/// Reads and parses `name` from the environment. Returns `None` when the
/// variable is unset; when it is set but malformed, prints a warning to
/// stderr naming the variable and the rejected value (once per variable),
/// then returns `None` so the caller's default applies.
pub fn env_parse<T>(name: &str) -> Option<T>
where
    T: FromStr,
    T::Err: Display,
{
    let value = std::env::var(name).ok()?;
    match value.parse() {
        Ok(parsed) => Some(parsed),
        Err(err) => {
            let mut warned = WARNED.lock().unwrap();
            if warned
                .get_or_insert_with(HashSet::new)
                .insert(name.to_string())
            {
                eprintln!("warning: ignoring malformed {name}={value:?}: {err}");
            }
            None
        }
    }
}

/// Worker count for campaign execution: `MN_JOBS`, defaulting to the
/// machine's available parallelism. A value of 0 is treated as malformed.
pub fn jobs_from_env() -> usize {
    match env_parse::<usize>("MN_JOBS") {
        Some(0) => {
            eprintln!("warning: ignoring MN_JOBS=0 (need at least one worker)");
            default_jobs()
        }
        Some(jobs) => jobs,
        None => default_jobs(),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Fault-injection transient-CRC rate override: `MN_FAULT_RATE`, a
/// probability in `[0, 1]` applied per link traversal. Out-of-range or
/// non-finite values warn (once) and are ignored, like a malformed one.
pub fn fault_rate_from_env() -> Option<f64> {
    let rate: f64 = env_parse("MN_FAULT_RATE")?;
    if rate.is_finite() && (0.0..=1.0).contains(&rate) {
        Some(rate)
    } else {
        let mut warned = WARNED.lock().unwrap();
        if warned
            .get_or_insert_with(HashSet::new)
            .insert("MN_FAULT_RATE".to_string())
        {
            eprintln!("warning: ignoring MN_FAULT_RATE={rate} (need a probability in [0, 1])");
        }
        None
    }
}

/// Fault-schedule seed override: `MN_FAULT_SEED`. The seed feeds the
/// fault model's private RNG stream (and, when faults are enabled, the
/// result fingerprint), so rerunning with the same seed replays the same
/// link kills, degradations, and transient errors.
pub fn fault_seed_from_env() -> Option<u64> {
    env_parse("MN_FAULT_SEED")
}

/// Telemetry mode override: `MN_TRACE`, one of `off`, `counters`,
/// `full` (case-insensitive). Telemetry is observational — it never
/// changes simulated results or cache keys — so this knob is safe to
/// set on any figure binary. Unset or malformed (warned once) means
/// "leave the config's mode alone".
pub fn trace_from_env() -> Option<mn_noc::TraceConfig> {
    env_parse("MN_TRACE")
}

/// Trace output directory: `MN_TRACE_DIR`. Where trace exports (e.g.
/// `mncube trace`'s Perfetto JSON) land when the caller doesn't give an
/// explicit path; defaults to the current directory when unset.
pub fn trace_dir_from_env() -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("MN_TRACE_DIR")?;
    Some(std::path::PathBuf::from(dir))
}

/// Closed-loop host policy override: `MN_HOST_POLICY`, one of `open`,
/// `fixed:<n>`, `aimd`, `ecn` (case-insensitive). Anything other than
/// `open` engages the closed loop and joins the result fingerprint, so
/// cached open-loop results are never served for closed-loop runs.
pub fn host_policy_from_env() -> Option<mn_host::WindowPolicyKind> {
    env_parse("MN_HOST_POLICY")
}

/// Closed-loop window override: `MN_HOST_WINDOW`, the initial window in
/// outstanding requests (the cap is raised to match when needed). A value
/// of 0 is treated as malformed — the gate must always admit one request.
pub fn host_window_from_env() -> Option<u32> {
    match env_parse::<u32>("MN_HOST_WINDOW") {
        Some(0) => {
            let mut warned = WARNED.lock().unwrap();
            if warned
                .get_or_insert_with(HashSet::new)
                .insert("MN_HOST_WINDOW".to_string())
            {
                eprintln!("warning: ignoring MN_HOST_WINDOW=0 (the window must admit a request)");
            }
            None
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Environment mutation is process-global, so these tests go through a
    // single #[test] to stay race-free under the parallel test harness --
    // and they use a variable name nothing else reads.
    #[test]
    fn parses_warns_and_defaults() {
        let name = "MN_CAMPAIGN_ENV_TEST_ONLY";
        assert_eq!(env_parse::<u64>(name), None);

        std::env::set_var(name, "1234");
        assert_eq!(env_parse::<u64>(name), Some(1234));

        std::env::set_var(name, "not-a-number");
        assert_eq!(env_parse::<u64>(name), None); // warned on stderr

        std::env::remove_var(name);
        assert!(jobs_from_env() >= 1);

        // Fault knobs, same single-test discipline. The unset case must
        // not engage fault injection at all.
        std::env::remove_var("MN_FAULT_RATE");
        std::env::remove_var("MN_FAULT_SEED");
        assert_eq!(fault_rate_from_env(), None);
        assert_eq!(fault_seed_from_env(), None);

        std::env::set_var("MN_FAULT_RATE", "0.05");
        assert_eq!(fault_rate_from_env(), Some(0.05));
        std::env::set_var("MN_FAULT_RATE", "1.5");
        assert_eq!(fault_rate_from_env(), None); // out of range: warned
        std::env::set_var("MN_FAULT_RATE", "NaN");
        assert_eq!(fault_rate_from_env(), None);
        std::env::remove_var("MN_FAULT_RATE");

        std::env::set_var("MN_FAULT_SEED", "42");
        assert_eq!(fault_seed_from_env(), Some(42));
        std::env::remove_var("MN_FAULT_SEED");

        // Telemetry knobs, same single-test discipline.
        std::env::remove_var("MN_TRACE");
        std::env::remove_var("MN_TRACE_DIR");
        assert_eq!(trace_from_env(), None);
        assert_eq!(trace_dir_from_env(), None);

        std::env::set_var("MN_TRACE", "Counters");
        assert_eq!(trace_from_env(), Some(mn_noc::TraceConfig::Counters));
        std::env::set_var("MN_TRACE", "full");
        assert_eq!(trace_from_env(), Some(mn_noc::TraceConfig::Full));
        std::env::set_var("MN_TRACE", "loud");
        assert_eq!(trace_from_env(), None); // malformed: warned
        std::env::remove_var("MN_TRACE");

        std::env::set_var("MN_TRACE_DIR", "/tmp/traces");
        assert_eq!(
            trace_dir_from_env(),
            Some(std::path::PathBuf::from("/tmp/traces"))
        );
        std::env::remove_var("MN_TRACE_DIR");

        // Closed-loop host knobs, same single-test discipline.
        std::env::remove_var("MN_HOST_POLICY");
        std::env::remove_var("MN_HOST_WINDOW");
        assert_eq!(host_policy_from_env(), None);
        assert_eq!(host_window_from_env(), None);

        std::env::set_var("MN_HOST_POLICY", "aimd");
        assert_eq!(
            host_policy_from_env(),
            Some(mn_host::WindowPolicyKind::Aimd)
        );
        std::env::set_var("MN_HOST_POLICY", "Fixed:12");
        assert_eq!(
            host_policy_from_env(),
            Some(mn_host::WindowPolicyKind::Fixed(12))
        );
        std::env::set_var("MN_HOST_POLICY", "closed"); // malformed: warned
        assert_eq!(host_policy_from_env(), None);
        std::env::remove_var("MN_HOST_POLICY");

        std::env::set_var("MN_HOST_WINDOW", "24");
        assert_eq!(host_window_from_env(), Some(24));
        std::env::set_var("MN_HOST_WINDOW", "0"); // degenerate: warned
        assert_eq!(host_window_from_env(), None);
        std::env::remove_var("MN_HOST_WINDOW");
    }
}
