//! Latency decomposition and the mergeable telemetry rollup.

use std::fmt::Write as _;

use mn_sim::{Accumulator, SimDuration};

use crate::fairness::FairnessTracker;
use crate::host::HostSummary;
use crate::metrics::QueueDepthStats;

/// The paper's three-way latency split (request NoC / memory array /
/// response NoC, Figures 4–5) refined with queuing-vs-serialization
/// sub-splits and per-hop-count end-to-end classes.
///
/// "Wire" time is the zero-contention cost of a packet's routed path
/// (serialization plus fixed per-hop latency, precomputed per
/// destination); "queue" is whatever the measured phase took beyond
/// that — buffering, arbitration losses, link contention, and retries.
#[derive(Debug, Clone, Default)]
pub struct Decomposition {
    /// Request-network queuing time.
    pub req_queue: Accumulator,
    /// Request-network wire time (serialization + propagation).
    pub req_wire: Accumulator,
    /// Memory-array service time (bank access incl. quadrant penalty).
    pub array: Accumulator,
    /// Response-network queuing time.
    pub resp_queue: Accumulator,
    /// Response-network wire time.
    pub resp_wire: Accumulator,
    end_to_end: Accumulator,
    by_hops: Vec<Accumulator>,
}

impl Decomposition {
    /// Creates a decomposition with the per-hop-count table pre-sized
    /// for paths up to `max_hops` hops (it grows on demand past that).
    pub fn with_max_hops(max_hops: usize) -> Self {
        Decomposition {
            by_hops: vec![Accumulator::new(); max_hops + 1],
            ..Decomposition::default()
        }
    }

    /// Records one request-network transit split into queue and wire
    /// components.
    #[inline]
    pub fn record_request(&mut self, queue: SimDuration, wire: SimDuration) {
        self.req_queue.record(queue);
        self.req_wire.record(wire);
    }

    /// Records one memory-array service time.
    #[inline]
    pub fn record_array(&mut self, d: SimDuration) {
        self.array.record(d);
    }

    /// Records one response-network transit split into queue and wire
    /// components.
    #[inline]
    pub fn record_response(&mut self, queue: SimDuration, wire: SimDuration) {
        self.resp_queue.record(queue);
        self.resp_wire.record(wire);
    }

    /// Records one completed request's end-to-end latency under its
    /// response-path hop count.
    #[inline]
    pub fn record_total(&mut self, hops: usize, latency: SimDuration) {
        self.end_to_end.record(latency);
        if hops >= self.by_hops.len() {
            self.by_hops.resize(hops + 1, Accumulator::new());
        }
        self.by_hops[hops].record(latency);
    }

    /// Merges another decomposition into this one.
    pub fn merge(&mut self, other: &Decomposition) {
        self.req_queue.merge(&other.req_queue);
        self.req_wire.merge(&other.req_wire);
        self.array.merge(&other.array);
        self.resp_queue.merge(&other.resp_queue);
        self.resp_wire.merge(&other.resp_wire);
        self.end_to_end.merge(&other.end_to_end);
        if other.by_hops.len() > self.by_hops.len() {
            self.by_hops.resize(other.by_hops.len(), Accumulator::new());
        }
        for (mine, theirs) in self.by_hops.iter_mut().zip(&other.by_hops) {
            mine.merge(theirs);
        }
    }

    /// Mean request-network latency (queue + wire) in nanoseconds.
    pub fn request_ns(&self) -> f64 {
        self.req_queue.mean_ns() + self.req_wire.mean_ns()
    }

    /// Mean memory-array latency in nanoseconds.
    pub fn array_ns(&self) -> f64 {
        self.array.mean_ns()
    }

    /// Mean response-network latency (queue + wire) in nanoseconds.
    pub fn response_ns(&self) -> f64 {
        self.resp_queue.mean_ns() + self.resp_wire.mean_ns()
    }

    /// The measured end-to-end latency accumulator.
    pub fn end_to_end(&self) -> &Accumulator {
        &self.end_to_end
    }

    /// Iterates `(hop_count, latency_accumulator)` for hop counts with
    /// at least one sample.
    pub fn by_hops(&self) -> impl Iterator<Item = (usize, &Accumulator)> {
        self.by_hops
            .iter()
            .enumerate()
            .filter(|(_, acc)| !acc.is_empty())
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.end_to_end.is_empty() && self.array.is_empty() && self.req_queue.is_empty()
    }
}

/// Mergeable cross-port telemetry rollup; rides on a run's result when
/// telemetry is enabled.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySummary {
    /// Latency decomposition (paper Fig. 4/5 components + sub-splits).
    pub decomp: Decomposition,
    /// Per-source-cube service shares (parking-lot fairness).
    pub fairness: FairnessTracker,
    /// Buffer-occupancy distribution across all router input buffers.
    pub queue_depth: QueueDepthStats,
    /// Highest per-bucket utilization observed on any link (0..=1).
    pub peak_link_utilization: f64,
    /// Closed-loop host rollup — `Some` only when a `mn-host` window
    /// policy gated injection during the run.
    pub host: Option<HostSummary>,
}

impl TelemetrySummary {
    /// Merges another port's summary into this one.
    pub fn merge(&mut self, other: &TelemetrySummary) {
        self.decomp.merge(&other.decomp);
        self.fairness.merge(&other.fairness);
        self.queue_depth.merge(&other.queue_depth);
        self.peak_link_utilization = self.peak_link_utilization.max(other.peak_link_utilization);
        if let Some(theirs) = &other.host {
            match &mut self.host {
                Some(mine) => mine.merge(theirs),
                None => self.host = Some(theirs.clone()),
            }
        }
    }

    /// A fig04-style plain-text decomposition + fairness report.
    pub fn report(&self) -> String {
        let d = &self.decomp;
        let total = d.request_ns() + d.array_ns() + d.response_ns();
        let measured = d.end_to_end().mean_ns();
        let mut out = String::new();
        let _ = writeln!(out, "latency decomposition (mean ns per request):");
        let _ = writeln!(
            out,
            "  request network  {:>8.1}   (queue {:>8.1} | wire {:>6.1})",
            d.request_ns(),
            d.req_queue.mean_ns(),
            d.req_wire.mean_ns(),
        );
        let _ = writeln!(out, "  memory array     {:>8.1}", d.array_ns());
        let _ = writeln!(
            out,
            "  response network {:>8.1}   (queue {:>8.1} | wire {:>6.1})",
            d.response_ns(),
            d.resp_queue.mean_ns(),
            d.resp_wire.mean_ns(),
        );
        let _ = writeln!(
            out,
            "  components sum   {:>8.1}   (measured end-to-end {:.1})",
            total, measured
        );
        if d.by_hops().count() > 0 {
            let _ = writeln!(out, "by response hop count:");
            for (hops, acc) in d.by_hops() {
                let _ = writeln!(
                    out,
                    "  {:>2} hops  n={:<8} mean {:>8.1} ns",
                    hops,
                    acc.count(),
                    acc.mean_ns()
                );
            }
        }
        let _ = writeln!(
            out,
            "fairness         jain {:.4} over {} cubes",
            self.fairness.jain(),
            self.fairness.active_sources()
        );
        let _ = writeln!(
            out,
            "queue depth      peak {} | p99 {} ({} samples)",
            self.queue_depth.peak(),
            self.queue_depth.p99(),
            self.queue_depth.total()
        );
        let _ = writeln!(
            out,
            "link utilization peak {:.1}%",
            self.peak_link_utilization * 100.0
        );
        if let Some(host) = &self.host {
            let _ = writeln!(
                out,
                "closed loop      window steady {:.1} (min {} | peak {}) | rtt mean {:.1} ns | marked {:.1}% of {} responses",
                host.steady_window(),
                host.min_window,
                host.peak_window,
                host.rtt.mean_ns(),
                host.marked_fraction() * 100.0,
                host.responses
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_fold_and_sum() {
        let mut d = Decomposition::with_max_hops(4);
        d.record_request(SimDuration::from_ns(8), SimDuration::from_ns(4));
        d.record_array(SimDuration::from_ns(9));
        d.record_response(SimDuration::from_ns(18), SimDuration::from_ns(4));
        d.record_total(3, SimDuration::from_ns(43));
        assert!((d.request_ns() - 12.0).abs() < 1e-9);
        assert!((d.array_ns() - 9.0).abs() < 1e-9);
        assert!((d.response_ns() - 22.0).abs() < 1e-9);
        let sum = d.request_ns() + d.array_ns() + d.response_ns();
        assert!((sum - d.end_to_end().mean_ns()).abs() < 1e-9);
        let by: Vec<_> = d.by_hops().collect();
        assert_eq!(by.len(), 1);
        assert_eq!(by[0].0, 3);
    }

    #[test]
    fn record_total_grows_past_presize() {
        let mut d = Decomposition::with_max_hops(1);
        d.record_total(7, SimDuration::from_ns(1));
        assert_eq!(d.by_hops().next().unwrap().0, 7);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Decomposition::with_max_hops(2);
        a.record_request(SimDuration::from_ns(10), SimDuration::from_ns(2));
        a.record_total(1, SimDuration::from_ns(12));
        let mut b = Decomposition::with_max_hops(5);
        b.record_request(SimDuration::from_ns(20), SimDuration::from_ns(4));
        b.record_total(5, SimDuration::from_ns(24));
        a.merge(&b);
        assert_eq!(a.req_queue.count(), 2);
        assert!((a.req_queue.mean_ns() - 15.0).abs() < 1e-9);
        assert_eq!(a.by_hops().count(), 2);
    }

    #[test]
    fn summary_report_mentions_all_sections() {
        let mut s = TelemetrySummary::default();
        s.decomp
            .record_request(SimDuration::from_ns(5), SimDuration::from_ns(5));
        s.decomp.record_array(SimDuration::from_ns(9));
        s.decomp
            .record_response(SimDuration::from_ns(5), SimDuration::from_ns(5));
        s.decomp.record_total(2, SimDuration::from_ns(24));
        s.fairness = FairnessTracker::new(3);
        s.fairness.record(1, SimDuration::from_ns(24));
        s.queue_depth.record(4);
        s.peak_link_utilization = 0.5;
        let report = s.report();
        assert!(report.contains("request network"));
        assert!(report.contains("memory array"));
        assert!(report.contains("response network"));
        assert!(report.contains("jain 1.0000 over 1 cubes"));
        assert!(report.contains("peak 4"));
        assert!(report.contains("50.0%"));
        assert!(report.contains("2 hops"));
    }

    #[test]
    fn summary_merges_and_reports_host_rollup() {
        let mut a = TelemetrySummary::default();
        assert!(a.host.is_none());
        assert!(!a.report().contains("closed loop"));
        let mut h = HostSummary::new();
        h.record(0, 8, SimDuration::from_ns(150), true);
        let b = TelemetrySummary {
            host: Some(h),
            ..TelemetrySummary::default()
        };
        a.merge(&b); // None + Some adopts
        a.merge(&b); // Some + Some folds
        let host = a.host.as_ref().unwrap();
        assert_eq!(host.responses, 2);
        assert!(a.report().contains("closed loop"));
        assert!(a.report().contains("marked 100.0% of 2 responses"));
    }

    #[test]
    fn summary_merge_takes_max_utilization() {
        let mut a = TelemetrySummary {
            peak_link_utilization: 0.3,
            ..TelemetrySummary::default()
        };
        let b = TelemetrySummary {
            peak_link_utilization: 0.9,
            ..TelemetrySummary::default()
        };
        a.merge(&b);
        assert!((a.peak_link_utilization - 0.9).abs() < 1e-12);
    }
}
