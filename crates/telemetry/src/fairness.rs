//! Service-share fairness: Jain's index over per-source-cube shares.

use mn_sim::SimDuration;

/// Jain's fairness index over a set of shares:
/// `(Σx)² / (n · Σx²)`.
///
/// Ranges from `1/n` (one party gets everything) to `1.0` (perfectly
/// equal). Vacuously 1.0 for empty or all-zero inputs.
///
/// # Example
///
/// ```
/// use mn_telemetry::jain_index;
///
/// assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
/// assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
/// ```
pub fn jain_index(shares: &[f64]) -> f64 {
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
    if shares.is_empty() || sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sum_sq)
}

/// Per-source-cube service accounting: completions and summed request
/// latency, folded into effective service shares.
///
/// All cubes of a port drain the same request stream for the same wall
/// time, so raw completion counts are nearly uniform by construction;
/// the "parking lot" unfairness of chain-like topologies (paper §4)
/// shows up as *latency* disparity. The share of cube `i` is therefore
/// its effective service rate — completions divided by mean request
/// latency — which deflates for cubes starved by arbitration.
#[derive(Debug, Clone, Default)]
pub struct FairnessTracker {
    completions: Vec<u64>,
    latency_ps: Vec<u128>,
}

impl FairnessTracker {
    /// Creates a tracker for `nodes` sources (cube node ids index it
    /// directly; sources that never complete a request are skipped in
    /// the share computation).
    pub fn new(nodes: usize) -> Self {
        FairnessTracker {
            completions: vec![0; nodes],
            latency_ps: vec![0; nodes],
        }
    }

    /// Records one completed request served by `node` with the given
    /// end-to-end latency.
    #[inline]
    pub fn record(&mut self, node: usize, latency: SimDuration) {
        if node < self.completions.len() {
            self.completions[node] += 1;
            self.latency_ps[node] += u128::from(latency.as_ps());
        }
    }

    /// Merges another tracker (e.g. from a sibling port) into this one,
    /// growing to cover the longer of the two.
    pub fn merge(&mut self, other: &FairnessTracker) {
        if other.completions.len() > self.completions.len() {
            self.completions.resize(other.completions.len(), 0);
            self.latency_ps.resize(other.latency_ps.len(), 0);
        }
        for (i, (&c, &l)) in other.completions.iter().zip(&other.latency_ps).enumerate() {
            self.completions[i] += c;
            self.latency_ps[i] += l;
        }
    }

    /// Effective service shares (completions / mean latency in ns) for
    /// every source with at least one completion.
    pub fn shares(&self) -> Vec<f64> {
        self.completions
            .iter()
            .zip(&self.latency_ps)
            .filter(|(&c, _)| c > 0)
            .map(|(&c, &l)| {
                let mean_ns = l as f64 / c as f64 / 1_000.0;
                c as f64 / mean_ns
            })
            .collect()
    }

    /// Jain's fairness index over [`FairnessTracker::shares`].
    pub fn jain(&self) -> f64 {
        jain_index(&self.shares())
    }

    /// Number of sources with at least one completion.
    pub fn active_sources(&self) -> usize {
        self.completions.iter().filter(|&&c| c > 0).count()
    }

    /// Iterates `(node, completions, mean_latency_ns)` for active
    /// sources.
    pub fn per_source(&self) -> impl Iterator<Item = (usize, u64, f64)> + '_ {
        self.completions
            .iter()
            .zip(&self.latency_ps)
            .enumerate()
            .filter(|(_, (&c, _))| c > 0)
            .map(|(i, (&c, &l))| (i, c, l as f64 / c as f64 / 1_000.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One of n hogging everything => 1/n.
        assert!((jain_index(&[3.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        // 2:1 split between two parties: (3)^2 / (2*5) = 0.9.
        assert!((jain_index(&[2.0, 1.0]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn equal_service_is_perfectly_fair() {
        let mut t = FairnessTracker::new(4);
        for node in 1..4 {
            for _ in 0..10 {
                t.record(node, SimDuration::from_ns(100));
            }
        }
        assert_eq!(t.active_sources(), 3);
        assert!((t.jain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_disparity_deflates_the_index() {
        let mut t = FairnessTracker::new(3);
        for _ in 0..10 {
            t.record(1, SimDuration::from_ns(50)); // near cube: fast
            t.record(2, SimDuration::from_ns(500)); // far cube: starved
        }
        let jain = t.jain();
        assert!(jain < 0.7, "expected unfairness, got {jain}");
        // Shares are rates: the fast cube's share is 10x the slow one's.
        let shares = t.shares();
        assert!((shares[0] / shares[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts_and_grows() {
        let mut a = FairnessTracker::new(2);
        a.record(1, SimDuration::from_ns(100));
        let mut b = FairnessTracker::new(4);
        b.record(1, SimDuration::from_ns(100));
        b.record(3, SimDuration::from_ns(100));
        a.merge(&b);
        assert_eq!(a.active_sources(), 2);
        let per: Vec<_> = a.per_source().collect();
        assert_eq!(per[0], (1, 2, 100.0));
        assert_eq!(per[1], (3, 1, 100.0));
    }

    #[test]
    fn out_of_range_node_is_ignored() {
        let mut t = FairnessTracker::new(2);
        t.record(9, SimDuration::from_ns(1));
        assert_eq!(t.active_sources(), 0);
    }
}
