//! Closed-loop host telemetry: window-size time series and per-policy
//! RTT/goodput rollups.
//!
//! When a port runs with a closed-loop window policy (`mn-host`) and
//! telemetry is on, it records every completed request here: the window
//! size in force at completion, the measured round-trip time, and whether
//! the response carried an ECN mark. The rollup rides on
//! [`crate::TelemetrySummary`] — like the rest of the telemetry layer it
//! never exists in untraced runs, so the hot path pays nothing.

/// Buckets in a [`WindowSeries`] — matches `TimeSeries` so the two plot
/// on the same axis.
const WINDOW_BUCKETS: usize = 64;

use mn_sim::{Accumulator, SimDuration};

/// A bounded time series of congestion-window sizes.
///
/// Same self-widening scheme as [`crate::TimeSeries`]: 64 fixed buckets;
/// a sample past the window doubles the bucket width by merging adjacent
/// pairs, so recording never allocates. Each bucket keeps the *sum and
/// count* of window samples (not busy time), yielding the mean window per
/// bucket — the shape AIMD sawteeth and ECN backoff show up in.
#[derive(Debug, Clone)]
pub struct WindowSeries {
    sum: [u64; WINDOW_BUCKETS],
    count: [u64; WINDOW_BUCKETS],
    width_ps: u64,
}

impl WindowSeries {
    /// Creates a series whose buckets start `width_ps` wide (minimum 1).
    pub fn new(width_ps: u64) -> Self {
        WindowSeries {
            sum: [0; WINDOW_BUCKETS],
            count: [0; WINDOW_BUCKETS],
            width_ps: width_ps.max(1),
        }
    }

    /// Records the window size in force at time `at_ps`, widening the
    /// window as needed.
    #[inline]
    pub fn record(&mut self, at_ps: u64, window: u32) {
        let mut idx = at_ps / self.width_ps;
        while idx >= WINDOW_BUCKETS as u64 {
            self.widen();
            idx = at_ps / self.width_ps;
        }
        self.sum[idx as usize] += u64::from(window);
        self.count[idx as usize] += 1;
    }

    fn widen(&mut self) {
        for i in 0..WINDOW_BUCKETS / 2 {
            self.sum[i] = self.sum[2 * i] + self.sum[2 * i + 1];
            self.count[i] = self.count[2 * i] + self.count[2 * i + 1];
        }
        for b in &mut self.sum[WINDOW_BUCKETS / 2..] {
            *b = 0;
        }
        for b in &mut self.count[WINDOW_BUCKETS / 2..] {
            *b = 0;
        }
        self.width_ps *= 2;
    }

    /// Merges another series into this one, widening the narrower series
    /// until the bucket widths agree (both widths are the initial width
    /// times a power of two, so they always meet).
    pub fn merge(&mut self, other: &WindowSeries) {
        let mut other = other.clone();
        while self.width_ps < other.width_ps {
            self.widen();
        }
        while other.width_ps < self.width_ps {
            other.widen();
        }
        for i in 0..WINDOW_BUCKETS {
            self.sum[i] += other.sum[i];
            self.count[i] += other.count[i];
        }
    }

    /// Current bucket width in picoseconds.
    pub fn width_ps(&self) -> u64 {
        self.width_ps
    }

    /// Iterates `(bucket_start_ps, mean_window)` over buckets with at
    /// least one sample.
    pub fn samples(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let width = self.width_ps;
        self.sum
            .iter()
            .zip(&self.count)
            .enumerate()
            .filter(|(_, (_, &n))| n > 0)
            .map(move |(i, (&s, &n))| (i as u64 * width, s as f64 / n as f64))
    }

    /// Mean window over the last half of the populated buckets — the
    /// steady-state window after the policy's opening transient.
    pub fn steady_window(&self) -> f64 {
        let populated: Vec<(u64, u64)> = self
            .sum
            .iter()
            .zip(&self.count)
            .filter(|(_, &n)| n > 0)
            .map(|(&s, &n)| (s, n))
            .collect();
        if populated.is_empty() {
            return f64::NAN;
        }
        let tail = &populated[populated.len() / 2..];
        let (sum, count) = tail
            .iter()
            .fold((0u64, 0u64), |(s, n), &(bs, bn)| (s + bs, n + bn));
        sum as f64 / count as f64
    }

    /// Total samples recorded.
    pub fn total_samples(&self) -> u64 {
        self.count.iter().sum()
    }
}

impl Default for WindowSeries {
    fn default() -> Self {
        // 2^14 ps initial width: a default 20k-request run widens only a
        // handful of times.
        WindowSeries::new(1 << 14)
    }
}

/// Mergeable closed-loop rollup for one port (merged across ports into
/// the run's [`crate::TelemetrySummary`]).
#[derive(Debug, Clone, Default)]
pub struct HostSummary {
    /// Window-size-over-time series.
    pub window: WindowSeries,
    /// Round-trip time of completed requests (offer to response).
    pub rtt: Accumulator,
    /// Completed requests observed.
    pub responses: u64,
    /// Completed requests whose response carried an ECN mark.
    pub marked_responses: u64,
    /// Largest window ever in force at a completion.
    pub peak_window: u32,
    /// Smallest window ever in force at a completion (`u32::MAX` until
    /// the first sample).
    pub min_window: u32,
}

impl HostSummary {
    /// Creates an empty rollup.
    pub fn new() -> Self {
        HostSummary {
            min_window: u32::MAX,
            ..HostSummary::default()
        }
    }

    /// Records one completed request: the window in force, the measured
    /// RTT, and whether the response was ECN-marked.
    #[inline]
    pub fn record(&mut self, at_ps: u64, window: u32, rtt: SimDuration, marked: bool) {
        self.window.record(at_ps, window);
        self.rtt.record(rtt);
        self.responses += 1;
        self.marked_responses += u64::from(marked);
        self.peak_window = self.peak_window.max(window);
        self.min_window = self.min_window.min(window);
    }

    /// Merges another port's rollup into this one.
    pub fn merge(&mut self, other: &HostSummary) {
        self.window.merge(&other.window);
        self.rtt.merge(&other.rtt);
        self.responses += other.responses;
        self.marked_responses += other.marked_responses;
        self.peak_window = self.peak_window.max(other.peak_window);
        self.min_window = self.min_window.min(other.min_window);
    }

    /// Fraction of completions whose response was marked, in `[0, 1]`
    /// (NaN before the first completion).
    pub fn marked_fraction(&self) -> f64 {
        self.marked_responses as f64 / self.responses as f64
    }

    /// Steady-state mean window (last half of the run).
    pub fn steady_window(&self) -> f64 {
        self.window.steady_window()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_means_per_bucket() {
        let mut s = WindowSeries::new(1_000);
        s.record(0, 4);
        s.record(100, 8);
        s.record(1_500, 2);
        let samples: Vec<_> = s.samples().collect();
        assert_eq!(samples, vec![(0, 6.0), (1_000, 2.0)]);
        assert_eq!(s.total_samples(), 3);
    }

    #[test]
    fn series_widens_preserving_counts() {
        let mut s = WindowSeries::new(10);
        s.record(5, 4);
        s.record(15, 8);
        s.record(640, 16); // past the window: width doubles to 20
        assert_eq!(s.width_ps(), 20);
        assert_eq!(s.total_samples(), 3);
        let samples: Vec<_> = s.samples().collect();
        assert_eq!(samples[0], (0, 6.0)); // merged pair
    }

    #[test]
    fn steady_window_uses_tail() {
        let mut s = WindowSeries::new(100);
        // Opening transient at small windows, steady tail at 32.
        s.record(0, 1);
        s.record(100, 2);
        s.record(200, 32);
        s.record(300, 32);
        assert!((s.steady_window() - 32.0).abs() < 1e-9);
        assert!(WindowSeries::new(1).steady_window().is_nan());
    }

    #[test]
    fn merge_aligns_widths() {
        let mut a = WindowSeries::new(10);
        a.record(5, 4);
        let mut b = WindowSeries::new(10);
        b.record(640, 8); // widened to 20
        a.merge(&b);
        assert_eq!(a.width_ps(), 20);
        assert_eq!(a.total_samples(), 2);
    }

    #[test]
    fn summary_rollup_and_merge() {
        let mut a = HostSummary::new();
        a.record(0, 8, SimDuration::from_ns(100), false);
        a.record(1_000, 16, SimDuration::from_ns(300), true);
        assert_eq!(a.responses, 2);
        assert_eq!(a.peak_window, 16);
        assert_eq!(a.min_window, 8);
        assert!((a.marked_fraction() - 0.5).abs() < 1e-12);
        assert!((a.rtt.mean_ns() - 200.0).abs() < 1e-9);

        let mut b = HostSummary::new();
        b.record(0, 2, SimDuration::from_ns(500), true);
        a.merge(&b);
        assert_eq!(a.responses, 3);
        assert_eq!(a.min_window, 2);
        assert_eq!(a.marked_responses, 2);
    }

    #[test]
    fn empty_summary_is_nan_fraction() {
        let s = HostSummary::new();
        assert!(s.marked_fraction().is_nan());
        assert!(s.steady_window().is_nan());
        assert_eq!(s.min_window, u32::MAX);
    }
}
