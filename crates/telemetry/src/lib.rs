//! # mn-telemetry — observability for the memory-network simulator
//!
//! This crate holds the measurement substrate the kernel crates
//! (`mn-noc`, `mn-core`) thread their instrumentation hooks through:
//!
//! - [`TraceConfig`] — the `Off`/`Counters`/`Full` knob. Every hook in the
//!   hot path compiles to a single branch on this enum (never a virtual
//!   call); with the default `Off` the event stream, results, and
//!   allocation profile of a run are untouched.
//! - [`LifecycleTracer`] + [`write_chrome_trace`] — per-packet lifecycle
//!   events (inject/arbitrate/traverse/enqueue/bank-access/retry/eject)
//!   retained in pre-sized ring buffers and exported as Chrome/Perfetto
//!   `trace.json`, one track per link and per memory controller.
//! - [`Decomposition`] — the paper's Figure 4/5 three-way latency split
//!   (request NoC / array / response NoC) refined with
//!   queuing-vs-serialization sub-splits and per-hop-count classes.
//! - [`FairnessTracker`] / [`jain_index`] — per-source-cube service
//!   shares quantifying "parking lot" unfairness (§4 of the paper).
//! - [`TimeSeries`] / [`QueueDepthStats`] — bounded, allocation-free
//!   per-link utilization series and buffer-occupancy distributions.
//! - [`HostSummary`] / [`WindowSeries`] — closed-loop host rollups
//!   (congestion-window time series, RTT, ECN mark fraction) populated
//!   only when a `mn-host` window policy is active.
//! - [`FlightRecorder`] — a fixed ring retaining the last N kernel
//!   events so watchdog trips become post-mortems instead of bare
//!   errors.
//!
//! The crate depends only on `mn-sim` (for the time base and accumulator
//! primitives) so every other layer can use it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod decomp;
mod fairness;
mod host;
mod metrics;
mod recorder;
mod tracer;

pub use config::{ParseTraceConfigError, TraceConfig};
pub use decomp::{Decomposition, TelemetrySummary};
pub use fairness::{jain_index, FairnessTracker};
pub use host::{HostSummary, WindowSeries};
pub use metrics::{QueueDepthStats, TimeSeries};
pub use recorder::FlightRecorder;
pub use tracer::{write_chrome_trace, LifecycleTracer, TraceEvent, TraceEventKind, TraceProcess};
