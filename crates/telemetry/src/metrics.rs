//! Bounded, allocation-free link and buffer metrics.

/// Number of buckets in a [`TimeSeries`] window.
const SERIES_BUCKETS: usize = 64;

/// Depth buckets in [`QueueDepthStats`]: exact depths 0..=63 plus one
/// overflow bucket for anything deeper.
const DEPTH_BUCKETS: usize = 65;

/// A bounded busy-time series for one link (or any resource with a
/// busy/idle duty cycle).
///
/// The window is a fixed 64 buckets; whenever a sample lands past the end
/// the bucket width doubles by merging adjacent pairs in place, so
/// recording never allocates no matter how long the run. Utilization per
/// bucket is busy time divided by bucket width.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    busy_ps: [u64; SERIES_BUCKETS],
    width_ps: u64,
}

impl TimeSeries {
    /// Creates a series whose buckets start `width_ps` wide (minimum 1).
    pub fn new(width_ps: u64) -> Self {
        TimeSeries {
            busy_ps: [0; SERIES_BUCKETS],
            width_ps: width_ps.max(1),
        }
    }

    /// Attributes `busy_ps` of busy time to the bucket containing
    /// `at_ps`, widening the window as needed.
    #[inline]
    pub fn record(&mut self, at_ps: u64, busy_ps: u64) {
        let mut idx = at_ps / self.width_ps;
        while idx >= SERIES_BUCKETS as u64 {
            self.widen();
            idx = at_ps / self.width_ps;
        }
        self.busy_ps[idx as usize] += busy_ps;
    }

    fn widen(&mut self) {
        for i in 0..SERIES_BUCKETS / 2 {
            self.busy_ps[i] = self.busy_ps[2 * i] + self.busy_ps[2 * i + 1];
        }
        for b in &mut self.busy_ps[SERIES_BUCKETS / 2..] {
            *b = 0;
        }
        self.width_ps *= 2;
    }

    /// Current bucket width in picoseconds.
    pub fn width_ps(&self) -> u64 {
        self.width_ps
    }

    /// Iterates `(bucket_start_ps, utilization)` over the window.
    /// Utilization is clamped to 1.0: busy time is attributed to the
    /// bucket where the busy period *starts*, so a period straddling a
    /// bucket edge can nominally overfill its bucket.
    pub fn samples(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let width = self.width_ps;
        self.busy_ps
            .iter()
            .enumerate()
            .map(move |(i, &busy)| (i as u64 * width, (busy as f64 / width as f64).min(1.0)))
    }

    /// The highest per-bucket utilization in the window (0..=1).
    pub fn peak(&self) -> f64 {
        let max_busy = self.busy_ps.iter().copied().max().unwrap_or(0);
        (max_busy as f64 / self.width_ps as f64).min(1.0)
    }

    /// Total busy time across the window, in picoseconds.
    pub fn total_busy_ps(&self) -> u64 {
        self.busy_ps.iter().sum()
    }
}

/// Peak and distribution of buffer-occupancy samples.
///
/// Each call to [`QueueDepthStats::record`] is one observation of a
/// queue's depth (taken when a packet is enqueued). Depths 0..=63 are
/// counted exactly; anything deeper lands in a single overflow bucket.
#[derive(Debug, Clone)]
pub struct QueueDepthStats {
    peak: u64,
    total: u64,
    hist: [u64; DEPTH_BUCKETS],
}

impl QueueDepthStats {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        QueueDepthStats {
            peak: 0,
            total: 0,
            hist: [0; DEPTH_BUCKETS],
        }
    }

    /// Records one depth observation.
    #[inline]
    pub fn record(&mut self, depth: u64) {
        self.peak = self.peak.max(depth);
        self.total += 1;
        let idx = (depth as usize).min(DEPTH_BUCKETS - 1);
        self.hist[idx] += 1;
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &QueueDepthStats) {
        self.peak = self.peak.max(other.peak);
        self.total += other.total;
        for (mine, theirs) in self.hist.iter_mut().zip(&other.hist) {
            *mine += theirs;
        }
    }

    /// Deepest occupancy ever observed.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The depth at quantile `q` (the smallest depth whose cumulative
    /// count reaches the `q`-th observation), or 0 when empty. Depths in
    /// the overflow bucket report the exact peak instead.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64 * q).ceil() as u64).max(1);
        let mut seen = 0;
        for (depth, &count) in self.hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                return if depth == DEPTH_BUCKETS - 1 {
                    self.peak
                } else {
                    depth as u64
                };
            }
        }
        self.peak
    }

    /// The 99th-percentile depth.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl Default for QueueDepthStats {
    fn default() -> Self {
        QueueDepthStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_and_reports_utilization() {
        let mut ts = TimeSeries::new(1_000);
        ts.record(0, 500);
        ts.record(100, 250);
        ts.record(1_500, 1_000);
        assert_eq!(ts.width_ps(), 1_000);
        let samples: Vec<_> = ts.samples().collect();
        assert_eq!(samples[0], (0, 0.75));
        assert_eq!(samples[1], (1_000, 1.0));
        assert_eq!(ts.peak(), 1.0);
        assert_eq!(ts.total_busy_ps(), 1_750);
    }

    #[test]
    fn series_widens_by_merging_pairs() {
        let mut ts = TimeSeries::new(10);
        ts.record(5, 10); // bucket 0
        ts.record(15, 10); // bucket 1
                           // Lands past the 64-bucket window: width doubles to 20 and the
                           // two old buckets merge into one.
        ts.record(640, 7);
        assert_eq!(ts.width_ps(), 20);
        let samples: Vec<_> = ts.samples().collect();
        assert_eq!(samples[0], (0, 1.0));
        assert_eq!(samples[32], (640, 7.0 / 20.0));
        assert_eq!(ts.total_busy_ps(), 27);
    }

    #[test]
    fn series_widens_repeatedly_without_losing_busy_time() {
        let mut ts = TimeSeries::new(1);
        for at in [0u64, 1 << 10, 1 << 16, 1 << 20] {
            ts.record(at, 3);
        }
        assert_eq!(ts.total_busy_ps(), 12);
        assert!(ts.width_ps() >= (1 << 20) / 64);
    }

    #[test]
    fn depth_stats_track_peak_and_quantiles() {
        let mut qd = QueueDepthStats::new();
        assert_eq!(qd.quantile(0.5), 0);
        for _ in 0..98 {
            qd.record(1);
        }
        qd.record(5);
        qd.record(40);
        assert_eq!(qd.peak(), 40);
        assert_eq!(qd.total(), 100);
        assert_eq!(qd.quantile(0.5), 1);
        assert_eq!(qd.p99(), 5);
        assert_eq!(qd.quantile(1.0), 40);
    }

    #[test]
    fn depth_stats_overflow_reports_peak() {
        let mut qd = QueueDepthStats::new();
        qd.record(500);
        assert_eq!(qd.quantile(1.0), 500);
        assert_eq!(qd.p99(), 500);
    }

    #[test]
    fn depth_stats_merge() {
        let mut a = QueueDepthStats::new();
        a.record(2);
        let mut b = QueueDepthStats::new();
        b.record(7);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.peak(), 7);
        assert_eq!(a.quantile(1.0), 7);
    }
}
