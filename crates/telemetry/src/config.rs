//! The telemetry mode knob.

use std::fmt;
use std::str::FromStr;

/// How much telemetry the simulator records.
///
/// The default is [`TraceConfig::Off`]: every instrumentation hook reduces
/// to one branch on this enum and the kernel's event stream, results, and
/// allocation profile are byte-identical to an uninstrumented build.
/// `Counters` folds aggregate metrics (latency decomposition, link
/// utilization, queue depth, fairness) as the run progresses; `Full`
/// additionally retains per-packet lifecycle events in pre-sized ring
/// buffers for Chrome/Perfetto export and arms the flight recorder.
///
/// The variants are ordered so hooks can test `mode >= Counters`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceConfig {
    /// No telemetry (the default): hooks compile to a single branch.
    #[default]
    Off,
    /// Aggregate metrics only; no per-event ring buffers.
    Counters,
    /// Metrics plus the packet-lifecycle event ring and flight recorder.
    Full,
}

impl TraceConfig {
    /// True unless the mode is [`TraceConfig::Off`].
    #[inline]
    pub fn enabled(self) -> bool {
        self != TraceConfig::Off
    }

    /// True when per-event rings (lifecycle tracer + flight recorder)
    /// are armed, i.e. the mode is [`TraceConfig::Full`].
    #[inline]
    pub fn tracing(self) -> bool {
        self == TraceConfig::Full
    }
}

impl fmt::Display for TraceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceConfig::Off => "off",
            TraceConfig::Counters => "counters",
            TraceConfig::Full => "full",
        })
    }
}

/// Error returned when a trace-mode string (e.g. the `MN_TRACE` knob)
/// does not name a [`TraceConfig`] variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceConfigError(String);

impl fmt::Display for ParseTraceConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown trace mode `{}` (expected off, counters, or full)",
            self.0
        )
    }
}

impl std::error::Error for ParseTraceConfigError {}

impl FromStr for TraceConfig {
    type Err = ParseTraceConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("off") {
            Ok(TraceConfig::Off)
        } else if s.eq_ignore_ascii_case("counters") {
            Ok(TraceConfig::Counters)
        } else if s.eq_ignore_ascii_case("full") {
            Ok(TraceConfig::Full)
        } else {
            Err(ParseTraceConfigError(s.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        assert_eq!(TraceConfig::default(), TraceConfig::Off);
        assert!(!TraceConfig::Off.enabled());
        assert!(TraceConfig::Counters.enabled());
        assert!(!TraceConfig::Counters.tracing());
        assert!(TraceConfig::Full.tracing());
    }

    #[test]
    fn modes_are_ordered() {
        assert!(TraceConfig::Off < TraceConfig::Counters);
        assert!(TraceConfig::Counters < TraceConfig::Full);
    }

    #[test]
    fn parses_case_insensitively() {
        assert_eq!("off".parse::<TraceConfig>().unwrap(), TraceConfig::Off);
        assert_eq!(
            "Counters".parse::<TraceConfig>().unwrap(),
            TraceConfig::Counters
        );
        assert_eq!("FULL".parse::<TraceConfig>().unwrap(), TraceConfig::Full);
        assert!("verbose".parse::<TraceConfig>().is_err());
        let err = "verbose".parse::<TraceConfig>().unwrap_err();
        assert!(err.to_string().contains("verbose"));
    }

    #[test]
    fn displays_round_trip() {
        for mode in [TraceConfig::Off, TraceConfig::Counters, TraceConfig::Full] {
            assert_eq!(mode.to_string().parse::<TraceConfig>().unwrap(), mode);
        }
    }
}
