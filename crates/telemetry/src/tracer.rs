//! Packet-lifecycle tracing and Chrome/Perfetto export.

use std::io::{self, Write};

use crate::recorder::FlightRecorder;

/// What happened at a lifecycle point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Host pushed the packet into its port network.
    Inject,
    /// Packet won link-output arbitration.
    ArbWin,
    /// Packet occupied a link (span: serialization + retries).
    Traverse,
    /// Packet entered a downstream input buffer.
    Enqueue,
    /// Memory array serviced the request (span).
    BankAccess,
    /// A fault forced a link-level retry.
    Retry,
    /// Packet left the network at its destination.
    Eject,
}

impl TraceEventKind {
    /// Stable display name (used as the Chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Inject => "Inject",
            TraceEventKind::ArbWin => "ArbWin",
            TraceEventKind::Traverse => "Traverse",
            TraceEventKind::Enqueue => "Enqueue",
            TraceEventKind::BankAccess => "BankAccess",
            TraceEventKind::Retry => "Retry",
            TraceEventKind::Eject => "Eject",
        }
    }
}

/// One recorded lifecycle sample. `Copy` so the tracer ring never owns
/// heap data.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Event start, picoseconds of simulated time.
    pub ts_ps: u64,
    /// Span length in picoseconds; 0 renders as an instant.
    pub dur_ps: u64,
    /// Track the event belongs to (from [`LifecycleTracer::add_track`]).
    pub track: u32,
    /// Lifecycle point.
    pub kind: TraceEventKind,
    /// Packet id (rendered as `p<n>`), or `u64::MAX` for none.
    pub packet: u64,
}

impl TraceEvent {
    /// Sentinel for events not tied to a packet.
    pub const NO_PACKET: u64 = u64::MAX;
}

/// A per-domain tracer: a registry of named tracks plus a pre-sized ring
/// of [`TraceEvent`]s.
///
/// Tracks are registered once at construction time (one per link, node,
/// or controller); recording is a ring-buffer store and never allocates.
/// When the ring wraps, the oldest events are dropped and counted.
#[derive(Debug, Clone)]
pub struct LifecycleTracer {
    tracks: Vec<String>,
    ring: FlightRecorder<TraceEvent>,
}

impl LifecycleTracer {
    /// Creates a tracer retaining up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        LifecycleTracer {
            tracks: Vec::new(),
            ring: FlightRecorder::new(capacity),
        }
    }

    /// Registers a named track and returns its id.
    pub fn add_track(&mut self, name: String) -> u32 {
        let id = u32::try_from(self.tracks.len()).expect("track count fits u32");
        self.tracks.push(name);
        id
    }

    /// Records one event.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        self.ring.push(event);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events lost to ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.ring.overwritten()
    }

    /// Number of registered tracks.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Name of a track, if registered.
    pub fn track_name(&self, id: u32) -> Option<&str> {
        self.tracks.get(id as usize).map(String::as_str)
    }
}

/// One process row in a Chrome/Perfetto trace: a pid, a display name,
/// and the tracer whose tracks become its threads.
#[derive(Debug)]
pub struct TraceProcess<'a> {
    /// Chrome-trace process id (must be unique per process).
    pub pid: u32,
    /// Display name for the process row.
    pub name: &'a str,
    /// The tracer providing this process's tracks and events.
    pub tracer: &'a LifecycleTracer,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_us(value_ps: u64, out: &mut String) {
    // Chrome-trace timestamps are fractional microseconds; 1 ps is
    // exactly 1e-6 us, so six decimals are lossless.
    let us = value_ps / 1_000_000;
    let frac = value_ps % 1_000_000;
    out.push_str(&format!("{us}.{frac:06}"));
}

/// Writes a Chrome/Perfetto `trace.json` (JSON object format, loadable
/// in `ui.perfetto.dev` and `chrome://tracing`) covering the given
/// processes. Spans (`dur_ps > 0`) become `X` complete events; the rest
/// become thread-scoped instants.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_chrome_trace<W: Write>(w: &mut W, processes: &[TraceProcess<'_>]) -> io::Result<()> {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };
    for p in processes {
        sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"",
            p.pid
        ));
        escape_json(p.name, &mut out);
        out.push_str("\"}}");
        for tid in 0..p.tracer.track_count() {
            sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"",
                p.pid,
                tid + 1
            ));
            escape_json(p.tracer.track_name(tid as u32).unwrap_or(""), &mut out);
            out.push_str("\"}}");
        }
    }
    for p in processes {
        for ev in p.tracer.events() {
            sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":",
                ev.kind.name(),
                if ev.dur_ps > 0 { "X" } else { "i" },
                p.pid,
                ev.track + 1,
            ));
            push_us(ev.ts_ps, &mut out);
            if ev.dur_ps > 0 {
                out.push_str(",\"dur\":");
                push_us(ev.dur_ps, &mut out);
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            if ev.packet != TraceEvent::NO_PACKET {
                out.push_str(&format!(",\"args\":{{\"packet\":\"p{}\"}}", ev.packet));
            }
            out.push('}');
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    w.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tracer() -> LifecycleTracer {
        let mut t = LifecycleTracer::new(8);
        let link = t.add_track("link host-c1".to_string());
        let node = t.add_track("node c1 \"q\"".to_string());
        t.record(TraceEvent {
            ts_ps: 1_500_000,
            dur_ps: 528,
            track: link,
            kind: TraceEventKind::Traverse,
            packet: 7,
        });
        t.record(TraceEvent {
            ts_ps: 2_000_000,
            dur_ps: 0,
            track: node,
            kind: TraceEventKind::Eject,
            packet: 7,
        });
        t
    }

    #[test]
    fn tracks_register_and_resolve() {
        let t = sample_tracer();
        assert_eq!(t.track_count(), 2);
        assert_eq!(t.track_name(0), Some("link host-c1"));
        assert_eq!(t.track_name(9), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_events() {
        let mut t = LifecycleTracer::new(2);
        let track = t.add_track("x".to_string());
        for i in 0..5 {
            t.record(TraceEvent {
                ts_ps: i,
                dur_ps: 0,
                track,
                kind: TraceEventKind::Inject,
                packet: i,
            });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let ts: Vec<u64> = t.events().map(|e| e.ts_ps).collect();
        assert_eq!(ts, vec![3, 4]);
    }

    #[test]
    fn chrome_trace_has_metadata_spans_and_instants() {
        let t = sample_tracer();
        let mut buf = Vec::new();
        write_chrome_trace(
            &mut buf,
            &[TraceProcess {
                pid: 1,
                name: "network",
                tracer: &t,
            }],
        )
        .unwrap();
        let json = String::from_utf8(buf).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"network\""));
        assert!(json.contains("\"link host-c1\""));
        // Quotes in track names are escaped.
        assert!(json.contains("node c1 \\\"q\\\""));
        // The span: 1.5 us start, 528 ps duration.
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500000"));
        assert!(json.contains("\"dur\":0.000528"));
        // The instant carries a scope and the packet label.
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"packet\":\"p7\""));
        // Balanced braces => structurally plausible JSON.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn timestamps_are_lossless_microseconds() {
        let mut s = String::new();
        push_us(1, &mut s);
        assert_eq!(s, "0.000001");
        let mut s = String::new();
        push_us(123_456_789, &mut s);
        assert_eq!(s, "123.456789");
    }
}
