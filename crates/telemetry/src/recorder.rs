//! A fixed-capacity ring that retains the most recent items.

/// A flight recorder: a pre-sized ring buffer keeping the last
/// `capacity` items pushed into it.
///
/// Once warm it never allocates — new items overwrite the oldest — so it
/// can sit in the kernel hot path and be dumped when a watchdog trips.
///
/// # Example
///
/// ```
/// use mn_telemetry::FlightRecorder;
///
/// let mut fr = FlightRecorder::new(2);
/// fr.push(1);
/// fr.push(2);
/// fr.push(3);
/// assert_eq!(fr.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
/// assert_eq!(fr.overwritten(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest item (and the next overwrite target) once the
    /// buffer is full; 0 while still filling.
    next: usize,
    overwritten: u64,
}

impl<T> FlightRecorder<T> {
    /// Creates a recorder retaining the last `capacity` items. The full
    /// backing store is allocated up front; a capacity of 0 is bumped
    /// to 1.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            overwritten: 0,
        }
    }

    /// Pushes an item, overwriting the oldest one when full.
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.next] = item;
            self.next += 1;
            if self.next == self.capacity {
                self.next = 0;
            }
            self.overwritten += 1;
        }
    }

    /// Number of items currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many items have been pushed out of the ring to make room.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Iterates retained items oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (older, newer) = self.buf.split_at(self.next.min(self.buf.len()));
        newer.iter().chain(older.iter())
    }

    /// Empties the ring, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.overwritten = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_in_order() {
        let mut fr = FlightRecorder::new(4);
        assert!(fr.is_empty());
        for i in 0..4 {
            fr.push(i);
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.overwritten(), 0);
        assert_eq!(fr.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);

        fr.push(4);
        fr.push(5);
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.overwritten(), 2);
        assert_eq!(fr.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn wraps_many_times_and_stays_chronological() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..100 {
            fr.push(i);
        }
        assert_eq!(fr.iter().copied().collect::<Vec<_>>(), vec![97, 98, 99]);
        assert_eq!(fr.overwritten(), 97);
    }

    #[test]
    fn zero_capacity_is_bumped_to_one() {
        let mut fr = FlightRecorder::new(0);
        assert_eq!(fr.capacity(), 1);
        fr.push("a");
        fr.push("b");
        assert_eq!(fr.iter().copied().collect::<Vec<_>>(), vec!["b"]);
    }

    #[test]
    fn push_does_not_reallocate() {
        let mut fr = FlightRecorder::new(8);
        let cap_before = fr.buf.capacity();
        for i in 0..1000 {
            fr.push(i);
        }
        assert_eq!(fr.buf.capacity(), cap_before);
    }

    #[test]
    fn clear_resets() {
        let mut fr = FlightRecorder::new(2);
        fr.push(1);
        fr.push(2);
        fr.push(3);
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.overwritten(), 0);
        fr.push(9);
        assert_eq!(fr.iter().copied().collect::<Vec<_>>(), vec![9]);
    }
}
