//! Property-based tests (proptest) over the core data structures and
//! invariants: topology construction, routing, address decoding, the
//! event queue, bank timing, and packet conservation in the network.

use proptest::prelude::*;

use mn_core::AddressMap;
use mn_mem::{Bank, MemAccess, MemTechSpec, QuadrantController};
use mn_noc::{Network, NocConfig, Packet, PacketKind};
use mn_sim::{EventQueue, SimTime};
use mn_topo::{CubeTech, PathClass, Placement, Topology, TopologyKind};
use mn_workloads::{TraceGenerator, Workload};

fn arb_topology_kind() -> impl Strategy<Value = TopologyKind> {
    // Includes the mesh extension: the invariants hold for it too.
    prop::sample::select(TopologyKind::ALL_EXTENDED.to_vec())
}

fn arb_placement() -> impl Strategy<Value = Placement> {
    prop::collection::vec(
        prop::sample::select(vec![CubeTech::Dram, CubeTech::Nvm]),
        1..24,
    )
    .prop_map(Placement::from_techs)
}

proptest! {
    #[test]
    fn topology_invariants(kind in arb_topology_kind(), placement in arb_placement()) {
        let topo = Topology::build(kind, &placement).expect("non-empty placements build");
        // Every cube exists, respects the 4-port budget, and is reachable
        // on both path classes.
        let routes = topo.routing();
        prop_assert_eq!(topo.cube_count(), placement.cube_count());
        for (cube, _) in topo.cubes() {
            prop_assert!(topo.degree(cube) <= 4);
            let read = routes.read_hops(topo.host(), cube);
            let write = routes.write_hops(topo.host(), cube);
            prop_assert!(read >= 1);
            prop_assert!(write >= read, "write path never shorter than read path");
        }
    }

    #[test]
    fn skiplist_reads_never_worse_than_chain_hops(n in 1usize..24) {
        let placement = Placement::homogeneous(n, CubeTech::Dram);
        let chain = Topology::build(TopologyKind::Chain, &placement).unwrap();
        let skip = Topology::build(TopologyKind::SkipList, &placement).unwrap();
        let chain_routes = chain.routing();
        let skip_routes = skip.routing();
        for pos in 1..=n as u32 {
            let c = chain.cube_at_position(pos).unwrap();
            let s = skip.cube_at_position(pos).unwrap();
            prop_assert!(
                skip_routes.read_hops(skip.host(), s)
                    <= chain_routes.read_hops(chain.host(), c)
            );
            // Writes ride the chain: identical hop count.
            prop_assert_eq!(
                skip_routes.write_hops(skip.host(), s),
                chain_routes.read_hops(chain.host(), c)
            );
        }
    }

    #[test]
    fn routing_paths_are_loop_free(kind in arb_topology_kind(), n in 1usize..20) {
        let topo = Topology::build(kind, &Placement::homogeneous(n, CubeTech::Dram)).unwrap();
        let routes = topo.routing();
        for (cube, _) in topo.cubes() {
            for class in PathClass::ALL {
                let path = routes.path(class, topo.host(), cube);
                let mut seen = path.clone();
                seen.sort_unstable();
                seen.dedup();
                prop_assert_eq!(seen.len(), path.len(), "path revisits a node");
            }
        }
    }

    #[test]
    fn address_map_covers_and_balances(dram in 1u32..12, nvm in 0u32..4) {
        let mut techs = vec![CubeTech::Dram; dram as usize];
        techs.extend(std::iter::repeat_n(CubeTech::Nvm, nvm as usize));
        let placement = Placement::from_techs(techs);
        let topo = Topology::build(TopologyKind::Chain, &placement).unwrap();
        let map = AddressMap::new(&topo, &placement, 256, 64);
        let units = map.units() as u64;
        // One full cycle of blocks touches each cube exactly its
        // capacity-units many times.
        let mut counts = std::collections::HashMap::new();
        for block in 0..units {
            let d = map.decode(block * 256);
            prop_assert!(d.quadrant < 4);
            prop_assert!(d.bank < 64);
            *counts.entry(d.cube).or_insert(0u32) += 1;
        }
        for (cube, tech) in topo.cubes() {
            prop_assert_eq!(counts[&cube], tech.capacity_units());
        }
    }

    #[test]
    fn event_queue_matches_sorted_reference(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.push(SimTime::from_ps(t), i);
        }
        let mut expected: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expected.sort_by_key(|&(t, i)| (t, i)); // stable by insertion order
        for (t, i) in expected {
            let (qt, qi) = queue.pop().expect("same length");
            prop_assert_eq!(qt, SimTime::from_ps(t));
            prop_assert_eq!(qi, i);
        }
        prop_assert!(queue.pop().is_none());
    }

    #[test]
    fn bank_timing_is_monotonic(rows in prop::collection::vec((0u64..8, any::<bool>()), 1..50)) {
        let spec = MemTechSpec::nvm_pcm();
        let mut bank = Bank::new();
        let mut now = SimTime::ZERO;
        let mut last_completion = SimTime::ZERO;
        for (row, is_write) in rows {
            let out = bank.access(now, row, is_write, &spec.timings);
            prop_assert!(out.completed_at >= now);
            prop_assert!(out.bank_free_at >= out.completed_at);
            prop_assert!(out.completed_at >= last_completion);
            last_completion = out.completed_at;
            now = out.bank_free_at;
        }
    }

    #[test]
    fn controller_conserves_requests(accesses in prop::collection::vec((0u32..4, 0u64..4, any::<bool>()), 1..40)) {
        let mut ctrl = QuadrantController::new(MemTechSpec::dram_hbm(), 4, 64);
        let mut now = SimTime::ZERO;
        let mut completed = std::collections::HashSet::new();
        for (token, (bank, row, is_write)) in accesses.iter().copied().enumerate() {
            let access = if is_write {
                MemAccess::write(token as u64, bank, row)
            } else {
                MemAccess::read(token as u64, bank, row)
            };
            ctrl.enqueue(access, now).expect("capacity 64 suffices");
        }
        loop {
            for c in ctrl.advance(now) {
                prop_assert!(completed.insert(c.token), "token completed twice");
            }
            match ctrl.next_event_time() {
                Some(t) => now = now.max(t),
                None => break,
            }
        }
        prop_assert_eq!(completed.len(), accesses.len());
    }

    #[test]
    fn network_conserves_packets(dests in prop::collection::vec(1u32..16, 1..60)) {
        let topo = Topology::build(
            TopologyKind::SkipList,
            &Placement::homogeneous(16, CubeTech::Dram),
        ).unwrap();
        let mut net = Network::new(&topo, NocConfig::default());
        let mut now = SimTime::ZERO;
        let mut pending: std::collections::VecDeque<Packet> = dests
            .iter()
            .enumerate()
            .map(|(i, &pos)| {
                let dst = topo.cube_at_position(pos).unwrap();
                let kind = if i % 3 == 0 { PacketKind::WriteRequest } else { PacketKind::ReadRequest };
                Packet::request(i as u64, kind, topo.host(), dst)
            })
            .collect();
        let mut delivered = std::collections::HashSet::new();
        loop {
            while let Some(pkt) = pending.front() {
                if net.can_inject(topo.host(), 0, pkt) {
                    let pkt = pending.pop_front().expect("non-empty");
                    net.inject(topo.host(), 0, pkt, now).expect("space checked");
                } else {
                    break;
                }
            }
            for node in net.advance(now) {
                while let Some(d) = net.take_delivery(node, now) {
                    prop_assert!(delivered.insert(d.packet.token), "duplicate delivery");
                }
            }
            match net.next_event_time() {
                Some(t) => now = t,
                None if pending.is_empty() => break,
                // Buffers full with no events would be a deadlock.
                None => prop_assert!(false, "network wedged with pending injections"),
            }
        }
        prop_assert_eq!(delivered.len(), dests.len());
        prop_assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn traces_stay_in_bounds(seed in any::<u64>(), space_shift in 20u32..32) {
        let space = 1u64 << space_shift;
        let mut gen = TraceGenerator::new(Workload::Hotspot.profile(), space, seed);
        for _ in 0..500 {
            let r = gen.next().expect("infinite");
            prop_assert!(r.addr < space);
            prop_assert_eq!(r.addr % 64, 0);
        }
    }
}
