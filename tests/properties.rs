//! Property-style tests over the core data structures and invariants:
//! topology construction, routing, address decoding, the event queue, bank
//! timing, and packet conservation in the network.
//!
//! Each test draws many random cases from a fixed-seed [`SimRng`], so the
//! coverage is property-shaped but fully deterministic and dependency-free
//! (the offline build has no proptest). On failure the panic message
//! carries the case index; rerunning reproduces it exactly.

use mn_core::AddressMap;
use mn_mem::{Bank, MemAccess, MemTechSpec, QuadrantController};
use mn_noc::{Network, NocConfig, Packet, PacketKind};
use mn_sim::{EventQueue, SimRng, SimTime};
use mn_topo::{CubeTech, PathClass, Placement, Topology, TopologyKind};
use mn_workloads::{TraceGenerator, Workload};

fn random_kind(rng: &mut SimRng) -> TopologyKind {
    // Includes the mesh extension: the invariants hold for it too.
    let all = TopologyKind::ALL_EXTENDED;
    all[rng.below(all.len() as u64) as usize]
}

fn random_placement(rng: &mut SimRng) -> Placement {
    let n = rng.range(1, 24) as usize;
    let techs = (0..n)
        .map(|_| {
            if rng.chance(0.5) {
                CubeTech::Dram
            } else {
                CubeTech::Nvm
            }
        })
        .collect();
    Placement::from_techs(techs)
}

#[test]
fn topology_invariants() {
    let mut rng = SimRng::seed_from(0x70_70);
    for case in 0..64 {
        let kind = random_kind(&mut rng);
        let placement = random_placement(&mut rng);
        let topo = Topology::build(kind, &placement).expect("non-empty placements build");
        // Every cube exists, respects the 4-port budget, and is reachable
        // on both path classes.
        let routes = topo.routing();
        assert_eq!(topo.cube_count(), placement.cube_count(), "case {case}");
        for (cube, _) in topo.cubes() {
            assert!(topo.degree(cube) <= 4, "case {case} ({kind:?})");
            let read = routes.read_hops(topo.host(), cube);
            let write = routes.write_hops(topo.host(), cube);
            assert!(read >= 1, "case {case}");
            assert!(
                write >= read,
                "case {case}: write path never shorter than read path"
            );
        }
    }
}

#[test]
fn skiplist_reads_never_worse_than_chain_hops() {
    for n in 1usize..24 {
        let placement = Placement::homogeneous(n, CubeTech::Dram);
        let chain = Topology::build(TopologyKind::Chain, &placement).unwrap();
        let skip = Topology::build(TopologyKind::SkipList, &placement).unwrap();
        let chain_routes = chain.routing();
        let skip_routes = skip.routing();
        for pos in 1..=n as u32 {
            let c = chain.cube_at_position(pos).unwrap();
            let s = skip.cube_at_position(pos).unwrap();
            assert!(
                skip_routes.read_hops(skip.host(), s) <= chain_routes.read_hops(chain.host(), c)
            );
            // Writes ride the chain: identical hop count.
            assert_eq!(
                skip_routes.write_hops(skip.host(), s),
                chain_routes.read_hops(chain.host(), c)
            );
        }
    }
}

#[test]
fn routing_paths_are_loop_free() {
    let mut rng = SimRng::seed_from(0x100F);
    for case in 0..64 {
        let kind = random_kind(&mut rng);
        let n = rng.range(1, 20) as usize;
        let topo = Topology::build(kind, &Placement::homogeneous(n, CubeTech::Dram)).unwrap();
        let routes = topo.routing();
        for (cube, _) in topo.cubes() {
            for class in PathClass::ALL {
                let path = routes.path(class, topo.host(), cube);
                let mut seen = path.clone();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), path.len(), "case {case}: path revisits a node");
            }
        }
    }
}

#[test]
fn address_map_covers_and_balances() {
    let mut rng = SimRng::seed_from(0xADD7);
    for case in 0..32 {
        let dram = rng.range(1, 12) as usize;
        let nvm = rng.below(4) as usize;
        let mut techs = vec![CubeTech::Dram; dram];
        techs.extend(std::iter::repeat_n(CubeTech::Nvm, nvm));
        let placement = Placement::from_techs(techs);
        let topo = Topology::build(TopologyKind::Chain, &placement).unwrap();
        let map = AddressMap::new(&topo, &placement, 256, 64);
        let units = map.units() as u64;
        // One full cycle of blocks touches each cube exactly its
        // capacity-units many times.
        let mut counts = std::collections::HashMap::new();
        for block in 0..units {
            let d = map.decode(block * 256);
            assert!(d.quadrant < 4, "case {case}");
            assert!(d.bank < 64, "case {case}");
            *counts.entry(d.cube).or_insert(0u32) += 1;
        }
        for (cube, tech) in topo.cubes() {
            assert_eq!(counts[&cube], tech.capacity_units(), "case {case}");
        }
    }
}

#[test]
fn event_queue_matches_sorted_reference() {
    let mut rng = SimRng::seed_from(0xE0E0);
    for case in 0..32 {
        let len = rng.range(1, 200) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.below(1_000_000)).collect();
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.push(SimTime::from_ps(t), i);
        }
        let mut expected: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expected.sort_by_key(|&(t, i)| (t, i)); // stable by insertion order
        for (t, i) in expected {
            let (qt, qi) = queue.pop().expect("same length");
            assert_eq!(qt, SimTime::from_ps(t), "case {case}");
            assert_eq!(qi, i, "case {case}");
        }
        assert!(queue.pop().is_none(), "case {case}");
    }
}

#[test]
fn bank_timing_is_monotonic() {
    let mut rng = SimRng::seed_from(0xBA27);
    for case in 0..32 {
        let spec = MemTechSpec::nvm_pcm();
        let mut bank = Bank::new();
        let mut now = SimTime::ZERO;
        let mut last_completion = SimTime::ZERO;
        for _ in 0..rng.range(1, 50) {
            let row = rng.below(8);
            let is_write = rng.chance(0.5);
            let out = bank.access(now, row, is_write, &spec.timings);
            assert!(out.completed_at >= now, "case {case}");
            assert!(out.bank_free_at >= out.completed_at, "case {case}");
            assert!(out.completed_at >= last_completion, "case {case}");
            last_completion = out.completed_at;
            now = out.bank_free_at;
        }
    }
}

#[test]
fn controller_conserves_requests() {
    let mut rng = SimRng::seed_from(0xC027);
    for case in 0..32 {
        let mut ctrl = QuadrantController::new(MemTechSpec::dram_hbm(), 4, 64);
        let mut now = SimTime::ZERO;
        let mut completed = std::collections::HashSet::new();
        let count = rng.range(1, 40) as usize;
        for token in 0..count {
            let bank = rng.below(4) as u32;
            let row = rng.below(4);
            let access = if rng.chance(0.5) {
                MemAccess::write(token as u64, bank, row)
            } else {
                MemAccess::read(token as u64, bank, row)
            };
            ctrl.enqueue(access, now).expect("capacity 64 suffices");
        }
        loop {
            for c in ctrl.advance(now) {
                assert!(completed.insert(c.token), "case {case}: token twice");
            }
            match ctrl.next_event_time() {
                Some(t) => now = now.max(t),
                None => break,
            }
        }
        assert_eq!(completed.len(), count, "case {case}");
    }
}

#[test]
fn network_conserves_packets() {
    let mut rng = SimRng::seed_from(0x2E7);
    for case in 0..16 {
        let topo = Topology::build(
            TopologyKind::SkipList,
            &Placement::homogeneous(16, CubeTech::Dram),
        )
        .unwrap();
        let mut net = Network::new(&topo, NocConfig::default());
        let mut now = SimTime::ZERO;
        let count = rng.range(1, 60) as usize;
        let mut pending: std::collections::VecDeque<Packet> = (0..count)
            .map(|i| {
                let pos = rng.range(1, 16) as u32;
                let dst = topo.cube_at_position(pos).unwrap();
                let kind = if i % 3 == 0 {
                    PacketKind::WriteRequest
                } else {
                    PacketKind::ReadRequest
                };
                Packet::request(i as u64, kind, topo.host(), dst)
            })
            .collect();
        let mut delivered = std::collections::HashSet::new();
        let mut ready = Vec::new();
        loop {
            while let Some(pkt) = pending.front() {
                if net.can_inject(topo.host(), 0, pkt) {
                    let pkt = pending.pop_front().expect("non-empty");
                    net.inject(topo.host(), 0, pkt, now).expect("space checked");
                } else {
                    break;
                }
            }
            net.advance(now, &mut ready);
            for &node in &ready {
                while let Some(d) = net.take_delivery(node, now) {
                    assert!(
                        delivered.insert(d.packet.token),
                        "case {case}: duplicate delivery"
                    );
                }
            }
            match net.next_event_time() {
                Some(t) => now = t,
                None if pending.is_empty() => break,
                // Buffers full with no events would be a deadlock.
                None => panic!("case {case}: network wedged with pending injections"),
            }
        }
        assert_eq!(delivered.len(), count, "case {case}");
        assert_eq!(net.in_flight(), 0, "case {case}");
    }
}

#[test]
fn traces_stay_in_bounds() {
    let mut rng = SimRng::seed_from(0x7AACE);
    for _ in 0..16 {
        let seed = rng.next_u64();
        let space = 1u64 << rng.range(20, 32);
        let mut gen = TraceGenerator::new(Workload::Hotspot.profile(), space, seed);
        for _ in 0..500 {
            let r = gen.next().expect("infinite");
            assert!(r.addr < space);
            assert_eq!(r.addr % 64, 0);
        }
    }
}
