//! Shape-level regression tests for the paper's headline claims. These run
//! small but non-trivial simulations (a few thousand requests), so they
//! are the slowest tests in the workspace — and also the ones that protect
//! the reproduction itself.

use mn_core::{simulate, speedup_pct, SystemConfig};
use mn_noc::ArbiterKind;
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

const REQUESTS: u64 = 2_500;

fn config(topology: TopologyKind, dram_fraction: f64, placement: NvmPlacement) -> SystemConfig {
    let mut c = SystemConfig::paper_baseline(topology, dram_fraction).expect("valid");
    c.requests_per_port = REQUESTS;
    c.nvm_placement = placement;
    c
}

fn wall(topology: TopologyKind, dram_fraction: f64, workload: Workload) -> mn_sim::SimTime {
    simulate(
        &config(topology, dram_fraction, NvmPlacement::Last),
        workload,
    )
    .wall
}

#[test]
fn fig4_tree_beats_ring_beats_chain() {
    for workload in [Workload::Dct, Workload::Bit, Workload::Kmeans] {
        let chain = wall(TopologyKind::Chain, 1.0, workload);
        let ring = wall(TopologyKind::Ring, 1.0, workload);
        let tree = wall(TopologyKind::Tree, 1.0, workload);
        assert!(tree < ring, "{workload}: tree {tree} !< ring {ring}");
        assert!(ring < chain, "{workload}: ring {ring} !< chain {chain}");
        // The tree's advantage is substantial (the paper sees up to ~40%).
        assert!(
            speedup_pct(chain, tree) > 10.0,
            "{workload}: only {:+.1}%",
            speedup_pct(chain, tree)
        );
    }
}

#[test]
fn fig4_nw_moves_least() {
    let gain = |w: Workload| {
        let chain = wall(TopologyKind::Chain, 1.0, w);
        let tree = wall(TopologyKind::Tree, 1.0, w);
        speedup_pct(chain, tree)
    };
    let nw = gain(Workload::Nw);
    for w in [Workload::Dct, Workload::Bit, Workload::Backprop] {
        assert!(gain(w) > nw, "{w} should benefit more than NW");
    }
}

#[test]
fn fig5_network_latency_dominates_on_the_chain() {
    let r = simulate(
        &config(TopologyKind::Chain, 1.0, NvmPlacement::Last),
        Workload::Dct,
    );
    let b = &r.breakdown;
    let network = b.to_memory.mean_ns() + b.from_memory.mean_ns();
    assert!(
        network > 2.0 * b.in_memory.mean_ns(),
        "network {network:.1} vs memory {:.1}",
        b.in_memory.mean_ns()
    );
}

#[test]
fn fig5_request_path_out_queues_response_path() {
    // Response priority on the shared links pushes queuing onto requests.
    let r = simulate(
        &config(TopologyKind::Chain, 1.0, NvmPlacement::Last),
        Workload::Kmeans,
    );
    let b = &r.breakdown;
    assert!(b.to_memory.mean_ns() > b.from_memory.mean_ns());
}

#[test]
fn fig5_nw_has_largest_memory_share() {
    let share = |w: Workload| {
        let r = simulate(&config(TopologyKind::Chain, 1.0, NvmPlacement::Last), w);
        r.breakdown.fractions().1
    };
    let nw = share(Workload::Nw);
    for w in [Workload::Dct, Workload::Bit, Workload::Backprop] {
        assert!(nw > share(w), "{w} should be more network-bound than NW");
    }
}

#[test]
fn fig7_nvm_mixes_stay_well_above_the_chain() {
    for workload in [Workload::Dct, Workload::Backprop] {
        let chain = wall(TopologyKind::Chain, 1.0, workload);
        for fraction in [0.5, 0.0] {
            let mixed = wall(TopologyKind::Tree, fraction, workload);
            assert!(
                speedup_pct(chain, mixed) > 0.0,
                "{workload} {fraction}: NVM tree should beat the DRAM chain"
            );
        }
    }
}

#[test]
fn fig11_metacube_wins_and_prefers_all_dram() {
    for workload in [Workload::Dct, Workload::Kmeans] {
        let chain = wall(TopologyKind::Chain, 1.0, workload);
        let tree = wall(TopologyKind::Tree, 1.0, workload);
        let meta = wall(TopologyKind::MetaCube, 1.0, workload);
        assert!(
            meta <= tree,
            "{workload}: MetaCube at least matches the tree"
        );
        assert!(speedup_pct(chain, meta) > 15.0);
        // §5.2: MetaCube is the topology where 100% DRAM beats the mixes.
        let meta_half = wall(TopologyKind::MetaCube, 0.5, workload);
        assert!(meta < meta_half);
    }
}

#[test]
fn fig11_skiplist_suffers_on_write_heavy_traffic() {
    // Writes ride the 16-hop chain; BACKPROP pays for it.
    let tree = wall(TopologyKind::Tree, 1.0, Workload::Backprop);
    let skip = wall(TopologyKind::SkipList, 1.0, Workload::Backprop);
    assert!(skip > tree);
}

#[test]
fn fig12_combined_techniques_rescue_the_skiplist() {
    let plain = config(TopologyKind::SkipList, 1.0, NvmPlacement::Last);
    let mut combined = plain.clone().with_arbiter(ArbiterKind::AdaptiveDistance);
    combined.write_burst_routing = true;
    let before = simulate(&plain, Workload::Backprop).wall;
    let after = simulate(&combined, Workload::Backprop).wall;
    assert!(
        speedup_pct(before, after) > 5.0,
        "write-burst routing + adaptive arbitration must recover BACKPROP, got {:+.1}%",
        speedup_pct(before, after)
    );
}

#[test]
fn fig13_fewer_ports_degrade_linear_topologies_most() {
    let degradation = |topology| {
        let eight = config(topology, 1.0, NvmPlacement::Last);
        let mut four = eight.clone();
        four.ports = 4;
        let t8 = simulate(&eight, Workload::Dct).wall;
        let t4 = simulate(&four, Workload::Dct).wall;
        speedup_pct(t8, t4) // negative: four ports are slower
    };
    let chain = degradation(TopologyKind::Chain);
    let meta = degradation(TopologyKind::MetaCube);
    assert!(chain < 0.0, "chain must lose performance: {chain:+.1}%");
    assert!(meta > chain, "MetaCube degrades less than the chain");
}

#[test]
fn fig14_capacity_cut_helps_dram_hurts_nvm() {
    let delta = |fraction: f64| {
        let two = config(TopologyKind::Chain, fraction, NvmPlacement::Last);
        let mut one = two.clone();
        one.total_capacity_gb = 1024;
        let t2 = simulate(&two, Workload::Dct).wall;
        let t1 = simulate(&one, Workload::Dct).wall;
        speedup_pct(t2, t1)
    };
    let dram = delta(1.0);
    let nvm = delta(0.0);
    assert!(
        dram > 0.0,
        "all-DRAM gains from a shorter network: {dram:+.1}%"
    );
    assert!(
        dram > nvm,
        "NVM benefits less (or loses): {dram:+.1}% vs {nvm:+.1}%"
    );
}

#[test]
fn fig15_energy_shapes() {
    let energy = |topology, fraction: f64| {
        simulate(
            &config(topology, fraction, NvmPlacement::Last),
            Workload::Bit,
        )
        .energy
    };
    // Network energy dominates the all-DRAM chain...
    let chain = energy(TopologyKind::Chain, 1.0);
    assert!(chain.network > chain.read + chain.write);
    // ...the tree moves fewer bit-hops than the chain...
    let tree = energy(TopologyKind::Tree, 1.0);
    assert!(tree.network < chain.network);
    // ...the skip-list pays for its write detours relative to the tree...
    let skip = energy(TopologyKind::SkipList, 1.0);
    assert!(skip.network > tree.network);
    // ...and the all-NVM chain slashes network energy ~3x but its write
    // energy exceeds the DRAM chain's total write+read energy.
    let nvm = energy(TopologyKind::Chain, 0.0);
    assert!(nvm.network.as_pj() < chain.network.as_pj() / 2.0);
    assert!(nvm.write > chain.write * 5.0);
}

#[test]
fn nvm_first_vs_last_changes_outcomes() {
    let last = simulate(
        &config(TopologyKind::Chain, 0.5, NvmPlacement::Last),
        Workload::Dct,
    );
    let first = simulate(
        &config(TopologyKind::Chain, 0.5, NvmPlacement::First),
        Workload::Dct,
    );
    assert_ne!(last.wall, first.wall, "placement must matter on a chain");
}
