//! Cross-crate integration tests: drive the full stack (workload trace →
//! host ports → network → cubes → responses) through the public API and
//! check end-to-end invariants.

use mn_core::{simulate, speedup_pct, SystemConfig};
use mn_noc::{ArbiterKind, LinkDuplex};
use mn_topo::TopologyKind;
use mn_workloads::Workload;

fn quick(topology: TopologyKind, dram_fraction: f64) -> SystemConfig {
    let mut c = SystemConfig::paper_baseline(topology, dram_fraction).expect("valid config");
    c.requests_per_port = 800;
    c
}

#[test]
fn every_topology_and_mix_completes_every_workload() {
    for topology in TopologyKind::ALL {
        for dram_fraction in [1.0, 0.5, 0.0] {
            let config = quick(topology, dram_fraction);
            // One representative high-load and one low-load workload per
            // configuration keeps this exhaustive sweep fast.
            for workload in [Workload::Dct, Workload::Nw] {
                let r = simulate(&config, workload);
                assert_eq!(
                    r.reads + r.writes,
                    config.requests_per_port,
                    "{topology} {dram_fraction} {workload}"
                );
                assert!(r.wall > mn_sim::SimTime::ZERO);
            }
        }
    }
}

#[test]
fn latency_components_are_all_recorded() {
    let r = simulate(&quick(TopologyKind::SkipList, 0.5), Workload::Bit);
    let b = &r.breakdown;
    assert_eq!(b.to_memory.count(), 800);
    assert_eq!(b.in_memory.count(), 800);
    assert_eq!(b.from_memory.count(), 800);
    let (to, in_mem, from) = b.fractions();
    assert!((to + in_mem + from - 1.0).abs() < 1e-9);
}

#[test]
fn determinism_is_end_to_end() {
    let config = quick(TopologyKind::MetaCube, 0.5);
    let a = simulate(&config, Workload::Hotspot);
    let b = simulate(&config, Workload::Hotspot);
    assert_eq!(a.wall, b.wall);
    assert_eq!(a.reads, b.reads);
    assert!((a.energy.total().as_pj() - b.energy.total().as_pj()).abs() < 1e-6);
}

#[test]
fn different_seeds_change_outcomes() {
    let mut a_cfg = quick(TopologyKind::Tree, 1.0);
    let mut b_cfg = a_cfg.clone();
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    let a = simulate(&a_cfg, Workload::Dct);
    let b = simulate(&b_cfg, Workload::Dct);
    assert_ne!(a.wall, b.wall);
}

#[test]
fn all_arbiters_run_all_topologies() {
    for arbiter in [
        ArbiterKind::RoundRobin,
        ArbiterKind::Distance,
        ArbiterKind::AdaptiveDistance,
    ] {
        for topology in TopologyKind::ALL {
            let config = quick(topology, 1.0).with_arbiter(arbiter);
            let r = simulate(&config, Workload::Buff);
            assert_eq!(r.reads + r.writes, 800, "{topology} {arbiter:?}");
        }
    }
}

#[test]
fn full_duplex_is_never_slower() {
    // Giving each link direction its own channel strictly adds capacity.
    let mut half = quick(TopologyKind::Chain, 1.0);
    half.noc.duplex = LinkDuplex::Half;
    let mut full = half.clone();
    full.noc.duplex = LinkDuplex::Full;
    let h = simulate(&half, Workload::Dct);
    let f = simulate(&full, Workload::Dct);
    assert!(f.wall <= h.wall, "full {} vs half {}", f.wall, h.wall);
}

#[test]
fn four_ports_concentrate_load() {
    let eight = quick(TopologyKind::Chain, 1.0);
    let mut four = eight.clone();
    four.ports = 4;
    four.requests_per_port = eight.requests_per_port * 2; // same total work
                                                          // Halving ports doubles the cubes (and traffic) behind each port.
    assert_eq!(four.placement().unwrap().cube_count(), 32);
    let r8 = simulate(&eight, Workload::Dct);
    let r4 = simulate(&four, Workload::Dct);
    assert!(
        r4.wall > r8.wall,
        "longer network + concentrated traffic must cost time"
    );
}

#[test]
fn capacity_halving_shrinks_the_network() {
    let two_tb = quick(TopologyKind::Chain, 1.0);
    let mut one_tb = two_tb.clone();
    one_tb.total_capacity_gb = 1024;
    assert_eq!(one_tb.placement().unwrap().cube_count(), 8);
    let r2 = simulate(&two_tb, Workload::Dct);
    let r1 = simulate(&one_tb, Workload::Dct);
    // All-DRAM: the shorter chain is faster (§6.2's 100% case).
    assert!(r1.wall < r2.wall);
}

#[test]
fn energy_accounting_is_complete_and_positive() {
    let r = simulate(&quick(TopologyKind::Ring, 0.5), Workload::Bit);
    assert!(r.energy.network.as_pj() > 0.0);
    assert!(r.energy.read.as_pj() > 0.0);
    assert!(r.energy.write.as_pj() > 0.0);
    let total = r.energy.total();
    assert!(total.as_pj() >= r.energy.network.as_pj());
}

#[test]
fn multiport_aggregation_merges_stats() {
    let mut config = quick(TopologyKind::Tree, 1.0);
    config.simulated_ports = 3;
    let r = simulate(&config, Workload::Nw);
    assert_eq!(r.reads + r.writes, 3 * 800);
}

#[test]
fn speedup_helper_matches_walls() {
    let chain = simulate(&quick(TopologyKind::Chain, 1.0), Workload::Kmeans);
    let tree = simulate(&quick(TopologyKind::Tree, 1.0), Workload::Kmeans);
    let pct = speedup_pct(chain.wall, tree.wall);
    let manual = (chain.wall.as_ps() as f64 / tree.wall.as_ps() as f64 - 1.0) * 100.0;
    assert!((pct - manual).abs() < 1e-9);
}
