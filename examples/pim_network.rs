//! PIM traffic: the paper's related work (§7, Kim et al.) considers MNs
//! where processing-in-memory cubes talk to *each other*, wanting
//! any-to-any reachability. Our network layer supports arbitrary
//! source/destination pairs, so this example drives cube-to-cube traffic
//! directly through `mn-noc` and compares how the paper's topologies serve
//! it — without the host in the loop at all.
//!
//! ```sh
//! cargo run --release -p mn-examples --example pim_network
//! ```

use mn_noc::{Network, NocConfig, Packet, PacketKind};
use mn_sim::{SimRng, SimTime};
use mn_topo::{CubeTech, Placement, Topology, TopologyKind};

fn main() {
    const PACKETS: u64 = 2_000;
    println!("cube-to-cube (PIM-style) uniform-random traffic, {PACKETS} packets\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12}",
        "topology", "avg hops", "finish", "bit-hops"
    );

    for kind in TopologyKind::ALL_EXTENDED {
        let topo = Topology::build(kind, &Placement::homogeneous(16, CubeTech::Dram))
            .expect("16 cubes build everywhere");
        let mut net = Network::new(&topo, NocConfig::default());
        let mut rng = SimRng::seed_from(42);
        let cubes: Vec<_> = topo.cubes().map(|(id, _)| id).collect();

        // Pre-generate uniform random cube pairs.
        let mut flows = Vec::new();
        for token in 0..PACKETS {
            let src = cubes[rng.below(cubes.len() as u64) as usize];
            let mut dst = src;
            while dst == src {
                dst = cubes[rng.below(cubes.len() as u64) as usize];
            }
            // PIM messages look like read responses: data-sized, cube-born.
            let req = Packet::request(token, PacketKind::ReadRequest, dst, src);
            flows.push((src, Packet::response_to(&req, false)));
        }
        flows.reverse();

        let mut now = SimTime::ZERO;
        let mut delivered = 0u64;
        let mut hop_sum = 0u64;
        let mut last = SimTime::ZERO;
        let mut deadlocked = false;
        let mut ready = Vec::new();
        loop {
            while let Some((src, pkt)) = flows.last() {
                // Spread injections across the cube's four quadrant ports.
                let port = (pkt.token % 4) as usize;
                if net.can_inject(*src, port, pkt) {
                    let (src, pkt) = flows.pop().expect("non-empty");
                    net.inject(src, port, pkt, now).expect("space checked");
                } else {
                    break;
                }
            }
            net.advance(now, &mut ready);
            for &node in &ready {
                while let Some(d) = net.take_delivery(node, now) {
                    delivered += 1;
                    hop_sum += u64::from(d.packet.hops());
                    last = last.max(d.arrived_at);
                }
            }
            match net.next_event_time() {
                Some(t) => now = t,
                None if flows.is_empty() && net.in_flight() == 0 => break,
                None => {
                    // A genuine protocol deadlock: cube-to-cube traffic on
                    // a topology with cycles shares one virtual network,
                    // so buffer dependencies can close a loop. Host-centric
                    // MNs never hit this (requests and responses travel in
                    // separate VCs and terminate at the host); a PIM MN
                    // would need dateline VCs — exactly why the any-to-any
                    // designs in §7 are a different problem.
                    deadlocked = true;
                    break;
                }
            }
        }
        if deadlocked {
            println!(
                "{:<10} {:>10} {:>12} {:>12}   <- DEADLOCK after {} deliveries (cyclic buffer wait; needs dateline VCs)",
                kind.to_string(),
                "-",
                "-",
                "-",
                delivered
            );
        } else {
            assert_eq!(delivered, PACKETS);
            println!(
                "{:<10} {:>10.2} {:>12} {:>12}",
                kind.to_string(),
                hop_sum as f64 / delivered as f64,
                format!("{}", last),
                net.stats().bit_hops,
            );
        }
    }

    println!(
        "\nfor host-centric traffic the paper's per-port MNs avoid all-to-all\n\
         wiring (§2.3); for PIM traffic the tradeoff flips — low-diameter\n\
         topologies win, and cyclic ones (ring, mesh) need extra virtual\n\
         channels to be deadlock-free, matching the §7 discussion that\n\
         PIM networks are a different design problem."
    );
}
