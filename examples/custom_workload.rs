//! Custom workload: drive the memory network with your own traffic
//! profile instead of the paper's eight proxies. Models a streaming
//! ingest service: 90% sequential writes arriving in deep bursts — then
//! shows why the skip-list's write-burst routing (§5.3) exists.
//!
//! ```sh
//! cargo run --release -p mn-examples --example custom_workload
//! ```

use mn_core::{simulate, speedup_pct, SystemConfig};
use mn_topo::TopologyKind;
use mn_workloads::{TraceGenerator, Workload, WorkloadProfile};

fn main() {
    // A write-dominated ingest stream with strong spatial locality.
    let ingest = WorkloadProfile {
        workload: None,
        read_fraction: 0.10,
        intensity_per_ns: 0.25,
        sequential_prob: 0.85,
        hot_fraction: 0.05,
        hot_prob: 0.10,
        footprint_fraction: 1.0,
        burst_mean: 32.0,
    };
    ingest.validate();

    // Peek at the stream itself.
    let sample: Vec<_> = TraceGenerator::new(ingest, 1 << 30, 7).take(8).collect();
    println!("first references of the ingest stream:");
    for r in &sample {
        println!(
            "  +{:>9} {} 0x{:08x}",
            format!("{}", r.gap),
            if r.is_write { "W" } else { "R" },
            r.addr
        );
    }

    // The simulator's `simulate` entry point runs the paper workloads; for
    // a custom profile, compare topologies via a stand-in: the closest
    // paper workload is BACKPROP (write-heavy). Here we contrast skip-list
    // behaviour with and without write-burst routing under BACKPROP, the
    // situation the ingest stream exaggerates.
    let mut plain = SystemConfig::paper_baseline(TopologyKind::SkipList, 1.0).expect("valid");
    plain.requests_per_port = 4_000;
    let mut burst_routed = plain.clone();
    burst_routed.write_burst_routing = true;
    burst_routed.noc.arbiter = mn_noc::ArbiterKind::AdaptiveDistance;

    let base = simulate(&plain, Workload::Backprop);
    let tuned = simulate(&burst_routed, Workload::Backprop);
    println!(
        "\nskip-list, write-heavy traffic:\n  writes on the chain only : wall {}\n  + write-burst routing    : wall {}  ({:+.1}%)",
        base.wall,
        tuned.wall,
        speedup_pct(base.wall, tuned.wall)
    );
    println!(
        "\n(the §5.3 hysteresis lets write bursts use the skip links, recovering\n the performance the dedicated write path costs write-heavy workloads)"
    );
}
