//! Quickstart: build the paper's baseline system, run one workload on two
//! topologies, and print the speedup and latency breakdown.
//!
//! ```sh
//! cargo run --release -p mn-examples --example quickstart
//! ```

use mn_core::{simulate, speedup_pct, SystemConfig};
use mn_topo::TopologyKind;
use mn_workloads::Workload;

fn main() {
    // The paper's 2 TB, 8-port, all-DRAM system (Table 2 defaults).
    let mut chain = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0)
        .expect("the all-DRAM baseline is always valid");
    chain.requests_per_port = 5_000;
    let mut tree = SystemConfig::paper_baseline(TopologyKind::Tree, 1.0).expect("valid");
    tree.requests_per_port = 5_000;

    let workload = Workload::Dct;
    println!(
        "running {workload} on {} and {} ...",
        chain.label(),
        tree.label()
    );

    let chain_result = simulate(&chain, workload);
    let tree_result = simulate(&tree, workload);

    for result in [&chain_result, &tree_result] {
        let b = &result.breakdown;
        println!(
            "\n{} ({}):\n  wall time       {}\n  to memory       {:.1} ns\n  in memory       {:.1} ns\n  from memory     {:.1} ns\n  avg hops        {:.2}\n  row-buffer hits {:.0}%\n  energy          {:.1} uJ",
            result.label,
            result.workload,
            result.wall,
            b.to_memory.mean_ns(),
            b.in_memory.mean_ns(),
            b.from_memory.mean_ns(),
            result.avg_hops,
            result.row_hit_rate * 100.0,
            result.energy.total().as_uj(),
        );
    }

    println!(
        "\ntree speedup over chain: {:+.1}%",
        speedup_pct(chain_result.wall, tree_result.wall)
    );
}
