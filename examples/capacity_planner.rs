//! Capacity planner: the scenario from the paper's introduction — you are
//! sizing a terabyte-scale server and must pick a topology and a DRAM:NVM
//! mix. This example sweeps the design space for a workload mix, then
//! reports performance, energy, and package count so the tradeoff (§3.3,
//! §6.3) is visible in one table.
//!
//! ```sh
//! cargo run --release -p mn-examples --example capacity_planner
//! ```

use mn_core::{simulate, speedup_pct, SystemConfig};
use mn_topo::{NvmPlacement, TopologyKind};
use mn_workloads::Workload;

fn main() {
    // The server's expected daily mix: one read-heavy analytics kernel,
    // one write-heavy training kernel, one latency-sensitive background job.
    let mix = [Workload::Kmeans, Workload::Backprop, Workload::Nw];
    let requests = 3_000;

    println!(
        "sizing a 2 TB, 8-port server for {:?}\n",
        mix.map(|w| w.label())
    );
    println!(
        "{:<18} {:>7} {:>11} {:>11} {:>10}",
        "configuration", "cubes", "perf vs C", "energy", "packages"
    );

    let baseline = {
        let mut c = SystemConfig::paper_baseline(TopologyKind::Chain, 1.0).expect("valid");
        c.requests_per_port = requests;
        mix.iter()
            .map(|&w| simulate(&c, w).wall.as_ns_f64())
            .sum::<f64>()
    };

    let mut best: Option<(String, f64)> = None;
    for topology in TopologyKind::ALL {
        for dram_fraction in [1.0, 0.5, 0.0] {
            let Ok(config) = SystemConfig::paper_baseline(topology, dram_fraction) else {
                continue;
            };
            let mut config = config.with_nvm_placement(NvmPlacement::Last);
            config.requests_per_port = requests;
            let placement = config.placement().expect("valid");

            let mut wall_sum = 0.0;
            let mut energy_uj = 0.0;
            for &w in &mix {
                let r = simulate(&config, w);
                wall_sum += r.wall.as_ns_f64();
                energy_uj += r.energy.total().as_uj();
            }
            let perf = (baseline / wall_sum - 1.0) * 100.0;
            // MetaCubes package four stacks per (more expensive) package.
            let packages = if topology == TopologyKind::MetaCube {
                format!("{} MetaCubes", placement.cube_count().div_ceil(4))
            } else {
                format!("{} cubes", placement.cube_count())
            };
            println!(
                "{:<18} {:>7} {:>+10.1}% {:>8.1} uJ {:>10}",
                config.label(),
                placement.cube_count(),
                perf,
                energy_uj,
                packages
            );
            if best.as_ref().is_none_or(|(_, p)| perf > *p) {
                best = Some((config.label(), perf));
            }
        }
    }

    let (label, perf) = best.expect("swept at least one configuration");
    println!("\nrecommendation: {label} ({perf:+.1}% vs the all-DRAM chain)");
    let _ = speedup_pct; // (see fig benchmarks for per-workload normalization)
}
