//! Topology tour: renders every MN topology the paper evaluates (the
//! structures of Figs. 3, 8 and 9) with its structural metrics — hop
//! counts, diameters, and the skip-list's write-only "dashed" links.
//!
//! ```sh
//! cargo run -p mn-examples --example topology_tour
//! ```

use mn_topo::{
    render_ascii, CubeTech, NvmPlacement, Placement, Topology, TopologyKind, TopologyMetrics,
};

fn main() {
    println!("=== All-DRAM topologies (16 cubes per port) ===");
    let all_dram = Placement::homogeneous(16, CubeTech::Dram);
    for kind in TopologyKind::ALL {
        let topo = Topology::build(kind, &all_dram).expect("valid placement");
        let m = TopologyMetrics::compute(&topo);
        println!("{}", render_ascii(&topo));
        println!(
            "  avg read hops {:.2} | max read {} | max write {} | links {} ({} unused by reads)\n",
            m.avg_read_hops, m.max_read_hops, m.max_write_hops, m.total_links, m.read_unused_links,
        );
    }

    println!("=== Heterogeneous 50% DRAM / 50% NVM placements (Fig. 6) ===");
    for (placement, name) in [
        (NvmPlacement::Last, "NVM-L (far from the host)"),
        (NvmPlacement::First, "NVM-F (next to the host)"),
    ] {
        let mix = Placement::mixed_by_capacity(0.5, placement).expect("realizable");
        let topo = Topology::build(TopologyKind::Chain, &mix).expect("valid");
        let m = TopologyMetrics::compute(&topo);
        println!("--- {name} ---");
        println!("{}", render_ascii(&topo));
        println!(
            "  capacity-weighted read hops: {:.2} (uniform-address traffic)\n",
            m.capacity_weighted_read_hops
        );
    }
}
